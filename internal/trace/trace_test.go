package trace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// buildSample constructs a small two-rank trace with one message 0->1.
func buildSample(t *testing.T) *Trace {
	t.Helper()
	tr := New(2)
	recs := []Record{
		{Kind: KindFuncEntry, Rank: 0, Marker: 1, Start: 0, End: 0, Name: "main"},
		{Kind: KindCompute, Rank: 0, Marker: 2, Start: 0, End: 10, Name: "setup"},
		{Kind: KindSend, Rank: 0, Marker: 3, Start: 10, End: 15, Src: 0, Dst: 1, Tag: 7, Bytes: 64, MsgID: 1},
		{Kind: KindFuncEntry, Rank: 1, Marker: 1, Start: 0, End: 0, Name: "main"},
		{Kind: KindRecv, Rank: 1, Marker: 2, Start: 2, End: 18, Src: 0, Dst: 1, Tag: 7, Bytes: 64, MsgID: 1},
		{Kind: KindFuncExit, Rank: 1, Marker: 3, Start: 18, End: 18, Name: "main"},
	}
	for _, r := range recs {
		if _, err := tr.Append(r); err != nil {
			t.Fatalf("append %v: %v", r, err)
		}
	}
	return tr
}

func TestAppendAndQuery(t *testing.T) {
	tr := buildSample(t)
	if tr.NumRanks() != 2 {
		t.Fatalf("NumRanks = %d", tr.NumRanks())
	}
	if tr.Len() != 6 {
		t.Fatalf("Len = %d, want 6", tr.Len())
	}
	if tr.RankLen(0) != 3 || tr.RankLen(1) != 3 {
		t.Fatalf("RankLen = %d,%d", tr.RankLen(0), tr.RankLen(1))
	}
	if tr.RankLen(9) != 0 {
		t.Error("out-of-range RankLen should be 0")
	}
	r, err := tr.At(EventID{Rank: 0, Index: 2})
	if err != nil || r.Kind != KindSend {
		t.Fatalf("At = %v, %v", r, err)
	}
	if _, err := tr.At(EventID{Rank: 0, Index: 99}); err == nil {
		t.Error("At out of range should fail")
	}
	if _, err := tr.At(EventID{Rank: 9, Index: 0}); err == nil {
		t.Error("At bad rank should fail")
	}
	if got := tr.EndTime(); got != 18 {
		t.Errorf("EndTime = %d, want 18", got)
	}
	if got := tr.StartTime(); got != 0 {
		t.Errorf("StartTime = %d, want 0", got)
	}
}

func TestAppendValidation(t *testing.T) {
	tr := New(1)
	if _, err := tr.Append(Record{Rank: 5}); err == nil {
		t.Error("append with bad rank should fail")
	}
	if _, err := tr.Append(Record{Rank: 0, Start: 100, End: 100}); err != nil {
		t.Fatalf("append: %v", err)
	}
	if _, err := tr.Append(Record{Rank: 0, Start: 50, End: 60}); err == nil {
		t.Error("append going backwards in time should fail")
	}
}

func TestFindMarker(t *testing.T) {
	tr := buildSample(t)
	id, err := tr.FindMarker(Marker{Rank: 0, Seq: 3})
	if err != nil {
		t.Fatalf("FindMarker: %v", err)
	}
	if tr.MustAt(id).Kind != KindSend {
		t.Errorf("marker 0@3 should be the send, got %v", tr.MustAt(id))
	}
	if _, err := tr.FindMarker(Marker{Rank: 0, Seq: 99}); err != ErrNotFound {
		t.Errorf("missing marker should give ErrNotFound, got %v", err)
	}
	if _, err := tr.FindMarker(Marker{Rank: 9, Seq: 1}); err == nil {
		t.Error("bad rank should fail")
	}
}

func TestTimeSearches(t *testing.T) {
	tr := buildSample(t)
	id, err := tr.LastBefore(0, 10)
	if err != nil {
		t.Fatalf("LastBefore: %v", err)
	}
	// Two rank-0 events start at <=10; the last is the send (start 10).
	if tr.MustAt(id).Kind != KindSend {
		t.Errorf("LastBefore(0,10) = %v", tr.MustAt(id))
	}
	if _, err := tr.LastBefore(0, -5); err != ErrNotFound {
		t.Errorf("LastBefore before all events: %v", err)
	}
	id, err = tr.FirstAfter(1, 3)
	if err != nil {
		t.Fatalf("FirstAfter: %v", err)
	}
	if tr.MustAt(id).Kind != KindFuncExit {
		t.Errorf("FirstAfter(1,3) = %v", tr.MustAt(id))
	}
	if _, err := tr.FirstAfter(1, 1000); err != ErrNotFound {
		t.Errorf("FirstAfter past all events: %v", err)
	}
}

func TestKindQueries(t *testing.T) {
	tr := buildSample(t)
	if got := len(tr.Sends()); got != 1 {
		t.Errorf("Sends = %d", got)
	}
	if got := len(tr.Recvs()); got != 1 {
		t.Errorf("Recvs = %d", got)
	}
	entries := tr.Filter(func(r *Record) bool { return r.Kind == KindFuncEntry })
	if len(entries) != 2 {
		t.Errorf("Filter entries = %d", len(entries))
	}
}

func TestMatchSendRecv(t *testing.T) {
	tr := buildSample(t)
	matched, orphans := tr.MatchSendRecv()
	if len(orphans) != 0 {
		t.Fatalf("orphans = %v", orphans)
	}
	if len(matched) != 1 {
		t.Fatalf("matched = %v", matched)
	}
	for recv, send := range matched {
		if tr.MustAt(recv).Kind != KindRecv || tr.MustAt(send).Kind != KindSend {
			t.Errorf("bad match %v -> %v", recv, send)
		}
	}
	// A receive with no corresponding send must be reported as an orphan.
	tr2 := New(1)
	tr2.MustAppend(Record{Kind: KindRecv, Rank: 0, MsgID: 42, Src: 0, Dst: 0})
	_, orphans = tr2.MatchSendRecv()
	if len(orphans) != 1 {
		t.Errorf("expected 1 orphan, got %v", orphans)
	}
}

func TestMergedOrder(t *testing.T) {
	tr := buildSample(t)
	ids := tr.MergedOrder()
	if len(ids) != tr.Len() {
		t.Fatalf("merged length %d != %d", len(ids), tr.Len())
	}
	for i := 1; i < len(ids); i++ {
		a, b := tr.MustAt(ids[i-1]), tr.MustAt(ids[i])
		if a.Start > b.Start {
			t.Fatalf("merged order violated at %d: %d > %d", i, a.Start, b.Start)
		}
		if a.Start == b.Start && ids[i-1].Rank > ids[i].Rank {
			t.Fatalf("tie-break by rank violated at %d", i)
		}
	}
}

func TestWindowAndClone(t *testing.T) {
	tr := buildSample(t)
	w := tr.Window(5, 12)
	// Rank 0: compute (0..10) and send (10..15) overlap; entry (0..0) does not.
	if w.RankLen(0) != 2 {
		t.Errorf("window rank0 = %d records", w.RankLen(0))
	}
	// Rank 1: recv (2..18) overlaps; entry(0..0) and exit(18..18) do not... exit starts at 18 > 12.
	if w.RankLen(1) != 1 {
		t.Errorf("window rank1 = %d records", w.RankLen(1))
	}
	c := tr.Clone()
	if c.Len() != tr.Len() {
		t.Fatalf("clone length mismatch")
	}
	// Mutating the clone must not affect the original.
	c.MustAppend(Record{Kind: KindMarker, Rank: 0, Marker: 99, Start: 1000, End: 1000})
	if tr.RankLen(0) == c.RankLen(0) {
		t.Error("clone shares storage with original")
	}
}

func TestValidate(t *testing.T) {
	tr := buildSample(t)
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}

	// End before Start.
	bad := New(1)
	bad.byRank[0] = append(bad.byRank[0], Record{Rank: 0, Start: 10, End: 5})
	if err := bad.Validate(); err == nil {
		t.Error("End<Start should be rejected")
	}

	// Receive ending before its send ends violates causality.
	bad2 := New(2)
	bad2.byRank[0] = append(bad2.byRank[0], Record{Kind: KindSend, Rank: 0, Src: 0, Dst: 1, Start: 10, End: 20, MsgID: 1})
	bad2.byRank[1] = append(bad2.byRank[1], Record{Kind: KindRecv, Rank: 1, Src: 0, Dst: 1, Start: 0, End: 5, MsgID: 1})
	if err := bad2.Validate(); err == nil {
		t.Error("recv-before-send should be rejected")
	}

	// Endpoint mismatch.
	bad3 := New(3)
	bad3.byRank[0] = append(bad3.byRank[0], Record{Kind: KindSend, Rank: 0, Src: 0, Dst: 1, Start: 0, End: 1, MsgID: 1})
	bad3.byRank[2] = append(bad3.byRank[2], Record{Kind: KindRecv, Rank: 2, Src: 0, Dst: 2, Start: 5, End: 6, MsgID: 1})
	if err := bad3.Validate(); err == nil {
		t.Error("endpoint mismatch should be rejected")
	}

	// Marker regression.
	bad4 := New(1)
	bad4.byRank[0] = append(bad4.byRank[0],
		Record{Rank: 0, Marker: 5, Start: 0, End: 0},
		Record{Rank: 0, Marker: 3, Start: 1, End: 1})
	if err := bad4.Validate(); err == nil {
		t.Error("marker regression should be rejected")
	}
}

func TestSummarize(t *testing.T) {
	tr := buildSample(t)
	st := tr.Summarize()
	if st.Records != 6 || st.Sends != 1 || st.Recvs != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesSent != 64 {
		t.Errorf("BytesSent = %d", st.BytesSent)
	}
	if st.PerRankMsgs[1] != 1 || st.PerRankMsgs[0] != 0 {
		t.Errorf("PerRankMsgs = %v", st.PerRankMsgs)
	}
	if st.EndTime != 18 {
		t.Errorf("EndTime = %d", st.EndTime)
	}
	if st.PerKind[KindFuncEntry] != 2 {
		t.Errorf("PerKind[FuncEntry] = %d", st.PerKind[KindFuncEntry])
	}
}

// randomTrace builds a structurally valid random trace: per-rank monotone
// clocks/markers, and each message's receive after its send.
func randomTrace(rng *rand.Rand, ranks, msgs int) *Trace {
	tr := New(ranks)
	clock := make([]int64, ranks)
	marker := make([]uint64, ranks)
	var msgID uint64
	tick := func(rank int, d int64) (start, end int64) {
		start = clock[rank]
		end = start + d
		clock[rank] = end
		marker[rank]++
		return
	}
	for i := 0; i < msgs; i++ {
		src := rng.Intn(ranks)
		dst := rng.Intn(ranks)
		if src == dst {
			dst = (dst + 1) % ranks
		}
		msgID++
		s, e := tick(src, 1+int64(rng.Intn(10)))
		tr.MustAppend(Record{Kind: KindSend, Rank: src, Marker: marker[src],
			Start: s, End: e, Src: src, Dst: dst, Tag: rng.Intn(4), Bytes: 8, MsgID: msgID})
		// Receive must end no earlier than the send ends.
		if clock[dst] < e {
			clock[dst] = e
		}
		rs, re := tick(dst, 1+int64(rng.Intn(10)))
		tr.MustAppend(Record{Kind: KindRecv, Rank: dst, Marker: marker[dst],
			Start: rs, End: re, Src: src, Dst: dst, Tag: 0, Bytes: 8, MsgID: msgID})
		// Occasionally interleave compute records.
		if rng.Intn(3) == 0 {
			r := rng.Intn(ranks)
			cs, ce := tick(r, int64(rng.Intn(5)))
			tr.MustAppend(Record{Kind: KindCompute, Rank: r, Marker: marker[r], Start: cs, End: ce})
		}
	}
	return tr
}

func TestRandomTracesValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		tr := randomTrace(rng, 2+rng.Intn(6), 1+rng.Intn(40))
		if err := tr.Validate(); err != nil {
			t.Fatalf("random trace %d invalid: %v", i, err)
		}
		matched, orphans := tr.MatchSendRecv()
		if len(orphans) != 0 {
			t.Fatalf("random trace %d: orphans %v", i, orphans)
		}
		if len(matched) != len(tr.Recvs()) {
			t.Fatalf("random trace %d: %d matches for %d recvs", i, len(matched), len(tr.Recvs()))
		}
	}
}

// Property: windowing never produces records outside the window and keeps
// per-rank ordering.
func TestWindowProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64, lo, hi uint16) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTrace(r, 3, 30)
		t0, t1 := int64(lo), int64(lo)+int64(hi)
		w := tr.Window(t0, t1)
		for rank := 0; rank < w.NumRanks(); rank++ {
			prev := int64(-1 << 62)
			for _, rec := range w.Rank(rank) {
				if rec.End < t0 || rec.Start > t1 {
					return false
				}
				if rec.Start < prev {
					return false
				}
				prev = rec.Start
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
