package trace

import (
	"bytes"
	"fmt"
	"io"
	"os"
)

// VerifyChunk is one line of a verification report: a chunk frame (or, in a
// damaged file, the span where one should have been).
type VerifyChunk struct {
	Offset int64  // frame offset in the file
	Bytes  int64  // frame length including magic, length, and CRC
	OK     bool   // checksum verified
	Err    string // what failed, for damaged entries
}

// VerifyReport is the result of a per-chunk integrity pass over a trace
// file, the -verify output of cmd/trepair.
type VerifyReport struct {
	Version  int
	Writer   string
	NumRanks int
	Chunks   []VerifyChunk
	// Decode reports whether the surviving block stream fully decodes into
	// a valid trace (legacy files have no checksums, so this is their only
	// verification).
	Decode    bool
	DecodeErr string
}

// OK reports whether the file verified clean: every chunk checksummed and
// the block stream decoded.
func (vr *VerifyReport) OK() bool {
	for _, c := range vr.Chunks {
		if !c.OK {
			return false
		}
	}
	return vr.Decode
}

// BadChunks counts the damaged entries.
func (vr *VerifyReport) BadChunks() int {
	n := 0
	for _, c := range vr.Chunks {
		if !c.OK {
			n++
		}
	}
	return n
}

// String renders a one-line summary.
func (vr *VerifyReport) String() string {
	if vr.OK() {
		return fmt.Sprintf("ok: v%d, %d ranks, %d chunks verified", vr.Version, vr.NumRanks, len(vr.Chunks))
	}
	if !vr.Decode {
		return fmt.Sprintf("damaged: v%d, %d ranks, %d/%d chunks bad, decode failed: %s",
			vr.Version, vr.NumRanks, vr.BadChunks(), len(vr.Chunks), vr.DecodeErr)
	}
	return fmt.Sprintf("damaged: v%d, %d ranks, %d/%d chunks bad",
		vr.Version, vr.NumRanks, vr.BadChunks(), len(vr.Chunks))
}

// VerifyFile is VerifyBytes over a file path.
func VerifyFile(path string) (*VerifyReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return VerifyBytes(data)
}

// VerifyBytes checks the integrity of a trace file image chunk by chunk:
// header checksum, every frame's CRC32C, and a full decode of the clean
// block stream. Only an unreadable header is an error; damage is reported,
// not failed on. Legacy (version-2) files carry no checksums, so their
// verification is the decode alone.
func VerifyBytes(data []byte) (*VerifyReport, error) {
	hdr, err := parseHeaderBytes(data)
	if err != nil {
		return nil, err
	}
	vr := &VerifyReport{Version: hdr.version, Writer: hdr.writer, NumRanks: hdr.numRanks}
	if hdr.version == FormatVersionLegacy {
		vr.Chunks = []VerifyChunk{{Offset: int64(hdr.end), Bytes: int64(len(data) - hdr.end), OK: true}}
		if _, err := ReadAll(bytes.NewReader(data)); err != nil {
			vr.Chunks[0].OK = false
			vr.Chunks[0].Err = err.Error()
			vr.DecodeErr = err.Error()
		} else {
			vr.Decode = true
		}
		return vr, nil
	}
	pos := hdr.end
	damaged := false
	for pos < len(data) {
		f, err := parseFrame(data, pos)
		if err == nil && f.crcOK {
			vr.Chunks = append(vr.Chunks, VerifyChunk{Offset: int64(pos), Bytes: int64(f.end - f.start), OK: true})
			pos = f.end
			continue
		}
		damaged = true
		reason := "checksum mismatch"
		end := len(data)
		if err != nil {
			reason = err.Error()
		} else {
			// CRC failure on a structurally complete frame: the span is known.
			end = f.end
		}
		if next := nextFrameCandidate(data, pos+1); next >= 0 {
			// Resync exactly like salvage so the reported span matches what
			// -salvage would quarantine.
			if err != nil || next < end {
				end = next
			}
		}
		vr.Chunks = append(vr.Chunks, VerifyChunk{Offset: int64(pos), Bytes: int64(end - pos), OK: false, Err: reason})
		pos = end
	}
	if damaged {
		// The stream cannot fully decode; report what salvage would say.
		_, rep, err := SalvageBytes(data)
		if err != nil {
			vr.DecodeErr = err.Error()
		} else {
			vr.DecodeErr = rep.String()
		}
		return vr, nil
	}
	if _, err := ReadAll(bytes.NewReader(data)); err != nil {
		vr.DecodeErr = err.Error()
		return vr, nil
	}
	vr.Decode = true
	return vr, nil
}

// WriteVerifyDetail writes the per-chunk lines of the report.
func (vr *VerifyReport) WriteVerifyDetail(w io.Writer) {
	for _, c := range vr.Chunks {
		status := "ok"
		if !c.OK {
			status = "BAD " + c.Err
		}
		fmt.Fprintf(w, "  chunk @%-10d %8d bytes  %s\n", c.Offset, c.Bytes, status)
	}
}
