package trace

import (
	"bytes"
	"fmt"
	"io"
	"os"
)

// VerifyChunk is one line of a verification report: a chunk frame (or, in a
// damaged file, the span where one should have been).
type VerifyChunk struct {
	Offset int64  // frame offset in the file
	Bytes  int64  // frame length including magic, length, and CRC
	OK     bool   // checksum verified
	Err    string // what failed, for damaged entries
}

// VerifyReport is the result of a per-chunk integrity pass over a trace
// file, the -verify output of cmd/trepair.
type VerifyReport struct {
	Version  int
	Writer   string
	NumRanks int
	Chunks   []VerifyChunk
	// Decode reports whether the surviving block stream fully decodes into
	// a valid trace (legacy files have no checksums, so this is their only
	// verification).
	Decode    bool
	DecodeErr string
}

// OK reports whether the file verified clean: every chunk checksummed and
// the block stream decoded.
func (vr *VerifyReport) OK() bool {
	for _, c := range vr.Chunks {
		if !c.OK {
			return false
		}
	}
	return vr.Decode
}

// BadChunks counts the damaged entries.
func (vr *VerifyReport) BadChunks() int {
	n := 0
	for _, c := range vr.Chunks {
		if !c.OK {
			n++
		}
	}
	return n
}

// String renders a one-line summary.
func (vr *VerifyReport) String() string {
	if vr.OK() {
		return fmt.Sprintf("ok: v%d, %d ranks, %d chunks verified", vr.Version, vr.NumRanks, len(vr.Chunks))
	}
	if !vr.Decode {
		return fmt.Sprintf("damaged: v%d, %d ranks, %d/%d chunks bad, decode failed: %s",
			vr.Version, vr.NumRanks, vr.BadChunks(), len(vr.Chunks), vr.DecodeErr)
	}
	return fmt.Sprintf("damaged: v%d, %d ranks, %d/%d chunks bad",
		vr.Version, vr.NumRanks, vr.BadChunks(), len(vr.Chunks))
}

// VerifyFile verifies a trace file in O(chunk) memory: a streaming frame
// pass over one open of the file, then a streaming decode (or salvage
// summary) pass over a second. Multi-gigabyte traces verify without ever
// being held in RAM.
func VerifyFile(path string) (*VerifyReport, error) {
	open := func() (io.Reader, io.Closer, error) {
		f, err := os.Open(path)
		return f, f, err
	}
	return verifyStream(open)
}

// VerifyBytes checks the integrity of a trace file image chunk by chunk:
// header checksum, every frame's CRC32C, and a full decode of the clean
// block stream. Only an unreadable header is an error; damage is reported,
// not failed on. Legacy (version-2) files carry no checksums, so their
// verification is the decode alone.
func VerifyBytes(data []byte) (*VerifyReport, error) {
	open := func() (io.Reader, io.Closer, error) {
		return bytes.NewReader(data), nil, nil
	}
	return verifyStream(open)
}

// verifyStream runs the two verification passes over independently opened
// readers of the same input.
func verifyStream(open func() (io.Reader, io.Closer, error)) (*VerifyReport, error) {
	r, cl, err := open()
	if err != nil {
		return nil, err
	}
	vr, legacy, damaged, err := verifyFramePass(r)
	if cl != nil {
		cl.Close() //nolint:ioerr // read-side close; verification never writes
	}
	if err != nil {
		return nil, err
	}

	r, cl, err = open()
	if err != nil {
		return nil, err
	}
	defer func() {
		if cl != nil {
			cl.Close() //nolint:ioerr // read-side close; verification never writes
		}
	}()
	switch {
	case legacy:
		if err := decodeCheck(r); err != nil {
			vr.Chunks[0].OK = false
			vr.Chunks[0].Err = err.Error()
			vr.DecodeErr = err.Error()
		} else {
			vr.Decode = true
		}
	case damaged:
		// The stream cannot fully decode; report what salvage would say.
		c, err := NewSalvageCursor(r)
		if err != nil {
			vr.DecodeErr = err.Error()
			break
		}
		c.Drain()
		vr.DecodeErr = c.Report().String()
	default:
		if err := decodeCheck(r); err != nil {
			vr.DecodeErr = err.Error()
		} else {
			vr.Decode = true
		}
	}
	return vr, nil
}

// verifyFramePass walks the chunk frames of one reader, recording a
// VerifyChunk per frame (or per damaged span, resynchronizing exactly like
// salvage so the reported spans match what -salvage would quarantine).
func verifyFramePass(r io.Reader) (vr *VerifyReport, legacy, damaged bool, err error) {
	w := newFrameWalker(r)
	hdr, err := w.readHeader()
	if err != nil {
		return nil, false, false, err
	}
	vr = &VerifyReport{Version: hdr.version, Writer: hdr.writer, NumRanks: hdr.numRanks}
	if hdr.version == FormatVersionLegacy {
		total := w.drain()
		vr.Chunks = []VerifyChunk{{Offset: int64(hdr.end), Bytes: total - int64(hdr.end), OK: true}}
		return vr, true, false, nil
	}
	for !w.atEnd() {
		pos := w.offset()
		f, ferr := w.frame()
		if ferr == nil && f.crcOK {
			vr.Chunks = append(vr.Chunks, VerifyChunk{Offset: pos, Bytes: f.end - f.off, OK: true})
			w.advanceTo(f.end)
			continue
		}
		damaged = true
		reason := "checksum mismatch"
		var end int64
		if ferr != nil {
			reason = ferr.Error()
			// The span is unknown; it runs to the next magic candidate or
			// the end of the file.
			w.scanMagic(pos + 1)
			end = w.offset()
		} else {
			// CRC failure on a structurally complete frame: the span is
			// known, unless an earlier magic candidate resyncs sooner.
			end = f.end
			if next := w.candidateWithin(pos+1, f.end); next >= 0 {
				end = next
			}
			w.advanceTo(end)
		}
		vr.Chunks = append(vr.Chunks, VerifyChunk{Offset: pos, Bytes: end - pos, OK: false, Err: reason})
	}
	return vr, false, damaged, nil
}

// WriteVerifyDetail writes the per-chunk lines of the report.
func (vr *VerifyReport) WriteVerifyDetail(w io.Writer) {
	for _, c := range vr.Chunks {
		status := "ok"
		if !c.OK {
			status = "BAD " + c.Err
		}
		fmt.Fprintf(w, "  chunk @%-10d %8d bytes  %s\n", c.Offset, c.Bytes, status)
	}
}
