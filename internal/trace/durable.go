package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tracedbg/internal/iofault"
)

// SyncPolicy selects how aggressively a FileWriter forces sealed chunks to
// stable storage. The policies trade write throughput against how much
// history a host crash can cost (see DESIGN.md §11 for measurements).
type SyncPolicy int

const (
	// SyncNone never fsyncs; the OS flushes on its own schedule. A crash
	// may lose everything since the last kernel writeback. Fastest.
	SyncNone SyncPolicy = iota
	// SyncInterval fsyncs at chunk seals, at most once per
	// WriterOptions.SyncEvery. Bounds crash loss to one interval.
	SyncInterval
	// SyncEveryChunk fsyncs after every sealed chunk. A crash loses at most
	// the chunk under construction. Slowest.
	SyncEveryChunk
)

// DefaultSyncInterval is the SyncInterval cadence when WriterOptions.SyncEvery
// is unset.
const DefaultSyncInterval = time.Second

// String returns the policy's flag spelling (see ParseSyncPolicy).
func (p SyncPolicy) String() string {
	switch p {
	case SyncNone:
		return "none"
	case SyncInterval:
		return "interval"
	case SyncEveryChunk:
		return "every-chunk"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy parses a policy flag value: "none", "interval", or
// "every-chunk".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "none", "":
		return SyncNone, nil
	case "interval":
		return SyncInterval, nil
	case "every-chunk", "everychunk", "every":
		return SyncEveryChunk, nil
	}
	return SyncNone, fmt.Errorf("trace: unknown sync policy %q (want none, interval, or every-chunk)", s)
}

// WriterOptions configures a FileWriter's format revision and durability.
// The zero value is the default: version-3 framing, writer identity
// DefaultWriterIdentity, DefaultChunkSize chunks, no fsync.
type WriterOptions struct {
	// Writer is the identity recorded in the version-3 header (a host name,
	// collector id, or tool name). "" selects DefaultWriterIdentity.
	Writer string
	// ChunkBytes is the payload size at which directly written records seal
	// into a chunk frame. <= 0 selects DefaultChunkSize. ShardedWriter
	// batches are framed one chunk per batch regardless.
	ChunkBytes int
	// Sync is the durability policy applied at chunk seals.
	Sync SyncPolicy
	// SyncEvery is the minimum spacing between fsyncs under SyncInterval.
	// <= 0 selects DefaultSyncInterval.
	SyncEvery time.Duration
	// LegacyV2 emits the version-2 format (no framing, no checksums) for
	// compatibility tooling and format tests.
	LegacyV2 bool
	// BuildIndex accumulates a sidecar index (checkpoints, chunk extents,
	// location postings) incrementally as records are encoded, so finalizing
	// a file can emit its ".tdx" without re-reading anything. Ignored for
	// LegacyV2 writers. The path-based writers (WriteFileAtomic,
	// SegmentedWriter) write the sidecar themselves; other callers seal it
	// via FileWriter.SealIndex / ShardedWriter.SealIndex.
	BuildIndex bool
	// FS is the filesystem seam the path-based writers (WriteFileAtomic,
	// SegmentedWriter, manifests) perform their file operations through.
	// nil selects the OS passthrough; tests install iofault injectors here.
	FS iofault.FS
}

func (o WriterOptions) withDefaults() WriterOptions {
	if o.Writer == "" {
		o.Writer = DefaultWriterIdentity
	}
	if o.ChunkBytes <= 0 {
		o.ChunkBytes = DefaultChunkSize
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = DefaultSyncInterval
	}
	o.FS = iofault.Or(o.FS)
	return o
}

// IOError is a typed storage failure from the durable write path: which
// operation failed, on which file. It unwraps to the underlying cause so
// errors.Is(err, syscall.ENOSPC) and iofault.IsDiskFull classify it.
type IOError struct {
	Op   string // "create", "write", "sync", "close", "rename", "manifest"
	Path string
	Err  error
}

func (e *IOError) Error() string {
	return fmt.Sprintf("trace: %s %s: %v", e.Op, e.Path, e.Err)
}

func (e *IOError) Unwrap() error { return e.Err }

func ioErr(op, path string, err error) error {
	if err == nil {
		return nil
	}
	return &IOError{Op: op, Path: path, Err: err}
}

// WriteFileAtomic serializes t to path with crash-safe finalization: the
// bytes go to path+".tmp", are fsynced, and the file is renamed into place
// (then the directory is fsynced), so a crash mid-write can never leave a
// half-written file under the final name — readers see the old file or the
// complete new one.
func WriteFileAtomic(path string, t *Trace, opts WriterOptions) (err error) {
	fsys := iofault.Or(opts.FS)
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return ioErr("create", tmp, err)
	}
	defer func() {
		if err != nil {
			f.Close()        //nolint:ioerr // already failing; surfacing err
			fsys.Remove(tmp) //nolint:ioerr // best-effort cleanup
		}
	}()
	fw, err := writeAll(f, t, opts)
	if err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return ioErr("sync", tmp, err)
	}
	if err = f.Close(); err != nil {
		return ioErr("close", tmp, err)
	}
	if err = fsys.Rename(tmp, path); err != nil {
		return ioErr("rename", path, err)
	}
	if err = fsys.SyncDir(filepath.Dir(path)); err != nil {
		return ioErr("syncdir", path, err)
	}
	finishSidecar(fsys, path, fw)
	return nil
}

// finishSidecar reconciles a trace file's sidecar after the file itself was
// atomically (re)written: any existing sidecar describes the old bytes and
// is removed; a fresh one is written when the writer built an index.
// Sidecars are a pure cache, so failures here are deliberately swallowed —
// a leftover stale sidecar fails its data-CRC validation and a missing one
// just routes readers to the scan paths.
func finishSidecar(fsys iofault.FS, path string, fw *FileWriter) {
	fsys.Remove(IndexPath(path)) //nolint:ioerr // best-effort cache invalidation
	if fw == nil {
		return
	}
	if si := fw.SealIndex(); si != nil {
		_ = WriteIndexFileFS(fsys, IndexPath(path), si) // cache only; scan paths cover a miss
	}
}

// WriteFileAtomicCursor is WriteFileAtomic for a record stream: records
// are drawn from cur — already in the desired write order — instead of a
// materialized trace, so the peak memory is the writer's chunk buffer.
// The incomplete flag and reason are preserved as the trailer marker.
// Returns the number of records written.
func WriteFileAtomicCursor(path string, numRanks int, cur RecordCursor, incomplete bool, reason string, opts WriterOptions) (n int, err error) {
	fsys := iofault.Or(opts.FS)
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return 0, ioErr("create", tmp, err)
	}
	defer func() {
		if err != nil {
			f.Close()        //nolint:ioerr // already failing; surfacing err
			fsys.Remove(tmp) //nolint:ioerr // best-effort cleanup
		}
	}()
	fw, err := NewFileWriterOptions(f, numRanks, opts)
	if err != nil {
		return 0, err
	}
	for {
		rec, rerr := cur.Next()
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			err = rerr
			return 0, err
		}
		if err = fw.Write(rec); err != nil {
			return 0, err
		}
	}
	if incomplete {
		if err = fw.WriteIncomplete(reason); err != nil {
			return 0, err
		}
	}
	if err = fw.Close(); err != nil {
		return 0, err
	}
	if err = f.Sync(); err != nil {
		return 0, ioErr("sync", tmp, err)
	}
	if err = f.Close(); err != nil {
		return 0, ioErr("close", tmp, err)
	}
	if err = fsys.Rename(tmp, path); err != nil {
		return 0, ioErr("rename", path, err)
	}
	if err = fsys.SyncDir(filepath.Dir(path)); err != nil {
		return 0, ioErr("syncdir", path, err)
	}
	finishSidecar(fsys, path, fw)
	return fw.Count(), nil
}

// manifestMagic heads a segment manifest file, followed by the CRC32C of
// the JSON body in hex and a newline.
const manifestMagic = "TDBGMAN1"

// IsManifest reports whether the byte prefix identifies a segment manifest
// — the format sniff used by store.Open.
func IsManifest(prefix []byte) bool {
	return len(prefix) >= len(manifestMagic) && string(prefix[:len(manifestMagic)]) == manifestMagic
}

// Manifest describes a rotated trace: an ordered list of standalone segment
// files that together form one history. The manifest file is itself
// checksummed (magic + body CRC on the first line).
type Manifest struct {
	FormatVersion int           `json:"format_version"`
	NumRanks      int           `json:"num_ranks"`
	Writer        string        `json:"writer"`
	Segments      []SegmentInfo `json:"segments"`
}

// SegmentInfo is one rotated segment file, named relative to the manifest.
type SegmentInfo struct {
	Name    string `json:"name"`
	Bytes   int64  `json:"bytes"`
	Records int    `json:"records"`
}

// WriteManifest writes m to path atomically (tmp + fsync + rename) with a
// checksummed header line.
func WriteManifest(path string, m *Manifest) error {
	return WriteManifestFS(nil, path, m)
}

// WriteManifestFS is WriteManifest through an explicit filesystem seam
// (nil selects the OS passthrough).
func WriteManifestFS(fsys iofault.FS, path string, m *Manifest) (err error) {
	fsys = iofault.Or(fsys)
	body, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	body = append(body, '\n')
	head := fmt.Sprintf("%s %08x\n", manifestMagic, crcChunk(body))
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return ioErr("create", tmp, err)
	}
	defer func() {
		if err != nil {
			f.Close()        //nolint:ioerr // already failing; surfacing err
			fsys.Remove(tmp) //nolint:ioerr // best-effort cleanup
		}
	}()
	if _, err = io.WriteString(f, head); err != nil {
		return ioErr("write", tmp, err)
	}
	if _, err = f.Write(body); err != nil {
		return ioErr("write", tmp, err)
	}
	if err = f.Sync(); err != nil {
		return ioErr("sync", tmp, err)
	}
	if err = f.Close(); err != nil {
		return ioErr("close", tmp, err)
	}
	if err = fsys.Rename(tmp, path); err != nil {
		return ioErr("rename", path, err)
	}
	return ioErr("syncdir", path, fsys.SyncDir(filepath.Dir(path)))
}

// LoadManifest reads and checksum-verifies a segment manifest.
func LoadManifest(path string) (*Manifest, error) {
	return LoadManifestFS(nil, path)
}

// LoadManifestFS is LoadManifest through an explicit filesystem seam.
func LoadManifestFS(fsys iofault.FS, path string) (*Manifest, error) {
	data, err := iofault.Or(fsys).ReadFile(path)
	if err != nil {
		return nil, err
	}
	var want uint32
	var consumed int
	if n, err := fmt.Sscanf(string(data), manifestMagic+" %08x\n", &want); err != nil || n != 1 {
		return nil, fmt.Errorf("trace: %s: not a segment manifest", path)
	}
	nl := 0
	for nl < len(data) && data[nl] != '\n' {
		nl++
	}
	consumed = nl + 1
	if consumed >= len(data) {
		return nil, fmt.Errorf("trace: %s: manifest body missing", path)
	}
	body := data[consumed:]
	if crcChunk(body) != want {
		return nil, fmt.Errorf("trace: %s: manifest checksum mismatch", path)
	}
	var m Manifest
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("trace: %s: manifest: %w", path, err)
	}
	return &m, nil
}

// countingFile wraps a segment file with a racily readable byte count and
// forwards Sync so FileWriter's durability policy still reaches the file.
type countingFile struct {
	f iofault.File
	n atomic.Int64
}

func (c *countingFile) Write(p []byte) (int, error) {
	n, err := c.f.Write(p)
	c.n.Add(int64(n))
	return n, err
}

func (c *countingFile) Sync() error { return c.f.Sync() }

// segmentSink is the writer a SegmentedWriter rotates over: the sharded
// (per-rank batched) writer for throughput, or a plain FileWriter when the
// caller needs records framed in exactly the order they were written.
type segmentSink interface {
	Write(r *Record) error
	WriteIncomplete(reason string) error
	Flush() error
	Count() int
	BytesAccepted() int64
	SealIndex() *SegmentIndex
}

// seqSink adapts FileWriter to the segmentSink interface.
type seqSink struct{ *FileWriter }

func (s seqSink) BytesAccepted() int64 { return s.BytesEmitted() }

// SegmentedWriter rotates a trace writer across size-bounded segment files,
// each a standalone (independently loadable, independently verifiable)
// trace file, recording the sequence in a checksummed manifest at Close.
//
// The default sink is a ShardedWriter: rotation drains every rank buffer
// first, so each rank's records split across segments in emission order and
// LoadSegmented can concatenate per-rank streams without sorting. The
// sequential variant (NewSequentialSegmentedWriter) frames records in exact
// write order instead — what a collector session needs so that, after a
// crash, the salvageable prefix of the last segment corresponds one to one
// with a prefix of the client's record sequence and the record count is an
// exact resume point.
type SegmentedWriter struct {
	mu       sync.Mutex
	dir      string
	base     string
	numRanks int
	segBytes int64
	opts     WriterOptions
	fsys     iofault.FS
	seq      bool // sequential (FileWriter) sink instead of sharded

	cf       *countingFile
	sw       segmentSink
	segs     []SegmentInfo
	done     int  // records in finished segments
	manifest int  // segments covered by the last SyncManifest
	indexing bool // BuildIndex requested and format supports it
	indexed  int  // finished segments whose sidecar was written
}

// DefaultSegmentBytes is the rotation threshold when NewSegmentedWriter is
// given a non-positive one.
const DefaultSegmentBytes int64 = 256 << 20

// NewSegmentedWriter creates dir/base-00000.trace and returns a writer that
// rotates to a new segment whenever the current one exceeds segBytes.
func NewSegmentedWriter(dir, base string, numRanks int, segBytes int64, opts WriterOptions) (*SegmentedWriter, error) {
	if segBytes <= 0 {
		segBytes = DefaultSegmentBytes
	}
	gw := &SegmentedWriter{dir: dir, base: base, numRanks: numRanks, segBytes: segBytes, opts: opts,
		fsys: iofault.Or(opts.FS), indexing: opts.BuildIndex && !opts.LegacyV2}
	if err := gw.openSegmentLocked(); err != nil {
		return nil, err
	}
	return gw, nil
}

// NewSequentialSegmentedWriter is NewSegmentedWriter with a sequential sink:
// records are framed in exactly the order they are written (no per-rank
// batching), so a crash-truncated segment salvages to a strict prefix of
// the write sequence. Collector sessions use this to make "records
// accepted" a durable, exact resume point.
func NewSequentialSegmentedWriter(dir, base string, numRanks int, segBytes int64, opts WriterOptions) (*SegmentedWriter, error) {
	if segBytes <= 0 {
		segBytes = DefaultSegmentBytes
	}
	gw := &SegmentedWriter{dir: dir, base: base, numRanks: numRanks, segBytes: segBytes, opts: opts, seq: true,
		fsys: iofault.Or(opts.FS), indexing: opts.BuildIndex && !opts.LegacyV2}
	if err := gw.openSegmentLocked(); err != nil {
		return nil, err
	}
	return gw, nil
}

// ResumeSegmentedWriter reopens an existing segment store for appending:
// the already-finished segments (typically rebuilt by crash recovery) are
// carried into the manifest as-is and writing continues in a fresh segment
// numbered after them. The sink is sequential (see
// NewSequentialSegmentedWriter).
func ResumeSegmentedWriter(dir, base string, numRanks int, segBytes int64, existing []SegmentInfo, opts WriterOptions) (*SegmentedWriter, error) {
	if segBytes <= 0 {
		segBytes = DefaultSegmentBytes
	}
	gw := &SegmentedWriter{dir: dir, base: base, numRanks: numRanks, segBytes: segBytes, opts: opts, seq: true,
		fsys: iofault.Or(opts.FS), segs: append([]SegmentInfo(nil), existing...),
		indexing: opts.BuildIndex && !opts.LegacyV2}
	for _, s := range existing {
		gw.done += s.Records
	}
	if err := gw.openSegmentLocked(); err != nil {
		return nil, err
	}
	return gw, nil
}

func (gw *SegmentedWriter) segName(i int) string {
	return fmt.Sprintf("%s-%05d.trace", gw.base, i)
}

// ManifestPath returns where Close will write the manifest.
func (gw *SegmentedWriter) ManifestPath() string {
	return filepath.Join(gw.dir, gw.base+".manifest")
}

func (gw *SegmentedWriter) openSegmentLocked() error {
	name := gw.segName(len(gw.segs))
	path := filepath.Join(gw.dir, name)
	f, err := gw.fsys.Create(path)
	if err != nil {
		return ioErr("create", path, err)
	}
	// Make the new directory entry durable immediately: records fsynced into
	// this segment must not vanish with an unsynced entry if the host dies
	// before the next manifest publication syncs the directory.
	if err := gw.fsys.SyncDir(gw.dir); err != nil {
		f.Close() //nolint:ioerr // already failing; surfacing err
		return ioErr("syncdir", gw.dir, err)
	}
	cf := &countingFile{f: f}
	var sw segmentSink
	if gw.seq {
		fw, err := NewFileWriterOptions(cf, gw.numRanks, gw.opts)
		if err != nil {
			f.Close() //nolint:ioerr // error path; the writer-construction error is surfaced
			return err
		}
		sw = seqSink{fw}
	} else {
		shw, err := NewShardedWriterOptions(cf, gw.numRanks, DefaultChunkSize, gw.opts)
		if err != nil {
			f.Close() //nolint:ioerr // error path; the writer-construction error is surfaced
			return err
		}
		sw = shw
	}
	gw.cf = cf
	gw.sw = sw
	return nil
}

// finishSegmentLocked flushes, fsyncs, and closes the current segment,
// appending its manifest entry and — when the sink built one — writing the
// segment's sidecar index from data already in hand.
func (gw *SegmentedWriter) finishSegmentLocked() error {
	if gw.sw == nil {
		return nil
	}
	if err := gw.sw.Flush(); err != nil {
		return err
	}
	n := gw.sw.Count()
	if err := gw.cf.f.Sync(); err != nil {
		return ioErr("sync", gw.cf.f.Name(), err)
	}
	if err := gw.cf.f.Close(); err != nil {
		return ioErr("close", gw.cf.f.Name(), err)
	}
	name := gw.segName(len(gw.segs))
	if si := gw.sw.SealIndex(); si != nil {
		// Best effort: the segment's records are durable either way, and a
		// missing sidecar only costs readers the scan path.
		path := filepath.Join(gw.dir, name)
		if WriteIndexFileFS(gw.fsys, IndexPath(path), si) == nil {
			gw.indexed++
		}
	}
	gw.segs = append(gw.segs, SegmentInfo{
		Name:    name,
		Bytes:   gw.cf.n.Load(),
		Records: n,
	})
	gw.done += n
	gw.sw, gw.cf = nil, nil
	return nil
}

// IndexStatus reports sidecar-index progress: segments whose sidecar is
// written, and segments still pending one (finished segments whose sidecar
// write failed or predates this writer, plus the segment in progress).
// (0, 0) when the writer is not building indexes.
func (gw *SegmentedWriter) IndexStatus() (indexed, pending int) {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	if !gw.indexing {
		return 0, 0
	}
	pending = len(gw.segs) - gw.indexed
	if gw.sw != nil {
		pending++
	}
	return gw.indexed, pending
}

// Write appends one record, rotating to a fresh segment when the current
// file has outgrown the threshold. Safe for concurrent use.
func (gw *SegmentedWriter) Write(r *Record) error {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	if gw.sw == nil {
		return fmt.Errorf("trace: segmented writer is closed")
	}
	if gw.sw.BytesAccepted() >= gw.segBytes {
		if err := gw.finishSegmentLocked(); err != nil {
			return err
		}
		if err := gw.openSegmentLocked(); err != nil {
			return err
		}
	}
	return gw.sw.Write(r)
}

// WriteIncomplete marks the current segment's history incomplete.
func (gw *SegmentedWriter) WriteIncomplete(reason string) error {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	if gw.sw == nil {
		return fmt.Errorf("trace: segmented writer is closed")
	}
	return gw.sw.WriteIncomplete(reason)
}

// Flush drains buffers of the current segment to its file.
func (gw *SegmentedWriter) Flush() error {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	if gw.sw == nil {
		return nil
	}
	return gw.sw.Flush()
}

// Count returns records accepted across all segments.
func (gw *SegmentedWriter) Count() int {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	n := gw.done
	if gw.sw != nil {
		n += gw.sw.Count()
	}
	return n
}

// BytesWritten returns encoded bytes accepted across all segments: finished
// segment files plus the bytes of the segment under construction.
func (gw *SegmentedWriter) BytesWritten() int64 {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	var n int64
	for _, s := range gw.segs {
		n += s.Bytes
	}
	if gw.sw != nil {
		n += gw.sw.BytesAccepted()
	}
	return n
}

func (gw *SegmentedWriter) writeManifestLocked(segs []SegmentInfo) error {
	opts := gw.opts.withDefaults()
	return WriteManifestFS(gw.fsys, gw.ManifestPath(), &Manifest{
		FormatVersion: FormatVersion,
		NumRanks:      gw.numRanks,
		Writer:        opts.Writer,
		Segments:      segs,
	})
}

// SyncManifest atomically writes a manifest covering everything written so
// far, including a snapshot of the in-progress segment, so the store is
// openable (store.Open, ModeAuto) while still growing — a live reader sees
// all flushed chunks and salvages past any partially written tail. Writes
// are skipped when nothing changed since the last sync and no segment is in
// progress.
func (gw *SegmentedWriter) SyncManifest() error {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	segs := gw.segs
	if gw.sw != nil {
		segs = append(append([]SegmentInfo(nil), gw.segs...), SegmentInfo{
			Name:    gw.segName(len(gw.segs)),
			Bytes:   gw.cf.n.Load(),
			Records: gw.sw.Count(),
		})
	} else if gw.manifest == len(gw.segs) {
		return nil
	}
	gw.manifest = len(segs)
	return gw.writeManifestLocked(segs)
}

// Close finishes the current segment and writes the checksummed manifest.
func (gw *SegmentedWriter) Close() error {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	if err := gw.finishSegmentLocked(); err != nil {
		return err
	}
	return gw.writeManifestLocked(gw.segs)
}

// LoadSegmented reassembles a rotated trace from its manifest: segments are
// loaded in order (with salvage semantics — a damaged segment contributes
// what it can and records gaps) and concatenated per rank. A missing segment
// file becomes a recorded gap rather than an error.
//
// Deprecated: consumers outside internal/trace and internal/store should
// open manifests through store.Open, which sniffs them transparently.
func LoadSegmented(manifestPath string) (*Trace, error) {
	m, err := LoadManifest(manifestPath)
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(manifestPath)
	out := New(m.NumRanks)
	for _, seg := range m.Segments {
		t, err := LoadFileParallel(filepath.Join(dir, seg.Name))
		if err != nil {
			out.MarkIncomplete(fmt.Sprintf("segment %s unreadable: %v", seg.Name, err))
			out.RecordGap(Gap{Reason: fmt.Sprintf("segment %s unreadable", seg.Name), Bytes: seg.Bytes})
			continue
		}
		for rank := 0; rank < t.NumRanks() && rank < out.NumRanks(); rank++ {
			for _, r := range t.Rank(rank) {
				if _, err := out.Append(r); err != nil {
					return nil, fmt.Errorf("trace: segment %s: %w", seg.Name, err)
				}
			}
		}
		if t.Incomplete() {
			out.MarkIncomplete(t.IncompleteReason())
		}
		for _, g := range t.Gaps() {
			out.RecordGap(g)
		}
	}
	return out, nil
}
