// Package trace defines the execution-history representation used by the
// trace-driven debugger: event records, execution markers, in-memory traces,
// and an indexed on-disk trace-file format with on-demand flushing.
//
// The design follows the AIMS trace format described in the paper: a record
// per execution of each instrumented construct, identifying the construct by
// program location, the id of the process that executed it, and the start and
// end (virtual) time of the construct execution.  Message records additionally
// carry the message tag together with the source and destination of the
// message.  Every record carries the execution marker (the per-process
// UserMonitor counter value) at the time of its generation, which is what
// makes controlled replay possible.
package trace

import "fmt"

// Kind classifies an event record.
type Kind uint8

// Record kinds. The granularity spectrum mirrors the paper's three
// instrumentation strategies: construct-level records (source-to-source),
// function entry/exit records (compiler-inserted UserMonitor calls), and
// communication records (library wrappers).
const (
	// KindFuncEntry is generated at the top of a function prologue by the
	// compiler-inserted instrumentation (the UserMonitor call).
	KindFuncEntry Kind = iota
	// KindFuncExit is generated when an instrumented function returns.
	KindFuncExit
	// KindRegionBegin and KindRegionEnd delimit a source-level construct
	// (loop, statement group) instrumented AIMS-style.
	KindRegionBegin
	KindRegionEnd
	// KindCompute records a computation interval (a bar in the time-space
	// diagram that is neither communication nor idle).
	KindCompute
	// KindSend records a completed point-to-point send.
	KindSend
	// KindRecv records a completed point-to-point receive.
	KindRecv
	// KindCollective records participation in a collective operation.
	KindCollective
	// KindBlocked records an interval during which the process was blocked
	// inside a communication operation that did not complete (used for
	// post-mortem display of stalled executions, Figure 5).
	KindBlocked
	// KindMarker is a bare UserMonitor tick with no construct attached.
	KindMarker
	// KindCheckpoint marks a state snapshot taken by the checkpoint
	// manager (the paper's §6 logarithmic-backlog extension).
	KindCheckpoint
	// KindFault records a fault-injection event that is not attached to a
	// message operation (currently: an injected rank crash). Message-level
	// faults (drop, delay, duplicate) annotate the affected Send/Recv record
	// via the Fault field instead.
	KindFault

	numKinds = int(KindFault) + 1
)

var kindNames = [numKinds]string{
	"FuncEntry", "FuncExit", "RegionBegin", "RegionEnd", "Compute",
	"Send", "Recv", "Collective", "Blocked", "Marker", "Checkpoint",
	"Fault",
}

// String returns the canonical name of the kind.
func (k Kind) String() string {
	if int(k) < numKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsMessage reports whether records of this kind carry message endpoint
// fields (Src, Dst, Tag, Bytes).
func (k Kind) IsMessage() bool {
	return k == KindSend || k == KindRecv || k == KindBlocked
}

// NoRank is used in endpoint fields that do not apply (for example Dst of a
// compute record).
const NoRank = -1

// Fault annotation values. A record's Fault field is empty for normal
// events; fault-injected events carry one of these (FaultDelay with the
// injected delay appended, e.g. "delay+500").
const (
	// FaultDrop marks a send whose message was dropped on the wire.
	FaultDrop = "drop"
	// FaultDup marks the redelivered copy of a duplicated message (on the
	// send record) and the receive that consumed such a copy.
	FaultDup = "dup"
	// FaultCrash marks a KindFault record terminating a rank.
	FaultCrash = "crash"
	// FaultDelay prefixes delay annotations: "delay+<extra virtual time>".
	FaultDelay = "delay"
)

// Location identifies a point in the program source, the analogue of the
// address recorded by the UserMonitor function.
type Location struct {
	File string
	Line int
	Func string
}

// String renders the location as file:line(func).
func (l Location) String() string {
	switch {
	case l.File == "" && l.Func == "":
		return "?"
	case l.File == "":
		return l.Func
	case l.Func == "":
		return fmt.Sprintf("%s:%d", l.File, l.Line)
	}
	return fmt.Sprintf("%s:%d(%s)", l.File, l.Line, l.Func)
}

// IsZero reports whether the location is entirely unset.
func (l Location) IsZero() bool { return l.File == "" && l.Line == 0 && l.Func == "" }

// Marker is an execution marker: a tag that allows mapping from a particular
// trace record back to the point of its generation.  Seq is the value of the
// per-process UserMonitor counter when the record was generated.
type Marker struct {
	Rank int
	Seq  uint64
}

// String renders the marker as rank@seq.
func (m Marker) String() string { return fmt.Sprintf("%d@%d", m.Rank, m.Seq) }

// Before reports whether m precedes o on the same rank. Markers on different
// ranks are not ordered by this relation (use the causality package).
func (m Marker) Before(o Marker) bool { return m.Rank == o.Rank && m.Seq < o.Seq }

// Record is one entry of the execution history.
type Record struct {
	Kind Kind
	Rank int
	Loc  Location

	// Start and End are virtual-time nanoseconds assigned by the runtime's
	// deterministic clock. End >= Start.
	Start int64
	End   int64

	// Marker is the per-rank execution-marker counter value at generation.
	Marker uint64

	// Message fields (valid when Kind.IsMessage(), and for collectives where
	// Tag holds the collective id). For KindRecv, Src is the actual source
	// even when the receive was posted with AnySource.
	Src   int
	Dst   int
	Tag   int
	Bytes int

	// MsgID is a globally unique message identifier assigned at send time
	// and repeated on the matching receive record.  It gives exact
	// send/receive matching; the graph package also implements the paper's
	// tag-FIFO matching which must agree with MsgID on wildcard-free runs.
	MsgID uint64

	// WasWildcard records that a receive was posted with AnySource and/or
	// AnyTag, which is what makes its matching nondeterministic and subject
	// to replay enforcement.
	WasWildcard bool

	// Fault, when nonempty, marks the record as produced under fault
	// injection (see the Fault* constants). Faults are part of the recorded
	// history so a fault-injected run replays exactly and so the stall
	// analyzer can distinguish injected hangs from genuine deadlocks.
	Fault string

	// Name is the construct, function, or collective name.
	Name string

	// Args holds the first two arguments passed to the UserMonitor call,
	// as in the paper's prototype.
	Args [2]int64
}

// ExecMarker returns the execution marker of the record.
func (r *Record) ExecMarker() Marker { return Marker{Rank: r.Rank, Seq: r.Marker} }

// Duration returns End-Start.
func (r *Record) Duration() int64 { return r.End - r.Start }

// String renders a compact single-line description, used by the text trace
// displays and in test failure messages.
func (r *Record) String() string {
	ft := ""
	if r.Fault != "" {
		ft = " fault=" + r.Fault
	}
	switch {
	case r.Kind == KindSend:
		return fmt.Sprintf("[%d@%d %d..%d] Send %d->%d tag=%d bytes=%d msg=%d%s %s",
			r.Rank, r.Marker, r.Start, r.End, r.Src, r.Dst, r.Tag, r.Bytes, r.MsgID, ft, r.Name)
	case r.Kind == KindRecv:
		wc := ""
		if r.WasWildcard {
			wc = " wildcard"
		}
		return fmt.Sprintf("[%d@%d %d..%d] Recv %d->%d tag=%d bytes=%d msg=%d%s%s %s",
			r.Rank, r.Marker, r.Start, r.End, r.Src, r.Dst, r.Tag, r.Bytes, r.MsgID, wc, ft, r.Name)
	case r.Kind == KindFault:
		return fmt.Sprintf("[%d@%d %d..%d] Fault %s %s", r.Rank, r.Marker, r.Start, r.End, r.Fault, r.Name)
	case r.Kind == KindBlocked:
		return fmt.Sprintf("[%d@%d %d..%d] Blocked src=%d tag=%d %s",
			r.Rank, r.Marker, r.Start, r.End, r.Src, r.Tag, r.Name)
	case r.Kind.IsMessage():
		return fmt.Sprintf("[%d@%d %d..%d] %s %d->%d tag=%d", r.Rank, r.Marker, r.Start, r.End, r.Kind, r.Src, r.Dst, r.Tag)
	}
	return fmt.Sprintf("[%d@%d %d..%d] %s %s", r.Rank, r.Marker, r.Start, r.End, r.Kind, r.Name)
}

// EventID identifies an event inside an in-memory Trace: the rank and the
// index of the record within that rank's record sequence.
type EventID struct {
	Rank  int
	Index int
}

// String renders the id as rank/index.
func (e EventID) String() string { return fmt.Sprintf("%d/%d", e.Rank, e.Index) }

// Less orders event ids lexicographically (rank, then index); used only for
// canonical sorting of id sets, not for causality.
func (e EventID) Less(o EventID) bool {
	if e.Rank != o.Rank {
		return e.Rank < o.Rank
	}
	return e.Index < o.Index
}
