package trace

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRoundTripSample(t *testing.T) {
	tr := buildSample(t)
	var buf bytes.Buffer
	if err := WriteAll(&buf, tr); err != nil {
		t.Fatalf("WriteAll: %v", err)
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if got.NumRanks() != tr.NumRanks() || got.Len() != tr.Len() {
		t.Fatalf("round trip shape: ranks %d/%d len %d/%d",
			got.NumRanks(), tr.NumRanks(), got.Len(), tr.Len())
	}
	for rank := 0; rank < tr.NumRanks(); rank++ {
		if !reflect.DeepEqual(got.Rank(rank), tr.Rank(rank)) {
			t.Errorf("rank %d records differ:\n got %v\nwant %v", rank, got.Rank(rank), tr.Rank(rank))
		}
	}
}

func TestRoundTripRecordProperty(t *testing.T) {
	// Any single record (with normalized fields) survives a round trip.
	f := func(kind uint8, rank uint8, line uint16, start int64, dur uint32,
		marker uint64, src, dst int8, tag int16, nbytes uint16, msgID uint64,
		wild bool, a0, a1 int64, file, fn, name, fault string) bool {
		r := Record{
			Kind:   Kind(int(kind) % numKinds),
			Rank:   int(rank),
			Loc:    Location{File: file, Line: int(line), Func: fn},
			Start:  start,
			End:    start + int64(dur),
			Marker: marker,
			Src:    int(src), Dst: int(dst), Tag: int(tag),
			Bytes: int(nbytes), MsgID: msgID, WasWildcard: wild,
			Fault: fault, Name: name, Args: [2]int64{a0, a1},
		}
		var buf bytes.Buffer
		fw, err := NewFileWriter(&buf, 256)
		if err != nil {
			return false
		}
		if err := fw.Write(&r); err != nil {
			return false
		}
		if err := fw.Close(); err != nil {
			return false
		}
		sc, err := NewScanner(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		got, err := sc.Next()
		if err != nil {
			return false
		}
		if _, err := sc.Next(); err != io.EOF {
			return false
		}
		return reflect.DeepEqual(*got, r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripRandomTraces(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		tr := randomTrace(rng, 2+rng.Intn(5), 1+rng.Intn(100))
		var buf bytes.Buffer
		if err := WriteAll(&buf, tr); err != nil {
			t.Fatalf("WriteAll: %v", err)
		}
		got, err := ReadAll(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("ReadAll: %v", err)
		}
		for rank := 0; rank < tr.NumRanks(); rank++ {
			if !reflect.DeepEqual(got.Rank(rank), tr.Rank(rank)) {
				t.Fatalf("trace %d rank %d differs after round trip", i, rank)
			}
		}
	}
}

func TestStringInterning(t *testing.T) {
	var buf bytes.Buffer
	fw, err := NewFileWriter(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := Record{Kind: KindFuncEntry, Rank: 0, Name: "VeryLongFunctionNameRepeated", Loc: Location{File: "f.go", Func: "VeryLongFunctionNameRepeated"}}
	if err := fw.Write(&r); err != nil {
		t.Fatal(err)
	}
	size1 := buf.Len()
	for i := 0; i < 99; i++ {
		r.Start = int64(i + 1)
		r.End = r.Start
		if err := fw.Write(&r); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	perRecord := (buf.Len() - size1) / 99
	// Interned records must not repeat the 28-byte strings.
	if perRecord > 25 {
		t.Errorf("interning ineffective: %d bytes per repeated record", perRecord)
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 100 {
		t.Fatalf("got %d records", got.Len())
	}
	last := got.Rank(0)[99]
	if last.Name != "VeryLongFunctionNameRepeated" || last.Loc.File != "f.go" {
		t.Errorf("interned strings corrupted: %+v", last)
	}
}

func TestFlushMakesDataVisible(t *testing.T) {
	// The debugger reads trace data during execution: after Flush, a reader
	// of the bytes written so far must see all flushed records.
	var buf bytes.Buffer
	fw, err := NewFileWriter(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		rec := Record{Kind: KindMarker, Rank: i % 2, Marker: uint64(i), Start: int64(i), End: int64(i)}
		if err := fw.Write(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 10 {
		t.Fatalf("after flush reader sees %d records, want 10", got.Len())
	}
	if fw.Count() != 10 {
		t.Fatalf("Count = %d", fw.Count())
	}
}

func TestScannerErrors(t *testing.T) {
	if _, err := NewScanner(bytes.NewReader([]byte("BOGUS"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewScanner(bytes.NewReader(nil)); err == nil {
		t.Error("empty file accepted")
	}
	// Truncated record: header then garbage tag.
	var buf bytes.Buffer
	fw, _ := NewFileWriter(&buf, 1)
	_ = fw.Close()
	buf.WriteByte('Z')
	sc, err := NewScanner(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Next(); err == nil || err == io.EOF {
		t.Errorf("unknown block tag: err = %v", err)
	}
}

func TestReadAllRejectsBadRank(t *testing.T) {
	var buf bytes.Buffer
	fw, _ := NewFileWriter(&buf, 1) // one rank
	rec := Record{Kind: KindMarker, Rank: 5}
	if err := fw.Write(&rec); err != nil {
		t.Fatal(err)
	}
	_ = fw.Close()
	if _, err := ReadAll(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("record with rank outside header range accepted")
	}
}
