package trace

import (
	"errors"
	"fmt"
	"syscall"
	"testing"
	"time"

	"tracedbg/internal/iofault"
)

func faultTrace(records int) *Trace {
	t := New(2)
	for i := 0; i < records; i++ {
		t.Append(Record{Rank: i % 2, Kind: KindSend, Start: int64(i * 10), End: int64(i*10 + 5),
			Dst: 1, Marker: uint64(i)})
	}
	return t
}

// A failed rename must leave the previous file intact and surface a typed
// IOError that classifies as injected.
func TestWriteFileAtomicRenameFailure(t *testing.T) {
	disk := iofault.NewMemDisk(1)
	disk.MkdirAll("out", 0o777)

	// Seed a good file, then fail the atomic publish of its replacement.
	if err := WriteFileAtomic("out/t.trace", faultTrace(10), WriterOptions{FS: disk}); err != nil {
		t.Fatal(err)
	}
	before, err := disk.ReadFile("out/t.trace")
	if err != nil {
		t.Fatal(err)
	}

	in, err := iofault.NewInjector(disk, &iofault.Plan{Seed: 1, Rules: []iofault.Rule{
		iofault.RenameFailNth("t.trace", 1),
	}})
	if err != nil {
		t.Fatal(err)
	}
	err = WriteFileAtomic("out/t.trace", faultTrace(20), WriterOptions{FS: in})
	if err == nil || !iofault.IsInjected(err) {
		t.Fatalf("want injected rename failure, got %v", err)
	}
	var ioe *IOError
	if !errors.As(err, &ioe) || ioe.Op != "rename" {
		t.Fatalf("want typed IOError{Op: rename}, got %#v", err)
	}
	after, err := disk.ReadFile("out/t.trace")
	if err != nil {
		t.Fatalf("old file must survive a failed publish: %v", err)
	}
	if string(after) != string(before) {
		t.Fatal("failed atomic write disturbed the existing file")
	}
}

// ENOSPC mid-segment surfaces a typed disk-full error from the segmented
// writer, and what was already finalized stays loadable.
func TestSegmentedWriterENOSPC(t *testing.T) {
	disk := iofault.NewMemDisk(1)
	disk.MkdirAll("sess", 0o777)
	in, err := iofault.NewInjector(disk, &iofault.Plan{Seed: 1, Rules: []iofault.Rule{
		iofault.ENOSPCAfter(8 << 10),
	}})
	if err != nil {
		t.Fatal(err)
	}
	gw, err := NewSequentialSegmentedWriter("sess", "trace", 2, 2<<10, WriterOptions{
		FS: in, ChunkBytes: 512, Sync: SyncEveryChunk,
	})
	if err != nil {
		t.Fatal(err)
	}
	var werr error
	for i := 0; i < 10000; i++ {
		r := Record{Rank: i % 2, Kind: KindSend, Start: int64(i * 10), End: int64(i*10 + 5),
			Dst: 1, Marker: uint64(i), Name: fmt.Sprintf("op-%04d", i)}
		if werr = gw.Write(&r); werr != nil {
			break
		}
	}
	if werr == nil {
		t.Fatal("10k records fit an 8KiB budget?")
	}
	if !iofault.IsDiskFull(werr) || !errors.Is(werr, syscall.ENOSPC) {
		t.Fatalf("want typed ENOSPC, got %v", werr)
	}
}

// The lying-fsync rule makes every durability claim silently void; the
// writers must still function (the lie is only visible at a crash).
func TestSegmentedWriterLyingFsync(t *testing.T) {
	disk := iofault.NewMemDisk(1)
	disk.MkdirAll("sess", 0o777)
	in, err := iofault.NewInjector(disk, &iofault.Plan{Seed: 1, Rules: []iofault.Rule{
		iofault.LyingFsync(""),
	}})
	if err != nil {
		t.Fatal(err)
	}
	gw, err := NewSequentialSegmentedWriter("sess", "trace", 1, 4<<10, WriterOptions{
		FS: in, ChunkBytes: 256, Sync: SyncEveryChunk, SyncEvery: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		r := Record{Rank: 0, Kind: KindSend, Start: int64(i * 10), End: int64(i*10 + 5), Dst: 0}
		if err := gw.Write(&r); err != nil {
			t.Fatal(err)
		}
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	// Everything "synced", yet nothing is durable: the pessimal crash image
	// holds zero bytes for every file the writer touched.
	if got := disk.DurableLen("sess/trace-00000.trace"); got != 0 {
		t.Fatalf("lying fsync leaked durability: %d bytes claimed durable", got)
	}
}
