package trace

import (
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindFuncEntry:  "FuncEntry",
		KindFuncExit:   "FuncExit",
		KindSend:       "Send",
		KindRecv:       "Recv",
		KindBlocked:    "Blocked",
		KindCheckpoint: "Checkpoint",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(200).String(); got != "Kind(200)" {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestKindIsMessage(t *testing.T) {
	for _, k := range []Kind{KindSend, KindRecv, KindBlocked} {
		if !k.IsMessage() {
			t.Errorf("%v should be a message kind", k)
		}
	}
	for _, k := range []Kind{KindFuncEntry, KindFuncExit, KindCompute, KindMarker, KindCollective} {
		if k.IsMessage() {
			t.Errorf("%v should not be a message kind", k)
		}
	}
}

func TestLocationString(t *testing.T) {
	cases := []struct {
		loc  Location
		want string
	}{
		{Location{}, "?"},
		{Location{Func: "MatrSend"}, "MatrSend"},
		{Location{File: "strassen.go", Line: 161}, "strassen.go:161"},
		{Location{File: "strassen.go", Line: 161, Func: "MatrSend"}, "strassen.go:161(MatrSend)"},
	}
	for _, c := range cases {
		if got := c.loc.String(); got != c.want {
			t.Errorf("Location%+v.String() = %q, want %q", c.loc, got, c.want)
		}
	}
	if !(Location{}).IsZero() {
		t.Error("zero location should report IsZero")
	}
	if (Location{Line: 3}).IsZero() {
		t.Error("location with line should not be zero")
	}
}

func TestMarkerOrdering(t *testing.T) {
	a := Marker{Rank: 1, Seq: 5}
	b := Marker{Rank: 1, Seq: 9}
	c := Marker{Rank: 2, Seq: 9}
	if !a.Before(b) {
		t.Error("5 should be before 9 on same rank")
	}
	if b.Before(a) {
		t.Error("9 should not be before 5")
	}
	if a.Before(c) || c.Before(a) {
		t.Error("markers on different ranks are unordered")
	}
	if got := a.String(); got != "1@5" {
		t.Errorf("marker string = %q", got)
	}
}

func TestRecordString(t *testing.T) {
	send := Record{Kind: KindSend, Rank: 0, Marker: 3, Start: 10, End: 20,
		Src: 0, Dst: 7, Tag: 42, Bytes: 128, MsgID: 9, Name: "MPI_Send"}
	s := send.String()
	for _, frag := range []string{"Send", "0->7", "tag=42", "bytes=128", "msg=9"} {
		if !strings.Contains(s, frag) {
			t.Errorf("send string %q missing %q", s, frag)
		}
	}
	recv := Record{Kind: KindRecv, Rank: 7, Marker: 1, Src: 0, Dst: 7, Tag: 42, WasWildcard: true}
	if !strings.Contains(recv.String(), "wildcard") {
		t.Errorf("wildcard receive string %q should mention wildcard", recv.String())
	}
	blocked := Record{Kind: KindBlocked, Rank: 7, Src: 0, Tag: 42}
	if !strings.Contains(blocked.String(), "Blocked") {
		t.Errorf("blocked string %q", blocked.String())
	}
	fn := Record{Kind: KindFuncEntry, Rank: 2, Name: "Fib"}
	if !strings.Contains(fn.String(), "FuncEntry") || !strings.Contains(fn.String(), "Fib") {
		t.Errorf("func entry string %q", fn.String())
	}
}

func TestEventIDOrdering(t *testing.T) {
	a := EventID{Rank: 0, Index: 5}
	b := EventID{Rank: 0, Index: 6}
	c := EventID{Rank: 1, Index: 0}
	if !a.Less(b) || !b.Less(c) || c.Less(a) {
		t.Error("event id ordering is wrong")
	}
	if got := c.String(); got != "1/0" {
		t.Errorf("event id string = %q", got)
	}
}

func TestRecordAccessors(t *testing.T) {
	r := Record{Kind: KindCompute, Rank: 3, Marker: 17, Start: 100, End: 250}
	if m := r.ExecMarker(); m != (Marker{Rank: 3, Seq: 17}) {
		t.Errorf("ExecMarker = %v", m)
	}
	if d := r.Duration(); d != 150 {
		t.Errorf("Duration = %d, want 150", d)
	}
}
