package trace

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"none": SyncNone, "interval": SyncInterval, "every-chunk": SyncEveryChunk,
	} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
		if got.String() != in {
			t.Errorf("SyncPolicy(%v).String() = %q, want %q", got, got.String(), in)
		}
	}
	if _, err := ParseSyncPolicy("always"); err == nil {
		t.Error("ParseSyncPolicy accepted an unknown policy")
	}
}

func TestWriteFileAtomic(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	want := richTrace(rng, 3, 150)
	dir := t.TempDir()
	path := filepath.Join(dir, "out.trace")
	if err := WriteFileAtomic(path, want, WriterOptions{Writer: "test"}); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	got, err := LoadFileParallel(path)
	if err != nil {
		t.Fatalf("LoadFileParallel: %v", err)
	}
	tracesEqual(t, "atomic round trip", got, want)

	// No temporary debris under the final name's directory.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("leftover temporary file %s", e.Name())
		}
	}

	// The written identity is in the header.
	vr, err := VerifyFile(path)
	if err != nil {
		t.Fatalf("VerifyFile: %v", err)
	}
	if vr.Writer != "test" {
		t.Errorf("writer identity %q, want %q", vr.Writer, "test")
	}
}

func TestSegmentedWriterRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	want := richTrace(rng, 4, 500)
	dir := t.TempDir()

	gw, err := NewSegmentedWriter(dir, "run", want.NumRanks(), 4096, WriterOptions{Writer: "seg-test"})
	if err != nil {
		t.Fatalf("NewSegmentedWriter: %v", err)
	}
	for _, id := range want.MergedOrder() {
		if err := gw.Write(want.MustAt(id)); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := gw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	m, err := LoadManifest(gw.ManifestPath())
	if err != nil {
		t.Fatalf("LoadManifest: %v", err)
	}
	if len(m.Segments) < 2 {
		t.Fatalf("rotation produced %d segment(s), want several at 4 KiB", len(m.Segments))
	}
	for _, seg := range m.Segments {
		fi, err := os.Stat(filepath.Join(dir, seg.Name))
		if err != nil {
			t.Fatalf("segment %s: %v", seg.Name, err)
		}
		if fi.Size() != seg.Bytes {
			t.Errorf("segment %s: %d bytes on disk, manifest says %d", seg.Name, fi.Size(), seg.Bytes)
		}
		// Every segment is independently loadable and clean.
		vr, err := VerifyFile(filepath.Join(dir, seg.Name))
		if err != nil || !vr.OK() {
			t.Errorf("segment %s does not verify: %v %s", seg.Name, err, vr)
		}
	}

	got, err := LoadSegmented(gw.ManifestPath())
	if err != nil {
		t.Fatalf("LoadSegmented: %v", err)
	}
	tracesEqual(t, "segmented round trip", got, want)
}

// TestSequentialSegmentedWriter: the sequential sink must frame records in
// exact write order (any byte-truncation salvages to a strict prefix of the
// write sequence), stay live-openable through SyncManifest, and resume
// appending across a reopen with manifest-complete accounting.
func TestSequentialSegmentedWriter(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	want := richTrace(rng, 3, 400)
	order := want.MergedOrder()
	dir := t.TempDir()

	gw, err := NewSequentialSegmentedWriter(dir, "sess", want.NumRanks(), 4096, WriterOptions{Writer: "seq-test"})
	if err != nil {
		t.Fatalf("NewSequentialSegmentedWriter: %v", err)
	}
	half := len(order) / 2
	for _, id := range order[:half] {
		if err := gw.Write(want.MustAt(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := gw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := gw.SyncManifest(); err != nil {
		t.Fatalf("SyncManifest: %v", err)
	}
	// The live manifest must already expose everything flushed so far,
	// including the segment under construction.
	live, err := LoadSegmented(gw.ManifestPath())
	if err != nil {
		t.Fatalf("live LoadSegmented: %v", err)
	}
	if live.Len() != half {
		t.Fatalf("live manifest exposes %d records, want %d", live.Len(), half)
	}
	if got := gw.BytesWritten(); got <= 0 {
		t.Fatalf("BytesWritten = %d after %d records", got, half)
	}

	// Simulate a restart: recovery re-reads the finished bytes and resumes.
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	m, err := LoadManifest(gw.ManifestPath())
	if err != nil {
		t.Fatal(err)
	}
	rw, err := ResumeSegmentedWriter(dir, "sess", want.NumRanks(), 4096, m.Segments, WriterOptions{Writer: "seq-test"})
	if err != nil {
		t.Fatalf("ResumeSegmentedWriter: %v", err)
	}
	if rw.Count() != half {
		t.Fatalf("resumed Count = %d, want %d", rw.Count(), half)
	}
	for _, id := range order[half:] {
		if err := rw.Write(want.MustAt(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := LoadSegmented(rw.ManifestPath())
	if err != nil {
		t.Fatal(err)
	}
	tracesEqual(t, "sequential resume round trip", got, want)

	// Wire-order framing: scanning the segment files in manifest order must
	// replay the records exactly as written, which is what makes a record
	// count an exact resume point.
	m, err = LoadManifest(rw.ManifestPath())
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for _, seg := range m.Segments {
		f, err := os.Open(filepath.Join(dir, seg.Name))
		if err != nil {
			t.Fatal(err)
		}
		sc, err := NewScanner(f)
		if err != nil {
			t.Fatal(err)
		}
		for {
			rec, err := sc.Next()
			if err != nil {
				break
			}
			w := want.MustAt(order[i])
			if rec.Rank != w.Rank || rec.Marker != w.Marker || rec.Start != w.Start {
				t.Fatalf("record %d out of write order: got rank=%d marker=%d, want rank=%d marker=%d",
					i, rec.Rank, rec.Marker, w.Rank, w.Marker)
			}
			i++
		}
		f.Close()
	}
	if i != len(order) {
		t.Fatalf("scanned %d records across segments, want %d", i, len(order))
	}
}

func TestSegmentedMissingSegment(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	want := richTrace(rng, 3, 400)
	dir := t.TempDir()
	gw, err := NewSegmentedWriter(dir, "run", want.NumRanks(), 4096, WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range want.MergedOrder() {
		if err := gw.Write(want.MustAt(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	m, err := LoadManifest(gw.ManifestPath())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Segments) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(m.Segments))
	}
	victim := m.Segments[1].Name
	if err := os.Remove(filepath.Join(dir, victim)); err != nil {
		t.Fatal(err)
	}

	got, err := LoadSegmented(gw.ManifestPath())
	if err != nil {
		t.Fatalf("LoadSegmented with missing segment: %v", err)
	}
	if !got.Incomplete() || !got.HasGaps() {
		t.Fatalf("missing segment not surfaced: incomplete=%v gaps=%v", got.Incomplete(), got.Gaps())
	}
	if got.Len() == 0 || got.Len() >= want.Len() {
		t.Errorf("recovered %d of %d records around the missing segment", got.Len(), want.Len())
	}
	for r := 0; r < want.NumRanks(); r++ {
		if !isSubsequence(got.Rank(r), want.Rank(r)) {
			t.Errorf("rank %d: surviving records are not a subsequence of the original", r)
		}
	}
}

func TestManifestCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.manifest")
	m := &Manifest{FormatVersion: FormatVersion, NumRanks: 4, Writer: "x",
		Segments: []SegmentInfo{{Name: "run-00000.trace", Bytes: 123, Records: 7}}}
	if err := WriteManifest(path, m); err != nil {
		t.Fatalf("WriteManifest: %v", err)
	}
	got, err := LoadManifest(path)
	if err != nil {
		t.Fatalf("LoadManifest: %v", err)
	}
	if got.NumRanks != 4 || len(got.Segments) != 1 || got.Segments[0].Bytes != 123 {
		t.Fatalf("manifest round trip mismatch: %+v", got)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the JSON body: the CRC line must catch it.
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)/2] ^= 0x20
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(path); err == nil {
		t.Error("LoadManifest accepted a corrupted manifest")
	}
}

// TestSyncIntervalElapses: under the interval policy an fsync happens once
// the spacing has passed, at the next chunk seal.
func TestSyncIntervalElapses(t *testing.T) {
	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "t.trace"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fw, err := NewFileWriterOptions(f, 1, WriterOptions{
		ChunkBytes: 1, Sync: SyncInterval, SyncEvery: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := metrics().fsyncs.Value()
	for i := 0; i < 5; i++ {
		time.Sleep(time.Millisecond)
		if err := fw.Write(&Record{Kind: KindCompute, Rank: 0, Marker: uint64(i + 1),
			Start: int64(i), End: int64(i), Name: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := metrics().fsyncs.Value(); got <= before {
		t.Errorf("no fsyncs recorded under SyncInterval (counter %d -> %d)", before, got)
	}
}

// goldenTrace is a fixed trace, independent of any PRNG, for format
// stability tests: the encoded bytes must never change for a given format
// version.
func goldenTrace() *Trace {
	tr := New(2)
	tr.MustAppend(Record{Kind: KindSend, Rank: 0, Marker: 1,
		Loc:   Location{File: "ring.go", Line: 10, Func: "main"},
		Start: 0, End: 3, Src: 0, Dst: 1, Tag: 2, Bytes: 64, MsgID: 1,
		Name: "Send", Args: [2]int64{5, -5}})
	tr.MustAppend(Record{Kind: KindRecv, Rank: 1, Marker: 1,
		Loc:   Location{File: "ring.go", Line: 20, Func: "worker"},
		Start: 3, End: 5, Src: 0, Dst: 1, Tag: 2, Bytes: 64, MsgID: 1,
		WasWildcard: true, Name: "Recv"})
	tr.MustAppend(Record{Kind: KindCompute, Rank: 0, Marker: 2,
		Loc:   Location{File: "ring.go", Line: 11, Func: "main"},
		Start: 3, End: 9, Name: "mul"})
	tr.MustAppend(Record{Kind: KindFault, Rank: 1, Marker: 2,
		Start: 5, End: 5, Fault: FaultDrop, Name: "drop"})
	tr.MarkIncomplete("golden: stopped early")
	return tr
}

// TestGoldenFormatStability pins both on-disk formats: the bytes in
// testdata are what today's writers produce (no silent format drift), and
// both decode to the same records (the compatibility promise: files written
// by any released version keep loading bit-identically).
func TestGoldenFormatStability(t *testing.T) {
	want := goldenTrace()
	for _, tc := range []struct {
		name string
		file string
		opts WriterOptions
	}{
		{"v2", "testdata/legacy_v2.trace", WriterOptions{LegacyV2: true}},
		{"v3", "testdata/golden_v3.trace", WriterOptions{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteAllOptions(&buf, want, tc.opts); err != nil {
				t.Fatalf("encode: %v", err)
			}
			golden, err := os.ReadFile(tc.file)
			if err != nil {
				t.Fatalf("missing golden file (regenerate by writing the encode output): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), golden) {
				t.Errorf("%s encoding drifted from the golden bytes (%d vs %d bytes)",
					tc.name, buf.Len(), len(golden))
			}
			got, err := ReadAll(bytes.NewReader(golden))
			if err != nil {
				t.Fatalf("ReadAll golden: %v", err)
			}
			tracesEqual(t, tc.name+" golden", got, want)

			// The salvage and parallel paths agree on pristine goldens too.
			sTr, rep, err := ReadAllSalvage(bytes.NewReader(golden))
			if err != nil || !rep.Clean() {
				t.Fatalf("salvage golden: %v %s", err, rep)
			}
			tracesEqual(t, tc.name+" salvage", sTr, want)
			pTr, err := LoadParallel(golden)
			if err != nil {
				t.Fatalf("parallel golden: %v", err)
			}
			tracesEqual(t, tc.name+" parallel", pTr, want)
		})
	}
}
