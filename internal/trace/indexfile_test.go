package trace

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// locTrace is randomTrace with location fields filled in, so the location
// posting lists have something to index.
func locTrace(rng *rand.Rand, ranks, msgs int) *Trace {
	tr := randomTrace(rng, ranks, msgs)
	files := []string{"app.go", "solver.go", "comm.go"}
	funcs := []string{"main", "step", "exchange"}
	out := New(tr.NumRanks())
	for rank := 0; rank < tr.NumRanks(); rank++ {
		for _, r := range tr.Rank(rank) {
			k := int(r.MsgID+uint64(r.Loc.Line)) % len(files)
			r.Loc = Location{File: files[k], Line: 10 + k, Func: funcs[(k+1)%len(funcs)]}
			out.MustAppend(r)
		}
	}
	return out
}

// writerIndexOf serializes tr through a writer with BuildIndex set and
// returns the file bytes plus the sealed index.
func writerIndexOf(t *testing.T, tr *Trace, sharded bool) ([]byte, *SegmentIndex) {
	t.Helper()
	var buf bytes.Buffer
	opts := WriterOptions{BuildIndex: true, ChunkBytes: 512}
	var si *SegmentIndex
	if sharded {
		sw, err := NewShardedWriterOptions(&buf, tr.NumRanks(), 512, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range tr.MergedOrder() {
			if err := sw.Write(tr.MustAt(id)); err != nil {
				t.Fatal(err)
			}
		}
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}
		si = sw.SealIndex()
	} else {
		fw, err := writeAll(&buf, tr, opts)
		if err != nil {
			t.Fatal(err)
		}
		si = fw.SealIndex()
	}
	if si == nil {
		t.Fatal("SealIndex returned nil with BuildIndex set")
	}
	return buf.Bytes(), si
}

func TestIndexSidecarRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tr := locTrace(rng, 4, 400)
	data, si := writerIndexOf(t, tr, false)

	if err := si.Validate(data); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if err := si.VerifyExtents(data); err != nil {
		t.Fatalf("VerifyExtents: %v", err)
	}
	enc := EncodeIndex(si)
	dec, err := DecodeIndex(enc)
	if err != nil {
		t.Fatalf("DecodeIndex: %v", err)
	}
	if !bytes.Equal(EncodeIndex(dec), enc) {
		t.Fatal("decode/re-encode is not a fixed point")
	}
	if dec.NumRanks != 4 || dec.DataVersion != FormatVersion {
		t.Fatalf("decoded header: ranks=%d version=%d", dec.NumRanks, dec.DataVersion)
	}
	for rank := 0; rank < 4; rank++ {
		if dec.RecordCount(rank) != tr.RankLen(rank) {
			t.Fatalf("rank %d count = %d, want %d", rank, dec.RecordCount(rank), tr.RankLen(rank))
		}
	}
	if err := dec.Validate(data); err != nil {
		t.Fatalf("decoded Validate: %v", err)
	}
}

func TestIndexWriterMatchesBackfill(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, sharded := range []bool{false, true} {
		tr := locTrace(rng, 3, 300)
		data, si := writerIndexOf(t, tr, sharded)
		back, err := BuildSegmentIndexBytes(data, DefaultIndexStride)
		if err != nil {
			t.Fatalf("sharded=%v: BuildSegmentIndexBytes: %v", sharded, err)
		}
		if !bytes.Equal(EncodeIndex(si), EncodeIndex(back)) {
			t.Fatalf("sharded=%v: writer-built and backfilled sidecars differ", sharded)
		}
	}
}

func TestIndexSeekMarkerContract(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tr := locTrace(rng, 4, 600)
	data, si := writerIndexOf(t, tr, true)

	for trial := 0; trial < 60; trial++ {
		rank := rng.Intn(4)
		n := tr.RankLen(rank)
		if n == 0 {
			continue
		}
		from := tr.Rank(rank)[rng.Intn(n)].Marker
		cp, ok := si.SeekMarker(rank, from)
		if !ok {
			// No checkpoint strictly below from: the first record's marker
			// must already be >= from at checkpoint 0.
			if m, _ := si.FirstMarker(rank); m < from {
				t.Fatalf("rank %d: no checkpoint although first marker %d < %d", rank, m, from)
			}
			continue
		}
		if cp.Marker >= from {
			t.Fatalf("rank %d: checkpoint marker %d not strictly below %d", rank, cp.Marker, from)
		}
		if cp.Ordinal%si.Stride != 0 {
			t.Fatalf("checkpoint ordinal %d not a stride multiple", cp.Ordinal)
		}
		want := tr.Rank(rank)[cp.Ordinal]
		if want.Marker != cp.Marker || want.Start != cp.Start {
			t.Fatalf("rank %d ordinal %d: checkpoint (%d,%d) disagrees with record (%d,%d)",
				rank, cp.Ordinal, cp.Marker, cp.Start, want.Marker, want.Start)
		}
		// Resume a seeded scanner at the checkpoint's chunk: the j-th record
		// of the rank seen from there must be ordinal (cp.Ordinal-cp.Skip)+j,
		// and every record of the rank skipped by the seek has Marker < from.
		sec := io.NewSectionReader(bytes.NewReader(data), cp.Offset, int64(len(data))-cp.Offset)
		sc := NewSeededScanner(sec, si.DataVersion, si.NumRanks, si.Strings)
		base := cp.Ordinal - cp.Skip
		for o := 0; o < base; o++ {
			if m := tr.Rank(rank)[o].Marker; m >= from {
				t.Fatalf("rank %d: skipped ordinal %d has marker %d >= %d", rank, o, m, from)
			}
		}
		j := 0
		for j < 5 && base+j < n {
			rec, err := sc.Next()
			if err != nil {
				t.Fatalf("seeded scan: %v", err)
			}
			if rec.Rank != rank {
				continue
			}
			want := tr.Rank(rank)[base+j]
			if rec.Marker != want.Marker || rec.Start != want.Start || rec.MsgID != want.MsgID {
				t.Fatalf("rank %d: record %d after seek = (m=%d,s=%d), want (m=%d,s=%d)",
					rank, j, rec.Marker, rec.Start, want.Marker, want.Start)
			}
			j++
		}
	}
}

func TestIndexSeekTime(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	tr := locTrace(rng, 3, 300)
	_, si := writerIndexOf(t, tr, false)
	for trial := 0; trial < 30; trial++ {
		rank := rng.Intn(3)
		n := tr.RankLen(rank)
		if n == 0 {
			continue
		}
		from := tr.Rank(rank)[rng.Intn(n)].Start
		cp, ok := si.SeekTime(rank, from)
		if !ok {
			continue
		}
		if cp.Start >= from {
			t.Fatalf("rank %d: time checkpoint %d not strictly below %d", rank, cp.Start, from)
		}
	}
}

func TestIndexOccurrences(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	tr := locTrace(rng, 3, 300)
	_, si := writerIndexOf(t, tr, true)

	want := map[int]map[[2]interface{}][]int64{}
	for rank := 0; rank < 3; rank++ {
		want[rank] = map[[2]interface{}][]int64{}
		for i, r := range tr.Rank(rank) {
			k := [2]interface{}{r.Loc.File, r.Loc.Line}
			want[rank][k] = append(want[rank][k], int64(i))
		}
	}
	for rank := 0; rank < 3; rank++ {
		for k, ords := range want[rank] {
			got := si.Occurrences(rank, k[0].(string), k[1].(int))
			if !reflect.DeepEqual(got, ords) {
				t.Fatalf("Occurrences(%d, %v): got %v want %v", rank, k, got, ords)
			}
		}
	}
	if si.Occurrences(0, "missing.go", 1) != nil {
		t.Fatal("unknown location returned occurrences")
	}
}

func TestIndexSidecarCorruptionDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	tr := locTrace(rng, 2, 100)
	data, si := writerIndexOf(t, tr, false)
	enc := EncodeIndex(si)

	for _, off := range []int{2, len(enc) / 2, len(enc) - 2} {
		bad := append([]byte(nil), enc...)
		bad[off] ^= 0x40
		if _, err := DecodeIndex(bad); err == nil {
			t.Fatalf("flipped byte %d accepted", off)
		}
	}
	if _, err := DecodeIndex(enc[:len(enc)/2]); err == nil {
		t.Fatal("truncated sidecar accepted")
	}
	if _, err := DecodeIndex([]byte("not a sidecar at all")); err == nil {
		t.Fatal("garbage accepted")
	}

	// Data drift: a rewritten or damaged trace must fail validation.
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0x01
	if err := si.Validate(flipped); err == nil {
		t.Fatal("modified data passed validation")
	}
	if err := si.Validate(data[:len(data)-1]); err == nil {
		t.Fatal("truncated data passed validation")
	}
}

func TestIndexBackfillRejectsDamage(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	tr := locTrace(rng, 2, 200)
	data := fileOf(t, tr)

	bad := append([]byte(nil), data...)
	bad[len(bad)/2] ^= 0xFF
	if _, err := BuildSegmentIndexBytes(bad, 0); err == nil {
		t.Fatal("damaged file indexed")
	}
	if _, err := BuildSegmentIndexBytes(data[:len(data)-3], 0); err == nil {
		t.Fatal("truncated file indexed")
	}
}

func TestIndexBackfillLegacyV2(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	tr := locTrace(rng, 3, 200)
	var buf bytes.Buffer
	if err := WriteAllOptions(&buf, tr, WriterOptions{LegacyV2: true}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	si, err := BuildSegmentIndexBytes(data, 16)
	if err != nil {
		t.Fatalf("BuildSegmentIndexBytes(v2): %v", err)
	}
	if si.DataVersion != FormatVersionLegacy || len(si.Chunks()) != 0 {
		t.Fatalf("v2 sidecar: version=%d chunks=%d", si.DataVersion, len(si.Chunks()))
	}
	for rank := 0; rank < 3; rank++ {
		if si.RecordCount(rank) != tr.RankLen(rank) {
			t.Fatalf("rank %d count = %d want %d", rank, si.RecordCount(rank), tr.RankLen(rank))
		}
	}
	// v2 checkpoint offsets are exact record offsets with skip 0: a seeded
	// scanner from the offset yields exactly the checkpointed record first.
	for rank := 0; rank < 3; rank++ {
		n := tr.RankLen(rank)
		if n == 0 {
			continue
		}
		from := tr.Rank(rank)[n-1].Marker
		cp, ok := si.SeekMarker(rank, from)
		if !ok {
			continue
		}
		if cp.Skip != 0 {
			t.Fatalf("v2 checkpoint has skip %d", cp.Skip)
		}
		sec := io.NewSectionReader(bytes.NewReader(data), cp.Offset, int64(len(data))-cp.Offset)
		sc := NewSeededScanner(sec, si.DataVersion, si.NumRanks, si.Strings)
		rec, err := sc.Next()
		if err != nil {
			t.Fatalf("v2 seeded scan: %v", err)
		}
		if rec.Rank != rank || rec.Marker != cp.Marker {
			t.Fatalf("v2 seek landed on rank %d marker %d, want rank %d marker %d",
				rec.Rank, rec.Marker, rank, cp.Marker)
		}
	}
	// Round-trip the v2 sidecar too.
	dec, err := DecodeIndex(EncodeIndex(si))
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.Validate(data); err != nil {
		t.Fatal(err)
	}
}

func TestWriteIndexFileAtomicRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	tr := locTrace(rng, 2, 150)
	dir := t.TempDir()
	path := filepath.Join(dir, "run.trace")

	if err := WriteFileAtomic(path, tr, WriterOptions{BuildIndex: true}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	si, err := ReadIndexFile(IndexPath(path))
	if err != nil {
		t.Fatalf("sidecar not written: %v", err)
	}
	if err := si.Validate(data); err != nil {
		t.Fatalf("sidecar does not match data: %v", err)
	}
	// Rewriting the data without BuildIndex must remove the stale sidecar.
	if err := WriteFileAtomic(path, tr, WriterOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(IndexPath(path)); !os.IsNotExist(err) {
		t.Fatalf("stale sidecar survived rewrite: %v", err)
	}
}

func TestSegmentedWriterSidecars(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	tr := locTrace(rng, 2, 400)
	dir := t.TempDir()

	gw, err := NewSegmentedWriter(dir, "run", 2, 4<<10, WriterOptions{BuildIndex: true, ChunkBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range tr.MergedOrder() {
		if err := gw.Write(tr.MustAt(id)); err != nil {
			t.Fatal(err)
		}
	}
	if ix, pend := gw.IndexStatus(); pend == 0 && ix == 0 {
		t.Fatal("IndexStatus reports nothing while writing")
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	indexed, pending := gw.IndexStatus()
	if pending != 0 {
		t.Fatalf("IndexStatus after close: %d pending", pending)
	}
	m, err := LoadManifest(gw.ManifestPath())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Segments) < 2 {
		t.Fatalf("want rotation, got %d segments", len(m.Segments))
	}
	if indexed != len(m.Segments) {
		t.Fatalf("indexed %d of %d segments", indexed, len(m.Segments))
	}
	total := 0
	for _, seg := range m.Segments {
		p := filepath.Join(dir, seg.Name)
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		si, err := ReadIndexFile(IndexPath(p))
		if err != nil {
			t.Fatalf("segment %s sidecar: %v", seg.Name, err)
		}
		if err := si.Validate(data); err != nil {
			t.Fatalf("segment %s: %v", seg.Name, err)
		}
		if err := si.VerifyExtents(data); err != nil {
			t.Fatalf("segment %s extents: %v", seg.Name, err)
		}
		for rank := 0; rank < 2; rank++ {
			total += si.RecordCount(rank)
		}
	}
	if want := tr.Len(); total != want {
		t.Fatalf("sidecar counts sum to %d, want %d", total, want)
	}
}

func TestIndexDisabledByDefault(t *testing.T) {
	var buf bytes.Buffer
	fw, err := NewFileWriter(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if fw.SealIndex() != nil {
		t.Fatal("SealIndex non-nil without BuildIndex")
	}
	fw2, err := NewFileWriterOptions(&buf, 2, WriterOptions{BuildIndex: true, LegacyV2: true})
	if err != nil {
		t.Fatal(err)
	}
	if fw2.SealIndex() != nil {
		t.Fatal("SealIndex non-nil for legacy writer")
	}
}
