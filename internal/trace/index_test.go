package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// fileOf serializes a trace and returns the bytes.
func fileOf(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteAll(&buf, tr); err != nil {
		t.Fatalf("WriteAll: %v", err)
	}
	return buf.Bytes()
}

func TestIndexRescanMarkers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := randomTrace(rng, 4, 300)
	data := fileOf(t, tr)

	ix, err := BuildIndex(bytes.NewReader(data), 16)
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	if ix.NumRanks != 4 {
		t.Fatalf("NumRanks = %d", ix.NumRanks)
	}
	for rank := 0; rank < 4; rank++ {
		if ix.Entries(rank) == 0 && tr.RankLen(rank) > 0 {
			t.Fatalf("rank %d has records but no index entries", rank)
		}
	}

	for trial := 0; trial < 40; trial++ {
		rank := rng.Intn(4)
		n := tr.RankLen(rank)
		if n == 0 {
			continue
		}
		i := rng.Intn(n)
		j := i + rng.Intn(n-i)
		from := tr.Rank(rank)[i].Marker
		to := tr.Rank(rank)[j].Marker

		got, err := ix.RescanMarkers(bytes.NewReader(data), rank, from, to)
		if err != nil {
			t.Fatalf("RescanMarkers: %v", err)
		}
		want, err := LinearScanMarkers(bytes.NewReader(data), rank, from, to)
		if err != nil {
			t.Fatalf("LinearScanMarkers: %v", err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("rescan(rank=%d, %d..%d): got %d records, want %d",
				rank, from, to, len(got), len(want))
		}
		// Cross-check against the in-memory trace.
		var mem []Record
		for _, r := range tr.Rank(rank) {
			if r.Marker >= from && r.Marker <= to {
				mem = append(mem, r)
			}
		}
		if !reflect.DeepEqual(got, mem) {
			t.Fatalf("rescan disagrees with in-memory trace for rank %d, markers %d..%d", rank, from, to)
		}
	}
}

func TestIndexRescanWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tr := randomTrace(rng, 3, 200)
	data := fileOf(t, tr)
	ix, err := BuildIndex(bytes.NewReader(data), 0) // default stride
	if err != nil {
		t.Fatal(err)
	}
	if ix.Stride != DefaultIndexStride {
		t.Fatalf("Stride = %d", ix.Stride)
	}
	end := tr.EndTime()
	for trial := 0; trial < 30; trial++ {
		rank := rng.Intn(3)
		t0 := rng.Int63n(end + 1)
		t1 := t0 + rng.Int63n(end-t0+1)
		got, err := ix.RescanWindow(bytes.NewReader(data), rank, t0, t1)
		if err != nil {
			t.Fatalf("RescanWindow: %v", err)
		}
		var want []Record
		for _, r := range tr.Rank(rank) {
			if r.End >= t0 && r.Start <= t1 {
				want = append(want, r)
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("window rescan (rank %d, [%d,%d]): got %d want %d records",
				rank, t0, t1, len(got), len(want))
		}
	}
}

func TestIndexEmptyRank(t *testing.T) {
	tr := New(3) // rank 2 never records anything
	tr.MustAppend(Record{Kind: KindMarker, Rank: 0, Marker: 1})
	data := fileOf(t, tr)
	ix, err := BuildIndex(bytes.NewReader(data), 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.RescanMarkers(bytes.NewReader(data), 2, 0, 100)
	if err != nil {
		t.Fatalf("rescan empty rank: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("empty rank returned %d records", len(got))
	}
	got, err = ix.RescanWindow(bytes.NewReader(data), 2, 0, 100)
	if err != nil || len(got) != 0 {
		t.Fatalf("window on empty rank: %v, %d records", err, len(got))
	}
	if _, err := ix.RescanMarkers(bytes.NewReader(data), 99, 0, 1); err == nil {
		t.Error("bad rank accepted")
	}
}

func TestIndexStringTableSeeding(t *testing.T) {
	// Records late in the file reference strings interned early; a rescan
	// that seeks past the interning point must still resolve them.
	tr := New(2)
	var clock int64
	for i := 0; i < 200; i++ {
		rank := i % 2
		clock++
		tr.MustAppend(Record{
			Kind: KindFuncEntry, Rank: rank, Marker: uint64(i/2 + 1),
			Start: clock, End: clock,
			Name: "SharedFunctionName", Loc: Location{File: "app.go", Line: 42, Func: "SharedFunctionName"},
		})
	}
	data := fileOf(t, tr)
	ix, err := BuildIndex(bytes.NewReader(data), 8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.RescanMarkers(bytes.NewReader(data), 1, 90, 95)
	if err != nil {
		t.Fatalf("rescan: %v", err)
	}
	if len(got) != 6 {
		t.Fatalf("got %d records, want 6", len(got))
	}
	for _, r := range got {
		if r.Name != "SharedFunctionName" || r.Loc.File != "app.go" {
			t.Fatalf("string resolution failed mid-file: %+v", r)
		}
	}
}

func BenchmarkIndexedRescan(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	tr := randomTrace(rng, 4, 5000)
	var buf bytes.Buffer
	if err := WriteAll(&buf, tr); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	ix, err := BuildIndex(bytes.NewReader(data), 64)
	if err != nil {
		b.Fatal(err)
	}
	n := tr.RankLen(1)
	from := tr.Rank(1)[n-50].Marker
	to := tr.Rank(1)[n-1].Marker
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.RescanMarkers(bytes.NewReader(data), 1, from, to); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLinearRescan(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	tr := randomTrace(rng, 4, 5000)
	var buf bytes.Buffer
	if err := WriteAll(&buf, tr); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	n := tr.RankLen(1)
	from := tr.Rank(1)[n-50].Marker
	to := tr.Rank(1)[n-1].Marker
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LinearScanMarkers(bytes.NewReader(data), 1, from, to); err != nil {
			b.Fatal(err)
		}
	}
}
