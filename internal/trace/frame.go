package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Format revision 3: checksummed chunk framing.
//
// A version-3 trace file is a header followed by a sequence of self-
// delimiting, individually checksummed chunks:
//
//	header:  magic "TDBGTRC3"
//	         uvarint numRanks
//	         uvarint len(writer), writer bytes   -- writer identity
//	         4-byte LE CRC32C of the header bytes after the magic
//	chunk:   chunkMagic (4 bytes)
//	         uvarint len(payload)
//	         payload                             -- version-2 blocks
//	         4-byte LE CRC32C of the payload
//
// The payload of a chunk is exactly the version-2 block stream ('S' string
// deltas, 'R' records, 'I' incomplete markers), so the two format revisions
// share one block codec; version 3 only adds the integrity envelope. The
// CRC is Castagnoli (hardware-accelerated by hash/crc32 on amd64/arm64).
//
// The frame magic exists so a reader that hits a damaged chunk can scan
// forward to the next frame boundary and keep decoding — recovering the
// tail of the file, not just the clean prefix (see salvage.go). False
// positives (payload bytes that happen to spell the magic) are harmless:
// the frame parsed at a false boundary fails its CRC and the scan resumes.
//
// Compatibility promise: version-2 files (magic "TDBGTRC2") remain readable
// forever through the same Scanner/loader entry points, bit-compatibly;
// version sniffing happens on the 8-byte magic. Writers emit version 3
// unless WriterOptions.LegacyV2 asks for the old format.

const (
	fileMagicV2 = "TDBGTRC2"
	fileMagicV3 = "TDBGTRC3"

	// FormatVersionLegacy and FormatVersion name the two on-disk revisions.
	FormatVersionLegacy = 2
	FormatVersion       = 3

	// DefaultWriterIdentity is recorded in version-3 headers when the
	// producer does not identify itself.
	DefaultWriterIdentity = "tracedbg"

	// maxChunkPayload bounds the declared payload length a reader will
	// accept, so a corrupted length varint cannot demand an absurd
	// allocation.
	maxChunkPayload = 1 << 26

	// maxWriterLen bounds the header's writer-identity string.
	maxWriterLen = 1 << 10
)

// chunkMagic starts every version-3 frame. 0xF7 never begins a block tag
// ('S', 'R', 'I'), which keeps accidental matches in block streams rare;
// the CRC catches the rest.
var chunkMagic = [4]byte{0xF7, 'T', 'D', 'C'}

// castagnoli is the CRC32C table; crc32 dispatches to SSE4.2/ARMv8
// instructions for this polynomial.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// crcChunk computes the chunk checksum over one or more payload slices.
func crcChunk(parts ...[]byte) uint32 {
	var c uint32
	for _, p := range parts {
		c = crc32.Update(c, castagnoli, p)
	}
	return c
}

// appendHeaderV3 appends the version-3 file header for numRanks and the
// given writer identity ("" selects DefaultWriterIdentity).
func appendHeaderV3(buf []byte, numRanks int, writer string) []byte {
	if writer == "" {
		writer = DefaultWriterIdentity
	}
	if len(writer) > maxWriterLen {
		writer = writer[:maxWriterLen]
	}
	buf = append(buf, fileMagicV3...)
	body := len(buf)
	buf = binary.AppendUvarint(buf, uint64(numRanks))
	buf = binary.AppendUvarint(buf, uint64(len(writer)))
	buf = append(buf, writer...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crcChunk(buf[body:]))
	return append(buf, crc[:]...)
}

// appendFrameHeader appends the chunk magic and payload length.
func appendFrameHeader(buf []byte, payloadLen int) []byte {
	buf = append(buf, chunkMagic[:]...)
	return binary.AppendUvarint(buf, uint64(payloadLen))
}

// appendFrameCRC appends the little-endian checksum of the payload parts.
func appendFrameCRC(buf []byte, parts ...[]byte) []byte {
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crcChunk(parts...))
	return append(buf, crc[:]...)
}

// header is the decoded file header of either format revision.
type header struct {
	version  int
	numRanks int
	writer   string // "" for version 2
	end      int    // bytes consumed
}

// errBadHeaderCRC distinguishes a header whose fields parsed but whose
// checksum does not match — the one corruption a version-3 reader cannot
// salvage around, because numRanks shapes everything after it.
var errBadHeaderCRC = fmt.Errorf("trace: header checksum mismatch")

// parseHeaderBytes decodes the file header from an in-memory file image.
func parseHeaderBytes(data []byte) (header, error) {
	if len(data) < 8 {
		return header{}, fmt.Errorf("trace: bad magic")
	}
	switch string(data[:8]) {
	case fileMagicV2:
		nr, n := binary.Uvarint(data[8:])
		if n <= 0 {
			return header{}, fmt.Errorf("trace: reading rank count: truncated")
		}
		return header{version: FormatVersionLegacy, numRanks: int(nr), end: 8 + n}, nil
	case fileMagicV3:
		pos := 8
		nr, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return header{}, fmt.Errorf("trace: reading rank count: truncated")
		}
		pos += n
		wl, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return header{}, fmt.Errorf("trace: reading writer identity: truncated")
		}
		pos += n
		if wl > maxWriterLen || pos+int(wl)+4 > len(data) {
			return header{}, fmt.Errorf("trace: writer identity length %d out of range", wl)
		}
		writer := string(data[pos : pos+int(wl)])
		pos += int(wl)
		want := binary.LittleEndian.Uint32(data[pos : pos+4])
		if crcChunk(data[8:pos]) != want {
			return header{}, errBadHeaderCRC
		}
		pos += 4
		return header{version: FormatVersion, numRanks: int(nr), writer: writer, end: pos}, nil
	default:
		return header{}, fmt.Errorf("trace: bad magic %q", data[:8])
	}
}

// frame is a parsed version-3 chunk frame within an in-memory file image.
type frame struct {
	start        int // offset of the chunk magic
	payloadStart int
	payloadEnd   int
	end          int // offset just past the CRC
	crcOK        bool
}

// parseFrame parses the frame starting at pos. It fails (without a frame)
// when the bytes at pos are not a structurally plausible frame; a frame
// whose payload merely fails its checksum is returned with crcOK=false so
// callers can quarantine exactly that span.
func parseFrame(data []byte, pos int) (frame, error) {
	if pos+len(chunkMagic) > len(data) || string(data[pos:pos+4]) != string(chunkMagic[:]) {
		return frame{}, fmt.Errorf("trace: no chunk magic at offset %d", pos)
	}
	p := pos + 4
	n, sn := binary.Uvarint(data[p:])
	if sn <= 0 || n > maxChunkPayload {
		return frame{}, fmt.Errorf("trace: bad chunk length at offset %d", pos)
	}
	p += sn
	if p+int(n)+4 > len(data) {
		return frame{}, fmt.Errorf("trace: chunk at offset %d overruns file", pos)
	}
	f := frame{start: pos, payloadStart: p, payloadEnd: p + int(n), end: p + int(n) + 4}
	want := binary.LittleEndian.Uint32(data[f.payloadEnd:f.end])
	f.crcOK = crcChunk(data[f.payloadStart:f.payloadEnd]) == want
	return f, nil
}

// nextFrameCandidate returns the offset of the next chunk-magic occurrence
// at or after pos, or -1. This is the resynchronization scan of the salvage
// reader.
func nextFrameCandidate(data []byte, pos int) int {
	if pos < 0 {
		pos = 0
	}
	if pos >= len(data) {
		return -1
	}
	i := bytes.Index(data[pos:], chunkMagic[:])
	if i < 0 {
		return -1
	}
	return pos + i
}
