package trace

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Live tailing.
//
// The salvage machine (salvage.go) reads a finished file: anything it cannot
// parse is damage. A tailer follows a file that is still being written, so
// the same byte patterns mean something else — a frame whose payload has not
// all reached the disk yet is not damage, it is the future. The FileTail
// below drives the very same salvager over the very same frameWalker, but
// classifies every parse failure as either definitive (no later append can
// change the verdict: wrong magic bytes, oversized length, checksum mismatch
// on a complete frame) or provisional (a prefix of the chunk magic, an
// unfinished length varint, a frame extending past the bytes written so
// far). Definitive failures open a gap and resynchronize exactly like
// salvage; provisional ones wait for growth.
//
// When the producer is done (TailOptions.Done, or the caller cancels), the
// tail hands the walker back to the ordinary salvager to run to completion:
// whatever partial frame remains becomes damage with the same offsets, gap
// reasons, and incomplete marking a post-mortem read of the same bytes would
// produce. That handoff is what makes the differential guarantee cheap to
// state: the tailed record stream over a file is identical to the salvage
// cursor's stream over the file's final bytes.
//
// ChainTail extends the same contract across a rotated segment store: a
// segment is known finished once its successor file exists (rotation closes
// and fsyncs the old segment before creating the new one), so the tail hands
// off from segment to segment with no barrier on the manifest cadence.

// DefaultTailPoll is the growth re-check cadence when TailOptions.Poll is
// unset.
const DefaultTailPoll = 25 * time.Millisecond

// tailIngestMax bounds the bytes ingested per poll round so one enormous
// backlog cannot starve cancellation checks.
const tailIngestMax = 1 << 20

// tailQueueMax bounds decoded-but-undelivered records buffered inside a
// FileTail; pumping pauses until the consumer drains below the bound.
const tailQueueMax = 4096

// TailOptions tunes a tailing cursor. The zero value polls every
// DefaultTailPoll and never finishes on its own (cancel the context passed
// to Next, or set Done).
type TailOptions struct {
	// Poll is the cadence at which the tail re-checks the file for growth
	// when it has consumed everything written so far. <= 0 selects
	// DefaultTailPoll.
	Poll time.Duration
	// Done reports that the producer has finished: once it returns true and
	// no further growth is observed, the tail finalizes — trailing partial
	// frames become damage with post-mortem salvage semantics — and Next
	// drains to io.EOF. nil means the tail follows forever.
	Done func() bool

	// Observation hooks, all optional; used by the store layer's metrics.
	OnPoll   func() // a growth re-check found nothing new
	OnResync func() // definitive damage opened a gap mid-tail
	OnRotate func() // a chain tail handed off to the next segment
	OnReopen func() // the file identity changed under the tail (rewritten)
}

func (o TailOptions) withDefaults() TailOptions {
	if o.Poll <= 0 {
		o.Poll = DefaultTailPoll
	}
	return o
}

func (o TailOptions) poll() {
	if o.OnPoll != nil {
		o.OnPoll()
	}
}

func (o TailOptions) resync() {
	if o.OnResync != nil {
		o.OnResync()
	}
}

func (o TailOptions) rotate() {
	if o.OnRotate != nil {
		o.OnRotate()
	}
}

func (o TailOptions) reopen() {
	if o.OnReopen != nil {
		o.OnReopen()
	}
}

func (o TailOptions) producerDone() bool {
	return o.Done != nil && o.Done()
}

// TailCursor is a blocking pull iterator over a still-growing record stream.
// Next blocks until a record is durable in the underlying file(s), the
// context is cancelled, or the stream finalizes (io.EOF). The returned
// pointer is valid only until the following Next call.
type TailCursor interface {
	Next(ctx context.Context) (*Record, error)
	Close() error
}

// sleepCtx sleeps for d or until ctx is cancelled. A nil ctx never cancels.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// maxHeaderBytes is the largest possible file header; once this many bytes
// are buffered a failing header parse is final.
const maxHeaderBytes = 8 + 2*binary.MaxVarintLen64 + maxWriterLen + 4

// FileTail follows one version-3 trace file as it grows, yielding records
// with full salvage semantics the moment their frame is durable. See
// TailFile.
type FileTail struct {
	path string
	opts TailOptions

	f  *os.File
	fi os.FileInfo // identity at open, for rewrite detection

	w     *frameWalker // byte-image walker (eof=true): appends, never reads
	s     *salvager    // nil until the header parses
	hdr   header
	hdrOK bool

	read     int64 // absolute bytes ingested from the file into the walker
	scanFrom int64 // resync scan resume offset while a gap is open

	queue     []Record
	qpos      int
	delivered int64 // records handed to the caller across reopens
	skip      int64 // records to re-skip after a reopen

	done bool
	err  error // terminal error to surface instead of io.EOF
}

// TailFile opens a tailing cursor over a version-3 trace file. The file must
// exist; its header may still be on the way (Next waits for it). Version-2
// legacy files cannot be tailed — they carry no frames to follow — and
// surface an error from Next.
func TailFile(path string, opts TailOptions) (*FileTail, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close() //nolint:ioerr // error path on a read-only handle
		return nil, err
	}
	return &FileTail{
		path: path,
		opts: opts.withDefaults(),
		f:    f,
		fi:   fi,
		w:    &frameWalker{eof: true},
	}, nil
}

// Next returns the next durable record, blocking until one arrives, ctx is
// cancelled, or the tail finalizes (io.EOF).
func (ft *FileTail) Next(ctx context.Context) (*Record, error) {
	for {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		// Skip records already delivered before a reopen re-decoded them.
		for ft.qpos < len(ft.queue) && ft.skip > 0 {
			ft.qpos++
			ft.skip--
		}
		if ft.qpos < len(ft.queue) {
			r := &ft.queue[ft.qpos]
			ft.qpos++
			ft.delivered++
			return r, nil
		}
		if ft.done {
			if ft.err != nil {
				return nil, ft.err
			}
			return nil, io.EOF
		}
		ft.queue = ft.queue[:0]
		ft.qpos = 0
		grew, err := ft.ingest()
		if err != nil {
			// Transient visibility errors (a rewrite rename in flight) heal on
			// the next poll; a producer that is done and gone does not.
			if ft.opts.producerDone() {
				ft.err = err
				ft.done = true
				continue
			}
			if serr := sleepCtx(ctx, ft.opts.Poll); serr != nil {
				return nil, serr
			}
			ft.opts.poll()
			continue
		}
		progressed := ft.pump()
		if progressed || grew {
			continue
		}
		if ft.opts.producerDone() {
			// One more look catches bytes written just before Done flipped.
			if grew, err := ft.ingest(); err == nil && grew {
				continue
			}
			ft.finalize()
			continue
		}
		if err := sleepCtx(ctx, ft.opts.Poll); err != nil {
			return nil, err
		}
		ft.opts.poll()
	}
}

// Close releases the file handle.
func (ft *FileTail) Close() error {
	if ft.f == nil {
		return nil
	}
	err := ft.f.Close()
	ft.f = nil
	return err
}

// Report returns the salvage report of the current pass; final once Next
// returned io.EOF. Reopens (rewritten files) restart the report.
func (ft *FileTail) Report() *SalvageReport {
	if ft.s == nil {
		return nil
	}
	return ft.s.report
}

// Gaps returns the quarantined spans; final once Next returned io.EOF.
func (ft *FileTail) Gaps() []Gap {
	if ft.s == nil {
		return nil
	}
	return ft.s.allGaps()
}

// Incomplete reports whether the tailed history is incomplete and why; final
// once Next returned io.EOF.
func (ft *FileTail) Incomplete() (bool, string) {
	if ft.s == nil {
		return false, ""
	}
	return ft.s.finInc, ft.s.finWhy
}

// ingest pulls newly written bytes into the walker window. It detects the
// file being rewritten under the tail (crash recovery replaces damaged
// segments via atomic rename) and restarts the decode from scratch, skipping
// the records already delivered — the rewrite preserves the record-sequence
// prefix, so the count is an exact resume point.
func (ft *FileTail) ingest() (bool, error) {
	di, err := os.Stat(ft.path)
	if err != nil {
		return false, err
	}
	if !os.SameFile(ft.fi, di) || di.Size() < ft.read {
		if err := ft.reopenFile(); err != nil {
			return false, err
		}
		di, err = os.Stat(ft.path)
		if err != nil {
			return false, err
		}
	}
	if di.Size() <= ft.read {
		return false, nil
	}
	n := di.Size() - ft.read
	if n > tailIngestMax {
		n = tailIngestMax
	}
	ft.compactWindow()
	off := len(ft.w.buf)
	ft.w.buf = append(ft.w.buf, make([]byte, n)...)
	m, err := ft.f.ReadAt(ft.w.buf[off:], ft.read)
	ft.w.buf = ft.w.buf[:off+m]
	ft.read += int64(m)
	if err != nil && err != io.EOF {
		return m > 0, err
	}
	return m > 0, nil
}

// reopenFile restarts the tail over a replaced file.
func (ft *FileTail) reopenFile() error {
	f, err := os.Open(ft.path)
	if err != nil {
		return err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close() //nolint:ioerr // error path on a read-only handle
		return err
	}
	ft.f.Close() //nolint:ioerr // read-side handle swap; nothing durable pending
	ft.f, ft.fi = f, fi
	ft.w = &frameWalker{eof: true}
	ft.s = nil
	ft.hdrOK = false
	ft.read = 0
	ft.scanFrom = 0
	ft.queue = ft.queue[:0]
	ft.qpos = 0
	ft.skip = ft.delivered
	ft.opts.reopen()
	return nil
}

// compactWindow drops window bytes no later parse can need: everything
// before the current position, except that an open resync scan keeps its
// magic-overlap tail reachable.
func (ft *FileTail) compactWindow() {
	w := ft.w
	keep := w.pos
	if ft.s != nil && ft.s.openGap != nil {
		if k := int(ft.scanFrom - w.base); k < keep {
			keep = k
		}
	}
	if keep <= 0 {
		return
	}
	n := copy(w.buf, w.buf[keep:])
	w.buf = w.buf[:n]
	w.base += int64(keep)
	w.pos -= keep
}

// pump advances the live state machine as far as the ingested bytes allow,
// bounded by the delivery queue. Reports whether anything advanced.
func (ft *FileTail) pump() bool {
	if !ft.hdrOK && !ft.tryHeader() {
		return false
	}
	progressed := false
	for len(ft.queue)-ft.qpos < tailQueueMax {
		if !ft.liveStep() {
			break
		}
		progressed = true
	}
	return progressed
}

// tryHeader attempts to parse the file header from the bytes so far. Parse
// failures are provisional until maxHeaderBytes are buffered (or the tail
// finalizes); a wrong magic or a failing header checksum is final
// immediately — no append repairs bytes already written.
func (ft *FileTail) tryHeader() bool {
	buf := ft.w.buf[ft.w.pos:]
	hdr, err := parseHeaderBytes(buf)
	if err != nil {
		if len(buf) >= maxHeaderBytes || headerErrFinal(buf, err) {
			ft.err = err
			ft.done = true
		}
		return false
	}
	if hdr.version == FormatVersionLegacy {
		ft.err = fmt.Errorf("trace: cannot tail a version-2 legacy file (no chunk frames to follow)")
		ft.done = true
		return false
	}
	ft.w.advanceTo(ft.w.offset() + int64(hdr.end))
	ft.hdr = hdr
	ft.hdrOK = true
	ft.s = newSalvager(ft.w, nil, hdr)
	ft.s.emit = func(r Record) { ft.queue = append(ft.queue, r) }
	return true
}

// headerErrFinal reports whether a header parse failure cannot be cured by
// more bytes arriving.
func headerErrFinal(buf []byte, err error) bool {
	if err == errBadHeaderCRC {
		return true
	}
	if len(buf) >= 8 {
		magic := string(buf[:8])
		return magic != fileMagicV2 && magic != fileMagicV3
	}
	return false
}

// NumRanks returns the rank count once the header has parsed, else -1.
func (ft *FileTail) NumRanks() int {
	if !ft.hdrOK {
		return -1
	}
	return ft.hdr.numRanks
}

// tailFrameStatus classifies the bytes at the walker's current offset.
type tailFrameStatus int

const (
	tailFrameOK   tailFrameStatus = iota // complete, CRC-verified frame
	tailFrameWait                        // could still become a frame; wait for growth
	tailFrameBad                         // definitive damage
)

// tryFrame is frameWalker.frame with a third verdict: bytes that are not a
// frame *yet* but may become one. The bad-verdict reasons reproduce the
// post-mortem parser's error strings so gaps read identically either way.
func (ft *FileTail) tryFrame() (streamFrame, tailFrameStatus, string) {
	w := ft.w
	off := w.offset()
	buf := w.buf[w.pos:]
	if len(buf) < len(chunkMagic) {
		if bytes.HasPrefix(chunkMagic[:], buf) {
			return streamFrame{}, tailFrameWait, ""
		}
		return streamFrame{}, tailFrameBad, fmt.Sprintf("trace: no chunk magic at offset %d", off)
	}
	if !bytes.Equal(buf[:len(chunkMagic)], chunkMagic[:]) {
		return streamFrame{}, tailFrameBad, fmt.Sprintf("trace: no chunk magic at offset %d", off)
	}
	n, sn := binary.Uvarint(buf[len(chunkMagic):])
	if sn == 0 {
		if len(buf) >= len(chunkMagic)+binary.MaxVarintLen64 {
			return streamFrame{}, tailFrameBad, fmt.Sprintf("trace: bad chunk length at offset %d", off)
		}
		return streamFrame{}, tailFrameWait, ""
	}
	if sn < 0 || n > maxChunkPayload {
		return streamFrame{}, tailFrameBad, fmt.Sprintf("trace: bad chunk length at offset %d", off)
	}
	total := len(chunkMagic) + sn + int(n) + 4
	if len(buf) < total {
		return streamFrame{}, tailFrameWait, ""
	}
	ps := len(chunkMagic) + sn
	payload := buf[ps : ps+int(n)]
	crc := binary.LittleEndian.Uint32(buf[total-4 : total])
	f := streamFrame{off: off, end: off + int64(total), payload: payload, crcOK: crcChunk(payload) == crc}
	if !f.crcOK {
		return f, tailFrameBad, "checksum mismatch"
	}
	return f, tailFrameOK, ""
}

// liveStep advances past at most one event — a decoded chunk, or a gap
// opening — using only the bytes ingested so far. Returns false when no
// progress is possible without growth.
func (ft *FileTail) liveStep() bool {
	s := ft.s
	w := ft.w
	if s.openGap != nil {
		return ft.scanStep()
	}
	if w.avail() == 0 {
		return false
	}
	f, st, reason := ft.tryFrame()
	switch st {
	case tailFrameOK:
		s.decodeChunk(f.payload, f.off)
		s.report.ChunksOK++
		if s.damaged {
			metrics().chunksSalvaged.Inc()
		}
		w.advanceTo(f.end)
		return true
	case tailFrameWait:
		return false
	default:
		metrics().crcErrors.Inc()
		s.report.ChunksBad++
		s.openGap = &Gap{Offset: w.offset(), Reason: reason, Ranks: s.beforeMarks()}
		s.damaged = true
		ft.scanFrom = w.offset() + 1
		ft.opts.resync()
		return true
	}
}

// scanStep resynchronizes after damage: scan for the next chunk magic, try
// the candidate, close the gap on a verified frame — salvager.step's SCAN/TRY
// states, with the wait verdict keeping candidates alive across growth.
func (ft *FileTail) scanStep() bool {
	s := ft.s
	w := ft.w
	for {
		if !w.scanMagic(ft.scanFrom) {
			// Nothing in the bytes so far. Resume behind a possible partial
			// magic once more arrive (scanMagic's own overlap rule).
			resume := w.base + int64(len(w.buf)) - int64(len(chunkMagic)-1)
			if resume > ft.scanFrom {
				ft.scanFrom = resume
			}
			return false
		}
		cand := w.offset()
		f, st, _ := ft.tryFrame()
		switch st {
		case tailFrameOK:
			s.closeGap(cand)
			s.decodeChunk(f.payload, f.off)
			s.report.ChunksOK++
			metrics().chunksSalvaged.Inc()
			w.advanceTo(f.end)
			return true
		case tailFrameWait:
			ft.scanFrom = cand // retry this candidate after growth
			return false
		default:
			ft.scanFrom = cand + 1 // false positive; keep scanning
		}
	}
}

// finalize hands the walker to the ordinary salvager to run the remaining
// bytes to completion: trailing partial frames become damage with exactly
// the post-mortem offsets, reasons, and incomplete marking.
func (ft *FileTail) finalize() {
	if !ft.hdrOK {
		if !ft.tryHeader() {
			if !ft.done {
				// Surface the same error a post-mortem open of these bytes
				// gives (an unreadable header is the one fatal salvage case).
				_, err := parseHeaderBytes(ft.w.buf[ft.w.pos:])
				ft.err = err
				ft.done = true
			}
			return
		}
	}
	s := ft.s
	if s.openGap != nil {
		// Let the salvager resume the scan where the live scan stopped.
		ft.w.scanMagic(ft.scanFrom)
	}
	for s.step() {
	}
	s.finish()
	ft.done = true
}

// ChainTail follows a rotated segment store (SegmentedWriter layout): each
// segment through its own FileTail, handing off once the successor segment
// file exists — rotation closes and fsyncs a segment before creating the
// next, so successor existence marks the predecessor finished. Per-rank
// start ordering is enforced across boundaries exactly like the store's
// post-mortem chain cursor; unreadable segments are skipped the same way.
type ChainTail struct {
	manifestPath string
	dir, base    string
	opts         TailOptions

	numRanks  int
	ready     bool // manifest seen; numRanks known
	idx       int
	cur       *FileTail
	curName   string
	lastStart []int64
	have      []bool

	rotations int64
	done      bool
	err       error
}

// TailChain opens a tailing cursor over a segment manifest path (the
// "<base>.manifest" a SegmentedWriter maintains). The manifest may not exist
// yet; Next waits for the writer's first SyncManifest.
func TailChain(manifestPath string, opts TailOptions) (*ChainTail, error) {
	base := strings.TrimSuffix(filepath.Base(manifestPath), ".manifest")
	if base == filepath.Base(manifestPath) {
		return nil, fmt.Errorf("trace: %s: not a segment manifest path (want <base>.manifest)", manifestPath)
	}
	return &ChainTail{
		manifestPath: manifestPath,
		dir:          filepath.Dir(manifestPath),
		base:         base,
		opts:         opts.withDefaults(),
	}, nil
}

// segPath returns where segment i lives — SegmentedWriter's deterministic
// naming, which is also what every manifest it writes lists.
func (ct *ChainTail) segPath(i int) string {
	return filepath.Join(ct.dir, fmt.Sprintf("%s-%05d.trace", ct.base, i))
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// Next returns the next durable record across the segment chain.
func (ct *ChainTail) Next(ctx context.Context) (*Record, error) {
	for {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if ct.err != nil {
			return nil, ct.err
		}
		if ct.done {
			return nil, io.EOF
		}
		if !ct.ready {
			if err := ct.awaitManifest(ctx); err != nil {
				return nil, err
			}
			continue
		}
		if ct.cur == nil {
			path := ct.segPath(ct.idx)
			if !fileExists(path) {
				if ct.opts.producerDone() && !fileExists(path) {
					ct.done = true
					continue
				}
				if err := sleepCtx(ctx, ct.opts.Poll); err != nil {
					return nil, err
				}
				ct.opts.poll()
				continue
			}
			segIdx := ct.idx
			segOpts := ct.opts
			segOpts.OnRotate = nil // rotation is chain-level, counted below
			segOpts.Done = func() bool {
				return fileExists(ct.segPath(segIdx+1)) || ct.opts.producerDone()
			}
			ft, err := TailFile(path, segOpts)
			if err != nil {
				// Vanished between the existence check and the open: retry.
				if err := sleepCtx(ctx, ct.opts.Poll); err != nil {
					return nil, err
				}
				continue
			}
			ct.cur, ct.curName = ft, filepath.Base(path)
		}
		rec, err := ct.cur.Next(ctx)
		if err == io.EOF {
			ct.cur.Close() //nolint:ioerr // read-side cursor close at rotation
			ct.cur = nil
			ct.idx++
			ct.rotations++
			ct.opts.rotate()
			continue
		}
		if err != nil {
			if ctx != nil && ctx.Err() != nil {
				return nil, err
			}
			// Unreadable segment (headerless, rewritten empty): skip it, like
			// the post-mortem chain cursor skips segments it cannot open.
			ct.cur.Close() //nolint:ioerr // read-side close while skipping an unreadable segment
			ct.cur = nil
			ct.idx++
			continue
		}
		if rec.Rank >= 0 && rec.Rank < len(ct.lastStart) {
			if ct.have[rec.Rank] && ct.lastStart[rec.Rank] > rec.Start {
				ct.err = fmt.Errorf("trace: segment %s: %w", ct.curName,
					fmt.Errorf("trace: rank %d record start %d precedes previous start %d",
						rec.Rank, rec.Start, ct.lastStart[rec.Rank]))
				return nil, ct.err
			}
			ct.lastStart[rec.Rank] = rec.Start
			ct.have[rec.Rank] = true
		}
		return rec, nil
	}
}

// awaitManifest blocks until the writer's manifest is readable (its first
// SyncManifest), establishing the chain's rank count.
func (ct *ChainTail) awaitManifest(ctx context.Context) error {
	m, err := LoadManifest(ct.manifestPath)
	if err != nil {
		if ct.opts.producerDone() {
			if m, err = LoadManifest(ct.manifestPath); err != nil {
				ct.err = err
				return nil // surfaced on the next loop iteration
			}
		} else {
			if serr := sleepCtx(ctx, ct.opts.Poll); serr != nil {
				return serr
			}
			ct.opts.poll()
			return nil
		}
	}
	nr := m.NumRanks
	if nr < 0 {
		nr = 0
	}
	ct.numRanks = m.NumRanks
	ct.lastStart = make([]int64, nr)
	ct.have = make([]bool, nr)
	ct.ready = true
	return nil
}

// NumRanks returns the chain's rank count once the manifest has been seen,
// else -1.
func (ct *ChainTail) NumRanks() int {
	if !ct.ready {
		return -1
	}
	return ct.numRanks
}

// Rotations returns how many segment handoffs the tail has performed.
func (ct *ChainTail) Rotations() int64 { return ct.rotations }

// Close releases the current segment's file handle.
func (ct *ChainTail) Close() error {
	if ct.cur != nil {
		err := ct.cur.Close()
		ct.cur = nil
		return err
	}
	return nil
}

// TailDoneWhenComplete returns a Done func for tailing a collector session
// directory: it reports true once the session's metadata says the session
// finalized (complete or incomplete). dir is the session directory holding
// session.json; a missing or unreadable metadata file reads as "still
// running".
func TailDoneWhenComplete(dir string) func() bool {
	type meta struct {
		Complete   bool   `json:"complete"`
		Incomplete string `json:"incomplete_reason"`
	}
	path := filepath.Join(dir, "session.json")
	return func() bool {
		body, err := os.ReadFile(path)
		if err != nil {
			return false
		}
		var m meta
		if err := json.Unmarshal(body, &m); err != nil {
			return false
		}
		return m.Complete || m.Incomplete != ""
	}
}

var _ io.Closer = (*FileTail)(nil)
