package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"time"
)

// Block codec (shared by both format revisions)
//
//	'S' uvarint id, uvarint len, bytes        -- string-table entry
//	'R' encoded record                        -- one event
//	'I' uvarint len, bytes                    -- incomplete-history marker
//
// Strings (file names, function names, construct names) are interned: each
// distinct string is emitted once, before its first use.  Records refer to
// strings by table id.  The format is append-only so the monitor can flush
// partial traces on demand (the paper's extension of the AIMS monitor) and
// the debugger can consume the file while the target is still running.
//
// Version 2 ("TDBGTRC2") is a bare header followed by a raw block stream.
// Version 3 ("TDBGTRC3") wraps the same blocks in checksummed chunk frames
// and records a writer identity in the header; see frame.go for the
// envelope and the compatibility promise. An 'I' block may appear anywhere
// after the header; readers OR the flags together.

const (
	blockString     byte = 'S'
	blockRecord     byte = 'R'
	blockIncomplete byte = 'I'
)

// stringTable interns strings concurrently. New entries are assigned ids in
// order and their encoded 'S' blocks accumulate in pending; whichever writer
// next touches the file drains pending first, so every string block reaches
// the file before any record that references it. Lookups of already-interned
// strings (the overwhelmingly common case) take only a read lock.
type stringTable struct {
	mu      sync.RWMutex
	ids     map[string]uint64
	pending []byte // encoded 'S' blocks not yet written to the file
}

func (st *stringTable) intern(s string) uint64 {
	if s == "" {
		return 0 // 0 means "empty string"
	}
	st.mu.RLock()
	id, ok := st.ids[s]
	st.mu.RUnlock()
	if ok {
		return id
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if id, ok := st.ids[s]; ok {
		return id
	}
	id = uint64(len(st.ids) + 1)
	st.ids[s] = id
	st.pending = append(st.pending, blockString)
	st.pending = binary.AppendUvarint(st.pending, id)
	st.pending = binary.AppendUvarint(st.pending, uint64(len(s)))
	st.pending = append(st.pending, s...)
	return id
}

// take removes and returns the pending string blocks.
func (st *stringTable) take() []byte {
	st.mu.Lock()
	defer st.mu.Unlock()
	p := st.pending
	st.pending = nil
	return p
}

// snapshot returns the interned strings in id order (id i+1 at index i).
func (st *stringTable) snapshot() []string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]string, len(st.ids))
	for s, id := range st.ids {
		out[id-1] = s
	}
	return out
}

// syncer is the subset of *os.File the durability policies need. Writers
// whose underlying sink does not implement it (network connections, byte
// buffers) silently skip fsync.
type syncer interface{ Sync() error }

// FileWriter serializes records to a trace file. It is safe for concurrent
// use by multiple rank goroutines; for high rank counts prefer ShardedWriter,
// which batches per-rank buffers into this writer in large chunks.
//
// In the default version-3 format, blocks accumulate into a chunk buffer
// that is sealed — framed with its length and CRC32C — when it reaches
// WriterOptions.ChunkBytes, on Flush, and around every ShardedWriter batch.
// The configured SyncPolicy decides which chunk seals also reach stable
// storage via fsync.
type FileWriter struct {
	mu       sync.Mutex // guards everything below
	w        *bufio.Writer
	under    io.Writer
	sync     syncer // non-nil when under supports fsync
	opts     WriterOptions
	legacy   bool
	strings  stringTable
	scratch  []byte
	cbuf     []byte // version 3: chunk payload under construction
	frameBuf []byte // version 3: frame header/trailer scratch
	n        int    // records written
	out      int64  // bytes handed to the buffered writer (file size once flushed)
	lastSync time.Time
	om       *traceMetrics
	ib       *indexBuilder // non-nil when building a sidecar index at ingest
}

// NewFileWriter writes the header and returns a writer for numRanks ranks
// with default options (version-3 format, no fsync).
func NewFileWriter(w io.Writer, numRanks int) (*FileWriter, error) {
	return NewFileWriterOptions(w, numRanks, WriterOptions{})
}

// NewFileWriterOptions is NewFileWriter with explicit format and durability
// options.
func NewFileWriterOptions(w io.Writer, numRanks int, opts WriterOptions) (*FileWriter, error) {
	opts = opts.withDefaults()
	fw := &FileWriter{
		w:       bufio.NewWriterSize(w, 1<<16),
		under:   w,
		opts:    opts,
		legacy:  opts.LegacyV2,
		strings: stringTable{ids: make(map[string]uint64)},
		om:      metrics(),
	}
	if s, ok := w.(syncer); ok {
		fw.sync = s
	}
	// The builder attaches before the header is emitted so its running data
	// checksum covers every byte of the file, header included.
	if opts.BuildIndex && !opts.LegacyV2 {
		fw.ib = newIndexBuilder(numRanks, DefaultIndexStride, FormatVersion)
	}
	fw.lastSync = time.Now()
	if fw.legacy {
		if err := fw.put([]byte(fileMagicV2)); err != nil {
			return nil, fmt.Errorf("trace: writing magic: %w", err)
		}
		fw.scratch = binary.AppendUvarint(fw.scratch[:0], uint64(numRanks))
		if err := fw.put(fw.scratch); err != nil {
			return nil, fmt.Errorf("trace: writing header: %w", err)
		}
		return fw, nil
	}
	fw.scratch = appendHeaderV3(fw.scratch[:0], numRanks, opts.Writer)
	if err := fw.put(fw.scratch); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return fw, nil
}

// put writes to the buffered writer, accounting for the bytes: fw.out is
// the exact file size once buffers flush, which segment rotation consults
// without waiting for the 64 KiB buffer to drain.
func (fw *FileWriter) put(p []byte) error {
	n, err := fw.w.Write(p)
	fw.out += int64(n)
	if fw.ib != nil {
		fw.ib.crcBytes(p[:n])
	}
	return err
}

// BytesEmitted returns the bytes committed to the file so far plus the
// pending chunk payload — the file's size once buffers flush and the
// pending chunk seals.
func (fw *FileWriter) BytesEmitted() int64 {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return fw.out + int64(len(fw.cbuf))
}

// internRecord resolves the four interned string fields of a record.
func (fw *FileWriter) internRecord(r *Record) (fileID, funcID, nameID, faultID uint64) {
	return fw.strings.intern(r.Loc.File), fw.strings.intern(r.Loc.Func),
		fw.strings.intern(r.Name), fw.strings.intern(r.Fault)
}

// maxRecordEncoded bounds the encoded size of one 'R' block: the block tag,
// kind, and wildcard bytes plus 16 varints of at most 10 bytes each.
const maxRecordEncoded = 3 + 16*binary.MaxVarintLen64

// appendRecord appends the encoded 'R' block for r, whose string fields have
// already been interned as the given table ids. Capacity for a worst-case
// record is reserved once up front so every field store is a plain indexed
// write — this is the innermost loop of both file writers, hot enough that
// per-field append bookkeeping shows up in profiles.
func appendRecord(buf []byte, r *Record, fileID, funcID, nameID, faultID uint64) []byte {
	if cap(buf)-len(buf) < maxRecordEncoded {
		grown := make([]byte, len(buf), 2*cap(buf)+maxRecordEncoded)
		copy(grown, buf)
		buf = grown
	}
	b := buf[:cap(buf)]
	n := len(buf)
	b[n] = blockRecord
	b[n+1] = byte(r.Kind)
	n += 2
	n = putUvarint(b, n, uint64(r.Rank))
	n = putUvarint(b, n, fileID)
	n = putUvarint(b, n, uint64(r.Loc.Line))
	n = putUvarint(b, n, funcID)
	n = putVarint(b, n, r.Start)
	n = putVarint(b, n, r.End-r.Start) // durations compress better
	n = putUvarint(b, n, r.Marker)
	n = putVarint(b, n, int64(r.Src))
	n = putVarint(b, n, int64(r.Dst))
	n = putVarint(b, n, int64(r.Tag))
	n = putUvarint(b, n, uint64(r.Bytes))
	n = putUvarint(b, n, r.MsgID)
	if r.WasWildcard {
		b[n] = 1
	} else {
		b[n] = 0
	}
	n++
	n = putUvarint(b, n, faultID)
	n = putUvarint(b, n, nameID)
	n = putVarint(b, n, r.Args[0])
	n = putVarint(b, n, r.Args[1])
	return buf[:n]
}

// putUvarint writes v at b[n:] — the caller has reserved the space — and
// returns the advanced cursor. The single-byte case is split out so the
// common small-field store inlines at each appendRecord call site.
func putUvarint(b []byte, n int, v uint64) int {
	if v < 0x80 {
		b[n] = byte(v)
		return n + 1
	}
	return putUvarintMulti(b, n, v)
}

func putUvarintMulti(b []byte, n int, v uint64) int {
	for v >= 0x80 {
		b[n] = byte(v) | 0x80
		n++
		v >>= 7
	}
	b[n] = byte(v)
	return n + 1
}

// putVarint is putUvarint with zig-zag encoding, matching binary.AppendVarint.
func putVarint(b []byte, n int, v int64) int {
	uv := uint64(v) << 1
	if v < 0 {
		uv = ^uv
	}
	return putUvarint(b, n, uv)
}

// writePendingLocked drains the string-table deltas: directly to the file
// in the legacy format, into the pending chunk in version 3. Must run with
// fw.mu held, before any record bytes referencing those ids are written.
func (fw *FileWriter) writePendingLocked() error {
	p := fw.strings.take()
	if len(p) == 0 {
		return nil
	}
	if fw.legacy {
		return fw.put(p)
	}
	fw.cbuf = append(fw.cbuf, p...)
	return nil
}

// emitFrameLocked writes one sealed chunk frame whose payload is the
// concatenation of parts, without copying them together.
func (fw *FileWriter) emitFrameLocked(parts ...[]byte) error {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total == 0 {
		return nil
	}
	chunkStart := fw.out
	fw.frameBuf = appendFrameHeader(fw.frameBuf[:0], total)
	if err := fw.put(fw.frameBuf); err != nil {
		return err
	}
	for _, p := range parts {
		if err := fw.put(p); err != nil {
			return err
		}
	}
	fw.frameBuf = appendFrameCRC(fw.frameBuf[:0], parts...)
	if err := fw.put(fw.frameBuf); err != nil {
		return err
	}
	if fw.ib != nil {
		// frameBuf holds exactly the four payload-CRC bytes just written.
		fw.ib.sealChunk(chunkStart, fw.out-chunkStart, binary.LittleEndian.Uint32(fw.frameBuf))
	}
	fw.om.chunksSealed.Inc()
	return fw.afterChunkLocked()
}

// sealChunkLocked frames and writes the pending chunk buffer, if any.
func (fw *FileWriter) sealChunkLocked() error {
	if len(fw.cbuf) == 0 {
		return nil
	}
	err := fw.emitFrameLocked(fw.cbuf)
	fw.cbuf = fw.cbuf[:0]
	return err
}

// afterChunkLocked applies the durability policy after a chunk seal.
func (fw *FileWriter) afterChunkLocked() error {
	switch fw.opts.Sync {
	case SyncEveryChunk:
		return fw.fsyncLocked()
	case SyncInterval:
		if time.Since(fw.lastSync) >= fw.opts.SyncEvery {
			return fw.fsyncLocked()
		}
	}
	return nil
}

// fsyncLocked flushes buffered bytes and forces them to stable storage.
func (fw *FileWriter) fsyncLocked() error {
	fw.lastSync = time.Now()
	if err := fw.w.Flush(); err != nil {
		return err
	}
	if fw.sync == nil {
		return nil
	}
	if err := fw.sync.Sync(); err != nil {
		return fmt.Errorf("trace: fsync: %w", err)
	}
	fw.om.fsyncs.Inc()
	return nil
}

// writeChunk appends a batch of pre-encoded record blocks (nrec records) in
// one critical section, draining pending string deltas first. This is the
// entry point ShardedWriter batches through. In version 3 the batch becomes
// exactly one sealed chunk (string deltas prepended), so each ShardedWriter
// flush is independently checksummed.
func (fw *FileWriter) writeChunk(buf []byte, nrec int, metas []recMeta) error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if fw.legacy {
		if err := fw.writePendingLocked(); err != nil {
			return fmt.Errorf("trace: writing string table: %w", err)
		}
		if err := fw.put(buf); err != nil {
			return fmt.Errorf("trace: writing records: %w", err)
		}
		fw.n += nrec
		return nil
	}
	// Anything buffered from direct Writes must precede this batch in the
	// file, so seal it first.
	if err := fw.sealChunkLocked(); err != nil {
		return fmt.Errorf("trace: writing records: %w", err)
	}
	if fw.ib != nil {
		for i := range metas {
			m := &metas[i]
			fw.ib.record(int(m.rank), m.marker, m.start, m.fileID, int(m.line), m.funcID)
		}
	}
	pending := fw.strings.take()
	if err := fw.emitFrameLocked(pending, buf); err != nil {
		return fmt.Errorf("trace: writing records: %w", err)
	}
	fw.n += nrec
	return nil
}

// Write appends one record to the file.
func (fw *FileWriter) Write(r *Record) error {
	fileID, funcID, nameID, faultID := fw.internRecord(r)
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if err := fw.writePendingLocked(); err != nil {
		return fmt.Errorf("trace: writing string table: %w", err)
	}
	if fw.legacy {
		fw.scratch = appendRecord(fw.scratch[:0], r, fileID, funcID, nameID, faultID)
		if err := fw.put(fw.scratch); err != nil {
			return fmt.Errorf("trace: writing record: %w", err)
		}
		fw.n++
		return nil
	}
	fw.cbuf = appendRecord(fw.cbuf, r, fileID, funcID, nameID, faultID)
	if fw.ib != nil {
		fw.ib.record(r.Rank, r.Marker, r.Start, fileID, r.Loc.Line, funcID)
	}
	fw.n++
	if len(fw.cbuf) >= fw.opts.ChunkBytes {
		if err := fw.sealChunkLocked(); err != nil {
			return fmt.Errorf("trace: writing record: %w", err)
		}
	}
	return nil
}

// WriteIncomplete appends an incomplete-history marker: readers of the file
// will see a trace flagged Incomplete with the given reason. Used when the
// producer knows the history is partial (aborted run, lossy collection).
// In version 3 the marker's chunk is sealed immediately so the flag itself
// cannot be lost to a later torn write.
func (fw *FileWriter) WriteIncomplete(reason string) error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if fw.legacy {
		buf := fw.scratch[:0]
		buf = append(buf, blockIncomplete)
		buf = binary.AppendUvarint(buf, uint64(len(reason)))
		fw.scratch = buf
		if err := fw.put(buf); err != nil {
			return fmt.Errorf("trace: writing incomplete marker: %w", err)
		}
		if err := fw.put([]byte(reason)); err != nil {
			return fmt.Errorf("trace: writing incomplete marker: %w", err)
		}
		return nil
	}
	fw.cbuf = append(fw.cbuf, blockIncomplete)
	fw.cbuf = binary.AppendUvarint(fw.cbuf, uint64(len(reason)))
	fw.cbuf = append(fw.cbuf, reason...)
	if err := fw.sealChunkLocked(); err != nil {
		return fmt.Errorf("trace: writing incomplete marker: %w", err)
	}
	return nil
}

// Flush forces buffered records to the underlying writer, sealing the
// pending chunk so everything written so far is decodable by a concurrent
// reader. This is the monitor-flush-on-demand operation the debugger uses
// to obtain trace data during execution rather than post mortem.
func (fw *FileWriter) Flush() error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if err := fw.writePendingLocked(); err != nil {
		return err
	}
	if !fw.legacy {
		if err := fw.sealChunkLocked(); err != nil {
			return err
		}
	}
	return fw.w.Flush()
}

// Sync flushes and forces the file to stable storage, regardless of the
// configured policy. No-op fsync when the underlying writer is not a file.
func (fw *FileWriter) Sync() error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if err := fw.writePendingLocked(); err != nil {
		return err
	}
	if !fw.legacy {
		if err := fw.sealChunkLocked(); err != nil {
			return err
		}
	}
	return fw.fsyncLocked()
}

// Count returns the number of records written so far.
func (fw *FileWriter) Count() int {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return fw.n
}

// SealIndex returns the sidecar index built alongside the file, or nil when
// the writer was not constructed with WriterOptions.BuildIndex. Call after
// Flush (or Close): the index describes exactly the bytes emitted so far,
// so sealing before the final chunk frames would describe a shorter file.
func (fw *FileWriter) SealIndex() *SegmentIndex {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if fw.ib == nil {
		return nil
	}
	return fw.ib.finish(fw.strings.snapshot(), fw.out)
}

// Close flushes the writer. It does not close the underlying writer, which
// the caller owns.
func (fw *FileWriter) Close() error { return fw.Flush() }

// ChunkError reports a damaged chunk frame: its checksum failed, its length
// overran the file, or the bytes at Offset are not a frame at all. The
// salvage reader treats it as the signal to resynchronize.
type ChunkError struct {
	Offset int64 // file offset of the frame (or where one was expected)
	Err    error
}

func (e *ChunkError) Error() string {
	return fmt.Sprintf("trace: damaged chunk at byte %d: %v", e.Offset, e.Err)
}

func (e *ChunkError) Unwrap() error { return e.Err }

// Scanner streams records from a trace file of either format revision.
//
// Next decodes into a scratch record owned by the Scanner: the returned
// pointer is valid only until the following Next call, exactly like a
// RecordCursor. Callers that retain records copy them (every loader does).
type Scanner struct {
	r        *bufio.Reader
	version  int
	writer   string // header identity (version 3)
	numRanks int
	strings  []string // id-1 indexed
	offset   int64    // bytes consumed from the underlying reader
	rec      Record   // scratch for Next; reused across calls

	framed     bool   // version >= 3: blocks come from verified chunks
	chunk      []byte // current chunk payload
	cpos       int    // read position within chunk
	chunkStart int64  // file offset of the current chunk's frame

	incomplete       bool // an 'I' block was seen
	incompleteReason string

	strIDs map[string]uint64 // lazy reverse of strings; see fieldID
}

// NewScanner validates the header and returns a streaming reader. The
// format revision is sniffed from the 8-byte magic; version-2 files decode
// exactly as they always have.
func NewScanner(r io.Reader) (*Scanner, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, 8)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	sc := &Scanner{r: br, offset: 8}
	switch string(magic) {
	case fileMagicV2:
		sc.version = FormatVersionLegacy
		n, err := sc.readUvarint()
		if err != nil {
			return nil, fmt.Errorf("trace: reading rank count: %w", err)
		}
		sc.numRanks = int(n)
		return sc, nil
	case fileMagicV3:
		sc.version = FormatVersion
		if err := sc.readHeaderV3(); err != nil {
			return nil, err
		}
		sc.framed = true
		return sc, nil
	default:
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
}

// readHeaderV3 reads the version-3 header body (after the magic) and
// verifies its checksum.
func (sc *Scanner) readHeaderV3() error {
	var body []byte
	readVar := func(field string) (uint64, error) {
		v, err := binary.ReadUvarint(byteReaderFunc(func() (byte, error) {
			b, err := sc.r.ReadByte()
			if err == nil {
				sc.offset++
				body = append(body, b)
			}
			return b, err
		}))
		if err != nil {
			return 0, fmt.Errorf("trace: reading %s: %w", field, err)
		}
		return v, nil
	}
	nr, err := readVar("rank count")
	if err != nil {
		return err
	}
	wl, err := readVar("writer identity")
	if err != nil {
		return err
	}
	if wl > maxWriterLen {
		return fmt.Errorf("trace: writer identity length %d out of range", wl)
	}
	buf := make([]byte, wl+4)
	if _, err := io.ReadFull(sc.r, buf); err != nil {
		return fmt.Errorf("trace: reading header: %w", err)
	}
	sc.offset += int64(len(buf))
	body = append(body, buf[:wl]...)
	if crcChunk(body) != binary.LittleEndian.Uint32(buf[wl:]) {
		return errBadHeaderCRC
	}
	sc.numRanks = int(nr)
	sc.writer = string(buf[:wl])
	return nil
}

// loadChunk reads and verifies the next chunk frame. io.EOF at a clean end
// of file; a *ChunkError for a damaged frame.
func (sc *Scanner) loadChunk() error {
	sc.chunkStart = sc.offset
	var hdr [4]byte
	n, err := io.ReadFull(sc.r, hdr[:])
	if err == io.EOF {
		return io.EOF
	}
	sc.offset += int64(n)
	if err != nil {
		return &ChunkError{Offset: sc.chunkStart, Err: fmt.Errorf("truncated frame: %w", err)}
	}
	if hdr != chunkMagic {
		return &ChunkError{Offset: sc.chunkStart, Err: fmt.Errorf("bad chunk magic %q", hdr[:])}
	}
	plen, err := binary.ReadUvarint(byteReaderFunc(func() (byte, error) {
		b, err := sc.r.ReadByte()
		if err == nil {
			sc.offset++
		}
		return b, err
	}))
	if err != nil {
		return &ChunkError{Offset: sc.chunkStart, Err: fmt.Errorf("chunk length: %w", err)}
	}
	if plen > maxChunkPayload {
		return &ChunkError{Offset: sc.chunkStart, Err: fmt.Errorf("chunk length %d out of range", plen)}
	}
	if cap(sc.chunk) < int(plen) {
		sc.chunk = make([]byte, plen)
	}
	sc.chunk = sc.chunk[:plen]
	if _, err := io.ReadFull(sc.r, sc.chunk); err != nil {
		return &ChunkError{Offset: sc.chunkStart, Err: fmt.Errorf("chunk payload: %w", err)}
	}
	var crc [4]byte
	if _, err := io.ReadFull(sc.r, crc[:]); err != nil {
		sc.offset += int64(len(sc.chunk))
		return &ChunkError{Offset: sc.chunkStart, Err: fmt.Errorf("chunk checksum: %w", err)}
	}
	sc.offset += int64(len(sc.chunk)) + 4
	if crcChunk(sc.chunk) != binary.LittleEndian.Uint32(crc[:]) {
		metrics().crcErrors.Inc()
		sc.chunk = sc.chunk[:0]
		sc.cpos = 0
		return &ChunkError{Offset: sc.chunkStart, Err: fmt.Errorf("checksum mismatch")}
	}
	sc.cpos = 0
	return nil
}

// NumRanks returns the rank count from the file header.
func (sc *Scanner) NumRanks() int { return sc.numRanks }

// Version returns the file's format revision (2 or 3).
func (sc *Scanner) Version() int { return sc.version }

// Writer returns the writer identity from a version-3 header ("" for
// legacy files).
func (sc *Scanner) Writer() string { return sc.writer }

// Incomplete reports whether an incomplete-history marker has been scanned
// so far, and its reason.
func (sc *Scanner) Incomplete() (bool, string) { return sc.incomplete, sc.incompleteReason }

// Offset returns a rescannable position for the next block: in a legacy
// file the exact byte offset, in a framed file the offset of the chunk
// frame containing it (chunk frames are the only positions a reader can
// verify from). The Index stores these for later seeks.
func (sc *Scanner) Offset() int64 {
	if sc.framed && sc.cpos < len(sc.chunk) {
		return sc.chunkStart
	}
	return sc.offset
}

func (sc *Scanner) readByte() (byte, error) {
	if sc.framed {
		if sc.cpos >= len(sc.chunk) {
			return 0, io.ErrUnexpectedEOF // block truncated by chunk boundary
		}
		b := sc.chunk[sc.cpos]
		sc.cpos++
		return b, nil
	}
	b, err := sc.r.ReadByte()
	if err == nil {
		sc.offset++
	}
	return b, err
}

// readFull returns the next n block-stream bytes (string payloads).
func (sc *Scanner) readFull(n int) ([]byte, error) {
	if sc.framed {
		if sc.cpos+n > len(sc.chunk) || n < 0 {
			return nil, io.ErrUnexpectedEOF
		}
		b := sc.chunk[sc.cpos : sc.cpos+n]
		sc.cpos += n
		return b, nil
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(sc.r, buf); err != nil {
		return nil, err
	}
	sc.offset += int64(n)
	return buf, nil
}

// errVarintOverflow matches the stdlib binary.ReadUvarint overflow error
// byte for byte, so hand-rolled decoding reports identical diagnostics.
var errVarintOverflow = fmt.Errorf("binary: varint overflows a 64-bit integer")

// readUvarint is binary.ReadUvarint inlined over sc.readByte: the stdlib
// version takes an io.ByteReader, and wrapping the bound method in an
// interface allocates a closure per call — sixteen allocations per record
// on the serial decode path. Semantics (including the EOF-after-first-byte
// promotion and the overflow error text) are identical.
func (sc *Scanner) readUvarint() (uint64, error) {
	var x uint64
	var s uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		b, err := sc.readByte()
		if err != nil {
			if i > 0 && err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return x, err
		}
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return x, errVarintOverflow
			}
			return x | uint64(b)<<s, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return x, errVarintOverflow
}

func (sc *Scanner) readVarint() (int64, error) {
	ux, err := sc.readUvarint()
	x := int64(ux >> 1)
	if ux&1 != 0 {
		x = ^x
	}
	return x, err
}

type byteReaderFunc func() (byte, error)

func (f byteReaderFunc) ReadByte() (byte, error) { return f() }

func (sc *Scanner) str(id uint64) (string, error) {
	if id == 0 {
		return "", nil
	}
	if int(id) > len(sc.strings) {
		return "", fmt.Errorf("trace: string id %d not yet defined", id)
	}
	return sc.strings[id-1], nil
}

// SeedStrings installs a previously collected string table, allowing a
// Scanner positioned mid-file (via Index offsets) to resolve string ids that
// were defined earlier in the file.
func (sc *Scanner) SeedStrings(table []string) { sc.strings = append([]string(nil), table...) }

// Strings returns a copy of the string table collected so far.
func (sc *Scanner) Strings() []string { return append([]string(nil), sc.strings...) }

// Next returns the next record, or io.EOF at end of file. A damaged chunk
// in a framed file surfaces as a *ChunkError carrying the frame's offset.
func (sc *Scanner) Next() (*Record, error) {
	for {
		if sc.framed && sc.cpos >= len(sc.chunk) {
			if err := sc.loadChunk(); err != nil {
				return nil, err
			}
			continue // the chunk may be empty in degenerate files
		}
		tag, err := sc.readByte()
		if err == io.EOF {
			return nil, io.EOF
		}
		if err != nil {
			return nil, fmt.Errorf("trace: reading block tag: %w", err)
		}
		switch tag {
		case blockString:
			id, err := sc.readUvarint()
			if err != nil {
				return nil, fmt.Errorf("trace: string id: %w", err)
			}
			n, err := sc.readUvarint()
			if err != nil {
				return nil, fmt.Errorf("trace: string len: %w", err)
			}
			buf, err := sc.readFull(int(n))
			if err != nil {
				return nil, fmt.Errorf("trace: string bytes: %w", err)
			}
			if int(id) != len(sc.strings)+1 {
				// Mid-file rescans revisit string blocks already seeded;
				// tolerate redefinitions that match the table.
				s, serr := sc.str(id)
				if serr != nil || s != string(buf) {
					return nil, fmt.Errorf("trace: string id %d out of order", id)
				}
				continue
			}
			sc.strings = append(sc.strings, string(buf))
		case blockRecord:
			return sc.readRecord()
		case blockIncomplete:
			n, err := sc.readUvarint()
			if err != nil {
				return nil, fmt.Errorf("trace: incomplete marker len: %w", err)
			}
			buf, err := sc.readFull(int(n))
			if err != nil {
				return nil, fmt.Errorf("trace: incomplete marker reason: %w", err)
			}
			if !sc.incomplete {
				sc.incompleteReason = string(buf)
			}
			sc.incomplete = true
		default:
			return nil, fmt.Errorf("trace: unknown block tag %q at offset %d", tag, sc.offset-1)
		}
	}
}

func (sc *Scanner) readRecord() (*Record, error) {
	r := &sc.rec
	*r = Record{}
	kb, err := sc.readByte()
	if err != nil {
		return nil, fmt.Errorf("trace: record kind: %w", err)
	}
	if int(kb) >= numKinds {
		return nil, fmt.Errorf("trace: invalid record kind %d", kb)
	}
	r.Kind = Kind(kb)

	fail := func(field string, err error) (*Record, error) {
		return nil, fmt.Errorf("trace: record %s: %w", field, err)
	}
	var u uint64
	var v int64
	if u, err = sc.readUvarint(); err != nil {
		return fail("rank", err)
	}
	r.Rank = int(u)
	if u, err = sc.readUvarint(); err != nil {
		return fail("file", err)
	}
	if r.Loc.File, err = sc.str(u); err != nil {
		return nil, err
	}
	if u, err = sc.readUvarint(); err != nil {
		return fail("line", err)
	}
	r.Loc.Line = int(u)
	if u, err = sc.readUvarint(); err != nil {
		return fail("func", err)
	}
	if r.Loc.Func, err = sc.str(u); err != nil {
		return nil, err
	}
	if v, err = sc.readVarint(); err != nil {
		return fail("start", err)
	}
	r.Start = v
	if v, err = sc.readVarint(); err != nil {
		return fail("duration", err)
	}
	r.End = r.Start + v
	if u, err = sc.readUvarint(); err != nil {
		return fail("marker", err)
	}
	r.Marker = u
	if v, err = sc.readVarint(); err != nil {
		return fail("src", err)
	}
	r.Src = int(v)
	if v, err = sc.readVarint(); err != nil {
		return fail("dst", err)
	}
	r.Dst = int(v)
	if v, err = sc.readVarint(); err != nil {
		return fail("tag", err)
	}
	r.Tag = int(v)
	if u, err = sc.readUvarint(); err != nil {
		return fail("bytes", err)
	}
	r.Bytes = int(u)
	if u, err = sc.readUvarint(); err != nil {
		return fail("msgid", err)
	}
	r.MsgID = u
	wb, err := sc.readByte()
	if err != nil {
		return fail("wildcard", err)
	}
	r.WasWildcard = wb != 0
	if u, err = sc.readUvarint(); err != nil {
		return fail("fault", err)
	}
	if r.Fault, err = sc.str(u); err != nil {
		return nil, err
	}
	if u, err = sc.readUvarint(); err != nil {
		return fail("name", err)
	}
	if r.Name, err = sc.str(u); err != nil {
		return nil, err
	}
	if v, err = sc.readVarint(); err != nil {
		return fail("arg0", err)
	}
	r.Args[0] = v
	if v, err = sc.readVarint(); err != nil {
		return fail("arg1", err)
	}
	r.Args[1] = v
	return r, nil
}

// ReadAll loads an entire trace file into memory. Any error — including
// mid-file truncation or a failed chunk checksum — is fatal; use
// ReadAllPartial to salvage a prefix or ReadAllSalvage to also recover the
// tail beyond damaged chunks.
//
// Deprecated: consumers outside internal/trace and internal/store should
// open traces through store.Open, which negotiates the right loader.
func ReadAll(r io.Reader) (*Trace, error) {
	sc, err := NewScanner(r)
	if err != nil {
		return nil, err
	}
	t := New(sc.NumRanks())
	for {
		rec, err := sc.Next()
		if err == io.EOF {
			if inc, reason := sc.Incomplete(); inc {
				t.MarkIncomplete(reason)
			}
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		if _, err := t.Append(*rec); err != nil {
			return nil, err
		}
	}
}

// ReadAllIndexed is ReadAll with the per-rank slices preallocated from the
// exact record counts of a previously built index, so loading large traces
// does not pay repeated slice regrowth.
//
// Deprecated: consumers outside internal/trace and internal/store should
// open traces through store.Open with Options.Index.
func ReadAllIndexed(r io.Reader, ix *Index) (*Trace, error) {
	sc, err := NewScanner(r)
	if err != nil {
		return nil, err
	}
	t := New(sc.NumRanks())
	if ix != nil {
		t.Grow(ix.Counts())
	}
	for {
		rec, err := sc.Next()
		if err == io.EOF {
			if inc, reason := sc.Incomplete(); inc {
				t.MarkIncomplete(reason)
			}
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		if _, err := t.Append(*rec); err != nil {
			return nil, err
		}
	}
}

// ReadAllPartial loads the clean prefix of a trace file. A damaged or
// truncated tail stops the scan and marks the result Incomplete instead of
// failing, so a history cut off by a crash stays analyzable; the reason
// records the byte offset of the damage and the per-rank extent of what was
// salvaged. Only a missing/corrupt header (no decodable prefix at all) is
// an error. ReadAllSalvage additionally recovers records beyond the damage.
//
// Deprecated: consumers outside internal/trace and internal/store should
// open traces through store.Open with ModePartial.
func ReadAllPartial(r io.Reader) (*Trace, error) {
	sc, err := NewScanner(r)
	if err != nil {
		return nil, err
	}
	t := New(sc.NumRanks())
	for {
		rec, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.MarkIncomplete(partialReason("trace file truncated", sc, t, err))
			break
		}
		if _, err := t.Append(*rec); err != nil {
			t.MarkIncomplete(partialReason("trace file damaged", sc, t, err))
			break
		}
	}
	if inc, reason := sc.Incomplete(); inc {
		t.MarkIncomplete(reason)
	}
	return t, nil
}

// partialReason renders the Incomplete reason for a prefix salvage: where
// the damage begins (byte offset), what was recovered up to it (per-rank
// record extent), and the underlying decode error.
func partialReason(what string, sc *Scanner, t *Trace, cause error) string {
	return partialReasonAt(what, sc.Offset(), rankExtentSummary(t), cause)
}

// partialReasonAt is partialReason for callers that track the offset and
// salvaged-prefix summary themselves (the streaming salvage path).
func partialReasonAt(what string, off int64, summary string, cause error) string {
	var ce *ChunkError
	if asChunkError(cause, &ce) {
		off = ce.Offset
	}
	return fmt.Sprintf("%s at byte %d (salvaged prefix: %s): %v", what, off, summary, cause)
}

// asChunkError unwraps cause into a *ChunkError without importing errors
// (kept local: errors.As on a double pointer reads worse than this).
func asChunkError(cause error, out **ChunkError) bool {
	for cause != nil {
		if ce, ok := cause.(*ChunkError); ok {
			*out = ce
			return true
		}
		u, ok := cause.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		cause = u.Unwrap()
	}
	return false
}

// rankExtentSummary renders "N records, ranks r0..rk to markers m0..mk" for
// damage reports.
func rankExtentSummary(t *Trace) string {
	total := 0
	lo, hi := -1, -1
	var maxMarker uint64
	for r := 0; r < t.NumRanks(); r++ {
		n := t.RankLen(r)
		if n == 0 {
			continue
		}
		total += n
		if lo < 0 {
			lo = r
		}
		hi = r
		if m := t.Rank(r)[n-1].Marker; m > maxMarker {
			maxMarker = m
		}
	}
	if total == 0 {
		return "0 records"
	}
	return fmt.Sprintf("%d records, ranks %d-%d, last marker %d", total, lo, hi, maxMarker)
}

// WriteAll serializes an in-memory trace in merged time order, preserving an
// Incomplete flag as a trailer block.
func WriteAll(w io.Writer, t *Trace) error {
	return WriteAllOptions(w, t, WriterOptions{})
}

// WriteAllOptions is WriteAll with explicit format and durability options.
func WriteAllOptions(w io.Writer, t *Trace, opts WriterOptions) error {
	_, err := writeAll(w, t, opts)
	return err
}

// writeAll is WriteAllOptions returning the flushed writer, so callers that
// asked for an ingest-built index can seal it (WriteFileAtomic).
func writeAll(w io.Writer, t *Trace, opts WriterOptions) (*FileWriter, error) {
	fw, err := NewFileWriterOptions(w, t.NumRanks(), opts)
	if err != nil {
		return nil, err
	}
	for _, id := range t.MergedOrder() {
		if err := fw.Write(t.MustAt(id)); err != nil {
			return nil, err
		}
	}
	if t.Incomplete() {
		if err := fw.WriteIncomplete(t.IncompleteReason()); err != nil {
			return nil, err
		}
	}
	return fw, fw.Close()
}
