package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// File format
//
//	magic "TDBGTRC2"
//	uvarint numRanks
//	blocks:
//	  'S' uvarint id, uvarint len, bytes        -- string-table entry
//	  'R' encoded record                        -- one event
//	  'I' uvarint len, bytes                    -- incomplete-history marker
//
// Strings (file names, function names, construct names) are interned: each
// distinct string is emitted once, before its first use.  Records refer to
// strings by table id.  The format is append-only so the monitor can flush
// partial traces on demand (the paper's extension of the AIMS monitor) and
// the debugger can consume the file while the target is still running.
//
// Version 2 extends version 1 with the per-record fault annotation (an
// interned string id) and the 'I' block, which marks the history as partial
// (the bytes are the human-readable reason). An 'I' block may appear
// anywhere after the header; readers OR the flags together.

const fileMagic = "TDBGTRC2"

const (
	blockString     byte = 'S'
	blockRecord     byte = 'R'
	blockIncomplete byte = 'I'
)

// stringTable interns strings concurrently. New entries are assigned ids in
// order and their encoded 'S' blocks accumulate in pending; whichever writer
// next touches the file drains pending first, so every string block reaches
// the file before any record that references it. Lookups of already-interned
// strings (the overwhelmingly common case) take only a read lock.
type stringTable struct {
	mu      sync.RWMutex
	ids     map[string]uint64
	pending []byte // encoded 'S' blocks not yet written to the file
}

func (st *stringTable) intern(s string) uint64 {
	if s == "" {
		return 0 // 0 means "empty string"
	}
	st.mu.RLock()
	id, ok := st.ids[s]
	st.mu.RUnlock()
	if ok {
		return id
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if id, ok := st.ids[s]; ok {
		return id
	}
	id = uint64(len(st.ids) + 1)
	st.ids[s] = id
	st.pending = append(st.pending, blockString)
	st.pending = binary.AppendUvarint(st.pending, id)
	st.pending = binary.AppendUvarint(st.pending, uint64(len(s)))
	st.pending = append(st.pending, s...)
	return id
}

// take removes and returns the pending string blocks.
func (st *stringTable) take() []byte {
	st.mu.Lock()
	defer st.mu.Unlock()
	p := st.pending
	st.pending = nil
	return p
}

// FileWriter serializes records to a trace file. It is safe for concurrent
// use by multiple rank goroutines; for high rank counts prefer ShardedWriter,
// which batches per-rank buffers into this writer in large chunks.
type FileWriter struct {
	mu      sync.Mutex // guards w, scratch, n
	w       *bufio.Writer
	under   io.Writer
	strings stringTable
	scratch []byte
	n       int // records written
}

// NewFileWriter writes the header and returns a writer for numRanks ranks.
func NewFileWriter(w io.Writer, numRanks int) (*FileWriter, error) {
	fw := &FileWriter{
		w:       bufio.NewWriterSize(w, 1<<16),
		under:   w,
		strings: stringTable{ids: make(map[string]uint64)},
	}
	if _, err := fw.w.WriteString(fileMagic); err != nil {
		return nil, fmt.Errorf("trace: writing magic: %w", err)
	}
	fw.scratch = binary.AppendUvarint(fw.scratch[:0], uint64(numRanks))
	if _, err := fw.w.Write(fw.scratch); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return fw, nil
}

// internRecord resolves the four interned string fields of a record.
func (fw *FileWriter) internRecord(r *Record) (fileID, funcID, nameID, faultID uint64) {
	return fw.strings.intern(r.Loc.File), fw.strings.intern(r.Loc.Func),
		fw.strings.intern(r.Name), fw.strings.intern(r.Fault)
}

// appendRecord appends the encoded 'R' block for r, whose string fields have
// already been interned as the given table ids.
func appendRecord(buf []byte, r *Record, fileID, funcID, nameID, faultID uint64) []byte {
	buf = append(buf, blockRecord, byte(r.Kind))
	buf = binary.AppendUvarint(buf, uint64(r.Rank))
	buf = binary.AppendUvarint(buf, fileID)
	buf = binary.AppendUvarint(buf, uint64(r.Loc.Line))
	buf = binary.AppendUvarint(buf, funcID)
	buf = binary.AppendVarint(buf, r.Start)
	buf = binary.AppendVarint(buf, r.End-r.Start) // durations compress better
	buf = binary.AppendUvarint(buf, r.Marker)
	buf = binary.AppendVarint(buf, int64(r.Src))
	buf = binary.AppendVarint(buf, int64(r.Dst))
	buf = binary.AppendVarint(buf, int64(r.Tag))
	buf = binary.AppendUvarint(buf, uint64(r.Bytes))
	buf = binary.AppendUvarint(buf, r.MsgID)
	if r.WasWildcard {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendUvarint(buf, faultID)
	buf = binary.AppendUvarint(buf, nameID)
	buf = binary.AppendVarint(buf, r.Args[0])
	buf = binary.AppendVarint(buf, r.Args[1])
	return buf
}

// writePendingLocked drains the string-table deltas to the file. Must run
// with fw.mu held, before any record bytes referencing those ids are written.
func (fw *FileWriter) writePendingLocked() error {
	p := fw.strings.take()
	if len(p) == 0 {
		return nil
	}
	_, err := fw.w.Write(p)
	return err
}

// writeChunk appends a batch of pre-encoded record blocks (nrec records) in
// one critical section, draining pending string deltas first. This is the
// entry point ShardedWriter batches through.
func (fw *FileWriter) writeChunk(buf []byte, nrec int) error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if err := fw.writePendingLocked(); err != nil {
		return fmt.Errorf("trace: writing string table: %w", err)
	}
	if _, err := fw.w.Write(buf); err != nil {
		return fmt.Errorf("trace: writing records: %w", err)
	}
	fw.n += nrec
	return nil
}

// Write appends one record to the file.
func (fw *FileWriter) Write(r *Record) error {
	fileID, funcID, nameID, faultID := fw.internRecord(r)
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if err := fw.writePendingLocked(); err != nil {
		return fmt.Errorf("trace: writing string table: %w", err)
	}
	fw.scratch = appendRecord(fw.scratch[:0], r, fileID, funcID, nameID, faultID)
	if _, err := fw.w.Write(fw.scratch); err != nil {
		return fmt.Errorf("trace: writing record: %w", err)
	}
	fw.n++
	return nil
}

// WriteIncomplete appends an incomplete-history marker: readers of the file
// will see a trace flagged Incomplete with the given reason. Used when the
// producer knows the history is partial (aborted run, lossy collection).
func (fw *FileWriter) WriteIncomplete(reason string) error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	buf := fw.scratch[:0]
	buf = append(buf, blockIncomplete)
	buf = binary.AppendUvarint(buf, uint64(len(reason)))
	fw.scratch = buf
	if _, err := fw.w.Write(buf); err != nil {
		return fmt.Errorf("trace: writing incomplete marker: %w", err)
	}
	if _, err := fw.w.WriteString(reason); err != nil {
		return fmt.Errorf("trace: writing incomplete marker: %w", err)
	}
	return nil
}

// Flush forces buffered records to the underlying writer. This is the
// monitor-flush-on-demand operation the debugger uses to obtain trace data
// during execution rather than post mortem.
func (fw *FileWriter) Flush() error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if err := fw.writePendingLocked(); err != nil {
		return err
	}
	return fw.w.Flush()
}

// Count returns the number of records written so far.
func (fw *FileWriter) Count() int {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return fw.n
}

// Close flushes the writer. It does not close the underlying writer, which
// the caller owns.
func (fw *FileWriter) Close() error { return fw.Flush() }

// Scanner streams records from a trace file.
type Scanner struct {
	r        *bufio.Reader
	numRanks int
	strings  []string // id-1 indexed
	offset   int64    // bytes consumed so far

	incomplete       bool // an 'I' block was seen
	incompleteReason string
}

// NewScanner validates the header and returns a streaming reader.
func NewScanner(r io.Reader) (*Scanner, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != fileMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	sc := &Scanner{r: br, offset: int64(len(fileMagic))}
	n, err := sc.readUvarint()
	if err != nil {
		return nil, fmt.Errorf("trace: reading rank count: %w", err)
	}
	sc.numRanks = int(n)
	return sc, nil
}

// NumRanks returns the rank count from the file header.
func (sc *Scanner) NumRanks() int { return sc.numRanks }

// Incomplete reports whether an incomplete-history marker has been scanned
// so far, and its reason.
func (sc *Scanner) Incomplete() (bool, string) { return sc.incomplete, sc.incompleteReason }

// Offset returns the number of bytes consumed so far. The value before a
// Next call is the offset of the next block, which the Index stores for
// later rescanning.
func (sc *Scanner) Offset() int64 { return sc.offset }

func (sc *Scanner) readByte() (byte, error) {
	b, err := sc.r.ReadByte()
	if err == nil {
		sc.offset++
	}
	return b, err
}

func (sc *Scanner) readUvarint() (uint64, error) {
	v, err := binary.ReadUvarint(byteReaderFunc(sc.readByte))
	return v, err
}

func (sc *Scanner) readVarint() (int64, error) {
	v, err := binary.ReadVarint(byteReaderFunc(sc.readByte))
	return v, err
}

type byteReaderFunc func() (byte, error)

func (f byteReaderFunc) ReadByte() (byte, error) { return f() }

func (sc *Scanner) str(id uint64) (string, error) {
	if id == 0 {
		return "", nil
	}
	if int(id) > len(sc.strings) {
		return "", fmt.Errorf("trace: string id %d not yet defined", id)
	}
	return sc.strings[id-1], nil
}

// SeedStrings installs a previously collected string table, allowing a
// Scanner positioned mid-file (via Index offsets) to resolve string ids that
// were defined earlier in the file.
func (sc *Scanner) SeedStrings(table []string) { sc.strings = append([]string(nil), table...) }

// Strings returns a copy of the string table collected so far.
func (sc *Scanner) Strings() []string { return append([]string(nil), sc.strings...) }

// Next returns the next record, or io.EOF at end of file.
func (sc *Scanner) Next() (*Record, error) {
	for {
		tag, err := sc.readByte()
		if err == io.EOF {
			return nil, io.EOF
		}
		if err != nil {
			return nil, fmt.Errorf("trace: reading block tag: %w", err)
		}
		switch tag {
		case blockString:
			id, err := sc.readUvarint()
			if err != nil {
				return nil, fmt.Errorf("trace: string id: %w", err)
			}
			n, err := sc.readUvarint()
			if err != nil {
				return nil, fmt.Errorf("trace: string len: %w", err)
			}
			buf := make([]byte, n)
			if _, err := io.ReadFull(sc.r, buf); err != nil {
				return nil, fmt.Errorf("trace: string bytes: %w", err)
			}
			sc.offset += int64(n)
			if int(id) != len(sc.strings)+1 {
				// Mid-file rescans revisit string blocks already seeded;
				// tolerate redefinitions that match the table.
				s, serr := sc.str(id)
				if serr != nil || s != string(buf) {
					return nil, fmt.Errorf("trace: string id %d out of order", id)
				}
				continue
			}
			sc.strings = append(sc.strings, string(buf))
		case blockRecord:
			return sc.readRecord()
		case blockIncomplete:
			n, err := sc.readUvarint()
			if err != nil {
				return nil, fmt.Errorf("trace: incomplete marker len: %w", err)
			}
			buf := make([]byte, n)
			if _, err := io.ReadFull(sc.r, buf); err != nil {
				return nil, fmt.Errorf("trace: incomplete marker reason: %w", err)
			}
			sc.offset += int64(n)
			if !sc.incomplete {
				sc.incompleteReason = string(buf)
			}
			sc.incomplete = true
		default:
			return nil, fmt.Errorf("trace: unknown block tag %q at offset %d", tag, sc.offset-1)
		}
	}
}

func (sc *Scanner) readRecord() (*Record, error) {
	var r Record
	kb, err := sc.readByte()
	if err != nil {
		return nil, fmt.Errorf("trace: record kind: %w", err)
	}
	if int(kb) >= numKinds {
		return nil, fmt.Errorf("trace: invalid record kind %d", kb)
	}
	r.Kind = Kind(kb)

	fail := func(field string, err error) (*Record, error) {
		return nil, fmt.Errorf("trace: record %s: %w", field, err)
	}
	var u uint64
	var v int64
	if u, err = sc.readUvarint(); err != nil {
		return fail("rank", err)
	}
	r.Rank = int(u)
	if u, err = sc.readUvarint(); err != nil {
		return fail("file", err)
	}
	if r.Loc.File, err = sc.str(u); err != nil {
		return nil, err
	}
	if u, err = sc.readUvarint(); err != nil {
		return fail("line", err)
	}
	r.Loc.Line = int(u)
	if u, err = sc.readUvarint(); err != nil {
		return fail("func", err)
	}
	if r.Loc.Func, err = sc.str(u); err != nil {
		return nil, err
	}
	if v, err = sc.readVarint(); err != nil {
		return fail("start", err)
	}
	r.Start = v
	if v, err = sc.readVarint(); err != nil {
		return fail("duration", err)
	}
	r.End = r.Start + v
	if u, err = sc.readUvarint(); err != nil {
		return fail("marker", err)
	}
	r.Marker = u
	if v, err = sc.readVarint(); err != nil {
		return fail("src", err)
	}
	r.Src = int(v)
	if v, err = sc.readVarint(); err != nil {
		return fail("dst", err)
	}
	r.Dst = int(v)
	if v, err = sc.readVarint(); err != nil {
		return fail("tag", err)
	}
	r.Tag = int(v)
	if u, err = sc.readUvarint(); err != nil {
		return fail("bytes", err)
	}
	r.Bytes = int(u)
	if u, err = sc.readUvarint(); err != nil {
		return fail("msgid", err)
	}
	r.MsgID = u
	wb, err := sc.readByte()
	if err != nil {
		return fail("wildcard", err)
	}
	r.WasWildcard = wb != 0
	if u, err = sc.readUvarint(); err != nil {
		return fail("fault", err)
	}
	if r.Fault, err = sc.str(u); err != nil {
		return nil, err
	}
	if u, err = sc.readUvarint(); err != nil {
		return fail("name", err)
	}
	if r.Name, err = sc.str(u); err != nil {
		return nil, err
	}
	if v, err = sc.readVarint(); err != nil {
		return fail("arg0", err)
	}
	r.Args[0] = v
	if v, err = sc.readVarint(); err != nil {
		return fail("arg1", err)
	}
	r.Args[1] = v
	return &r, nil
}

// ReadAll loads an entire trace file into memory. Any error — including
// mid-file truncation — is fatal; use ReadAllPartial to salvage a prefix.
func ReadAll(r io.Reader) (*Trace, error) {
	sc, err := NewScanner(r)
	if err != nil {
		return nil, err
	}
	t := New(sc.NumRanks())
	for {
		rec, err := sc.Next()
		if err == io.EOF {
			if inc, reason := sc.Incomplete(); inc {
				t.MarkIncomplete(reason)
			}
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		if _, err := t.Append(*rec); err != nil {
			return nil, err
		}
	}
}

// ReadAllIndexed is ReadAll with the per-rank slices preallocated from the
// exact record counts of a previously built index, so loading large traces
// does not pay repeated slice regrowth.
func ReadAllIndexed(r io.Reader, ix *Index) (*Trace, error) {
	sc, err := NewScanner(r)
	if err != nil {
		return nil, err
	}
	t := New(sc.NumRanks())
	if ix != nil {
		t.Grow(ix.Counts())
	}
	for {
		rec, err := sc.Next()
		if err == io.EOF {
			if inc, reason := sc.Incomplete(); inc {
				t.MarkIncomplete(reason)
			}
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		if _, err := t.Append(*rec); err != nil {
			return nil, err
		}
	}
}

// ReadAllPartial loads as much of a trace file as is decodable. A damaged or
// truncated tail stops the scan and marks the result Incomplete instead of
// failing, so a history cut off by a crash stays analyzable. Only a
// missing/corrupt header (no decodable prefix at all) is an error.
func ReadAllPartial(r io.Reader) (*Trace, error) {
	sc, err := NewScanner(r)
	if err != nil {
		return nil, err
	}
	t := New(sc.NumRanks())
	for {
		rec, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.MarkIncomplete(fmt.Sprintf("trace file truncated: %v", err))
			break
		}
		if _, err := t.Append(*rec); err != nil {
			t.MarkIncomplete(fmt.Sprintf("trace file damaged: %v", err))
			break
		}
	}
	if inc, reason := sc.Incomplete(); inc {
		t.MarkIncomplete(reason)
	}
	return t, nil
}

// WriteAll serializes an in-memory trace in merged time order, preserving an
// Incomplete flag as a trailer block.
func WriteAll(w io.Writer, t *Trace) error {
	fw, err := NewFileWriter(w, t.NumRanks())
	if err != nil {
		return err
	}
	for _, id := range t.MergedOrder() {
		if err := fw.Write(t.MustAt(id)); err != nil {
			return err
		}
	}
	if t.Incomplete() {
		if err := fw.WriteIncomplete(t.IncompleteReason()); err != nil {
			return err
		}
	}
	return fw.Close()
}
