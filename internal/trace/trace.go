package trace

import (
	"errors"
	"fmt"
	"sort"
)

// Trace is an in-memory execution history: per-rank sequences of records,
// each sequence ordered by Start time (the runtime's per-rank virtual clock
// is monotonic, so records are appended in order).
type Trace struct {
	byRank [][]Record

	// incomplete marks a partial history: the execution aborted, a rank
	// crashed, or the collection stream was truncated. Analyses still run on
	// incomplete traces; consumers use the flag to qualify their verdicts.
	incomplete       bool
	incompleteReason string

	// gaps records quarantined damaged spans of the file this trace was
	// salvaged from. A gap is stronger information than the incomplete
	// flag: it says events may have been LOST between specific surviving
	// events, letting analyses distinguish "no event" from "lost event".
	gaps []Gap
}

// Gap describes one quarantined span of a damaged trace file: the byte
// extent skipped by the salvage reader and, per rank, the execution-marker
// extent of the surviving records around it.
type Gap struct {
	Offset int64  // file offset where the damaged span begins
	Bytes  int64  // length of the quarantined span
	Reason string // what failed (checksum mismatch, truncated frame, ...)

	// Ranks bounds the gap per rank. Index i describes rank i; a trace
	// salvaged without rank context may leave Ranks nil.
	Ranks []RankGap
}

// RankGap bounds a gap on one rank by the execution markers of the nearest
// surviving records. Markers are the per-rank UserMonitor counter, dense
// and strictly increasing while collection is on, so the bound doubles as
// an upper estimate of lost events (collection toggles also skip markers,
// hence "possibly").
type RankGap struct {
	// LastBefore is the marker of the rank's last record decoded before the
	// gap; HaveBefore is false when the rank had none.
	LastBefore uint64
	HaveBefore bool
	// FirstAfter is the marker of the rank's first record decoded after the
	// gap; HaveAfter is false when the rank never reappears.
	FirstAfter uint64
	HaveAfter  bool
}

// PossiblyLost returns an upper bound on the rank's events lost in the gap,
// or 0 when the surviving markers are adjacent (nothing lost) or the bound
// is unknowable on this side of the file.
func (rg RankGap) PossiblyLost() uint64 {
	if !rg.HaveBefore || !rg.HaveAfter || rg.FirstAfter <= rg.LastBefore+1 {
		return 0
	}
	return rg.FirstAfter - rg.LastBefore - 1
}

// Touches reports whether the gap may have swallowed events of the rank:
// either the marker bound is positive, or the rank vanishes after the gap
// (no surviving record to bound it).
func (g Gap) Touches(rank int) bool {
	if rank < 0 || rank >= len(g.Ranks) {
		return len(g.Ranks) == 0 // a gap with no rank context may touch anyone
	}
	rg := g.Ranks[rank]
	if rg.PossiblyLost() > 0 {
		return true
	}
	return rg.HaveBefore && !rg.HaveAfter
}

// RecordGap attaches a quarantined-span descriptor to the trace.
func (t *Trace) RecordGap(g Gap) { t.gaps = append(t.gaps, g) }

// Gaps returns the quarantined damaged spans recorded by salvage ("nil" for
// traces loaded from undamaged files). The slice is owned by the trace.
func (t *Trace) Gaps() []Gap { return t.gaps }

// HasGaps reports whether salvage quarantined any damage.
func (t *Trace) HasGaps() bool { return len(t.gaps) > 0 }

// PossiblyLost returns an upper bound on events lost to damage for one rank,
// summed over all gaps.
func (t *Trace) PossiblyLost(rank int) uint64 {
	var n uint64
	for _, g := range t.gaps {
		if rank >= 0 && rank < len(g.Ranks) {
			n += g.Ranks[rank].PossiblyLost()
		}
	}
	return n
}

// GapTouches reports whether any gap may have swallowed events of the rank.
func (t *Trace) GapTouches(rank int) bool {
	for _, g := range t.gaps {
		if g.Touches(rank) {
			return true
		}
	}
	return false
}

// MarkIncomplete flags the trace as a partial history. The first reason
// sticks; later calls only set the flag.
func (t *Trace) MarkIncomplete(reason string) {
	if !t.incomplete {
		t.incompleteReason = reason
	}
	t.incomplete = true
}

// Incomplete reports whether the trace is a partial history.
func (t *Trace) Incomplete() bool { return t.incomplete }

// IncompleteReason returns the reason recorded by the first MarkIncomplete
// call ("" for complete traces).
func (t *Trace) IncompleteReason() string { return t.incompleteReason }

// New returns an empty trace for numRanks processes.
func New(numRanks int) *Trace {
	if numRanks < 0 {
		numRanks = 0
	}
	return &Trace{byRank: make([][]Record, numRanks)}
}

// FromRanks wraps per-rank record streams as a Trace without copying. Each
// stream must already be in emission order (nondecreasing Start); the caller
// asserts that invariant. Used by sinks and loaders that accumulate per-rank
// slices directly.
func FromRanks(byRank [][]Record) *Trace {
	return &Trace{byRank: byRank}
}

// Grow ensures capacity for at least counts[r] records on each rank whose
// stream is still empty, so bulk loaders can append without regrowth.
func (t *Trace) Grow(counts []int) {
	for r, n := range counts {
		if r >= len(t.byRank) {
			return
		}
		if len(t.byRank[r]) == 0 && cap(t.byRank[r]) < n {
			t.byRank[r] = make([]Record, 0, n)
		}
	}
}

// NumRanks returns the number of process streams in the trace.
func (t *Trace) NumRanks() int { return len(t.byRank) }

// Append adds a record to its rank's stream. It returns the EventID assigned
// to the record. Records must be appended in nondecreasing Start order per
// rank; Append reports an error otherwise so that runtime bugs surface early.
func (t *Trace) Append(r Record) (EventID, error) {
	if r.Rank < 0 || r.Rank >= len(t.byRank) {
		return EventID{}, fmt.Errorf("trace: record rank %d out of range [0,%d)", r.Rank, len(t.byRank))
	}
	seq := t.byRank[r.Rank]
	if n := len(seq); n > 0 && seq[n-1].Start > r.Start {
		return EventID{}, fmt.Errorf("trace: rank %d record start %d precedes previous start %d",
			r.Rank, r.Start, seq[n-1].Start)
	}
	t.byRank[r.Rank] = append(seq, r)
	return EventID{Rank: r.Rank, Index: len(t.byRank[r.Rank]) - 1}, nil
}

// MustAppend is Append for callers that have already validated the record.
func (t *Trace) MustAppend(r Record) EventID {
	id, err := t.Append(r)
	if err != nil {
		panic(err)
	}
	return id
}

// Len returns the total number of records across all ranks.
func (t *Trace) Len() int {
	n := 0
	for _, seq := range t.byRank {
		n += len(seq)
	}
	return n
}

// RankLen returns the number of records for one rank.
func (t *Trace) RankLen(rank int) int {
	if rank < 0 || rank >= len(t.byRank) {
		return 0
	}
	return len(t.byRank[rank])
}

// Rank returns the record stream of one rank. The returned slice is owned by
// the trace and must not be modified.
func (t *Trace) Rank(rank int) []Record {
	if rank < 0 || rank >= len(t.byRank) {
		return nil
	}
	return t.byRank[rank]
}

// At returns the record for an event id.
func (t *Trace) At(id EventID) (*Record, error) {
	if id.Rank < 0 || id.Rank >= len(t.byRank) {
		return nil, fmt.Errorf("trace: event %v: rank out of range", id)
	}
	seq := t.byRank[id.Rank]
	if id.Index < 0 || id.Index >= len(seq) {
		return nil, fmt.Errorf("trace: event %v: index out of range [0,%d)", id, len(seq))
	}
	return &seq[id.Index], nil
}

// MustAt is At for event ids known to be valid.
func (t *Trace) MustAt(id EventID) *Record {
	r, err := t.At(id)
	if err != nil {
		panic(err)
	}
	return r
}

// EndTime returns the largest End across all records (0 for an empty trace).
func (t *Trace) EndTime() int64 {
	var end int64
	for _, seq := range t.byRank {
		for i := range seq {
			if seq[i].End > end {
				end = seq[i].End
			}
		}
	}
	return end
}

// StartTime returns the smallest Start across all records (0 if empty).
func (t *Trace) StartTime() int64 {
	first := true
	var start int64
	for _, seq := range t.byRank {
		if len(seq) == 0 {
			continue
		}
		if first || seq[0].Start < start {
			start = seq[0].Start
			first = false
		}
	}
	return start
}

// ErrNotFound is returned by lookup helpers when no record matches.
var ErrNotFound = errors.New("trace: no matching record")

// FindMarker locates the event carrying the given execution marker. Records
// per rank have nondecreasing Marker values, so this is a binary search.
func (t *Trace) FindMarker(m Marker) (EventID, error) {
	if m.Rank < 0 || m.Rank >= len(t.byRank) {
		return EventID{}, fmt.Errorf("trace: marker %v: rank out of range", m)
	}
	seq := t.byRank[m.Rank]
	i := sort.Search(len(seq), func(i int) bool { return seq[i].Marker >= m.Seq })
	if i == len(seq) || seq[i].Marker != m.Seq {
		return EventID{}, ErrNotFound
	}
	return EventID{Rank: m.Rank, Index: i}, nil
}

// LastBefore returns the last event on rank whose Start is <= vt, or
// ErrNotFound if the rank has no event that early.
func (t *Trace) LastBefore(rank int, vt int64) (EventID, error) {
	if rank < 0 || rank >= len(t.byRank) {
		return EventID{}, fmt.Errorf("trace: rank %d out of range", rank)
	}
	seq := t.byRank[rank]
	i := sort.Search(len(seq), func(i int) bool { return seq[i].Start > vt })
	if i == 0 {
		return EventID{}, ErrNotFound
	}
	return EventID{Rank: rank, Index: i - 1}, nil
}

// FirstAfter returns the first event on rank whose Start is >= vt.
func (t *Trace) FirstAfter(rank int, vt int64) (EventID, error) {
	if rank < 0 || rank >= len(t.byRank) {
		return EventID{}, fmt.Errorf("trace: rank %d out of range", rank)
	}
	seq := t.byRank[rank]
	i := sort.Search(len(seq), func(i int) bool { return seq[i].Start >= vt })
	if i == len(seq) {
		return EventID{}, ErrNotFound
	}
	return EventID{Rank: rank, Index: i}, nil
}

// Sends returns the event ids of all send records, in per-rank order.
func (t *Trace) Sends() []EventID { return t.OfKind(KindSend) }

// Recvs returns the event ids of all receive records, in per-rank order.
func (t *Trace) Recvs() []EventID { return t.OfKind(KindRecv) }

// OfKind returns all events of the given kind in (rank, index) order.
func (t *Trace) OfKind(k Kind) []EventID {
	var ids []EventID
	for rank, seq := range t.byRank {
		for i := range seq {
			if seq[i].Kind == k {
				ids = append(ids, EventID{Rank: rank, Index: i})
			}
		}
	}
	return ids
}

// Filter returns the events satisfying keep, in (rank, index) order.
func (t *Trace) Filter(keep func(*Record) bool) []EventID {
	var ids []EventID
	for rank, seq := range t.byRank {
		for i := range seq {
			if keep(&seq[i]) {
				ids = append(ids, EventID{Rank: rank, Index: i})
			}
		}
	}
	return ids
}

// MatchSendRecv returns, for every receive record, the event id of the send
// that produced its message, using the exact MsgID correlation. Sends whose
// message was never received do not appear. The second return value lists
// receives whose MsgID has no send in the trace (possible when the trace was
// truncated by a window).
func (t *Trace) MatchSendRecv() (map[EventID]EventID, []EventID) {
	sendByMsg := make(map[uint64]EventID)
	for rank, seq := range t.byRank {
		for i := range seq {
			if seq[i].Kind == KindSend {
				sendByMsg[seq[i].MsgID] = EventID{Rank: rank, Index: i}
			}
		}
	}
	matched := make(map[EventID]EventID)
	var orphans []EventID
	for rank, seq := range t.byRank {
		for i := range seq {
			if seq[i].Kind != KindRecv {
				continue
			}
			id := EventID{Rank: rank, Index: i}
			if s, ok := sendByMsg[seq[i].MsgID]; ok {
				matched[id] = s
			} else {
				orphans = append(orphans, id)
			}
		}
	}
	return matched, orphans
}

// MergedOrder returns all event ids sorted by (Start, rank, index): the
// global time-ordered view used by the time-space displays. Because every
// rank stream is already Start-ordered, this is a k-way merge over per-rank
// cursors (O(n log k)) rather than a global sort (O(n log n)).
func (t *Trace) MergedOrder() []EventID {
	ids := make([]EventID, 0, t.Len())
	heap := make([]EventID, 0, len(t.byRank)) // min-heap of per-rank cursors
	less := func(a, b EventID) bool {
		ra, rb := &t.byRank[a.Rank][a.Index], &t.byRank[b.Rank][b.Index]
		if ra.Start != rb.Start {
			return ra.Start < rb.Start
		}
		return a.Rank < b.Rank // one cursor per rank: index never ties
	}
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			min := i
			if l < len(heap) && less(heap[l], heap[min]) {
				min = l
			}
			if r < len(heap) && less(heap[r], heap[min]) {
				min = r
			}
			if min == i {
				return
			}
			heap[i], heap[min] = heap[min], heap[i]
			i = min
		}
	}
	for rank, seq := range t.byRank {
		if len(seq) > 0 {
			heap = append(heap, EventID{Rank: rank})
		}
	}
	for i := len(heap)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	for len(heap) > 0 {
		top := heap[0]
		ids = append(ids, top)
		if top.Index+1 < len(t.byRank[top.Rank]) {
			heap[0].Index++
		} else {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
		}
		siftDown(0)
	}
	return ids
}

// Window returns a new trace containing only records overlapping the virtual
// time interval [t0, t1]. Event indexes are renumbered; MsgIDs are preserved
// so message matching still works within the window.
func (t *Trace) Window(t0, t1 int64) *Trace {
	w := New(len(t.byRank))
	w.incomplete, w.incompleteReason = t.incomplete, t.incompleteReason
	w.gaps = append([]Gap(nil), t.gaps...)
	for _, seq := range t.byRank {
		for i := range seq {
			r := seq[i]
			if r.End < t0 || r.Start > t1 {
				continue
			}
			w.byRank[r.Rank] = append(w.byRank[r.Rank], r)
		}
	}
	return w
}

// Clone returns a deep copy of the trace.
func (t *Trace) Clone() *Trace {
	c := New(len(t.byRank))
	c.incomplete, c.incompleteReason = t.incomplete, t.incompleteReason
	c.gaps = append([]Gap(nil), t.gaps...)
	for rank, seq := range t.byRank {
		c.byRank[rank] = append([]Record(nil), seq...)
	}
	return c
}

// Validate checks the structural invariants the rest of the system relies
// on: per-rank Start monotonicity, nondecreasing markers, End >= Start, and
// message causality (every matched receive ends at or after its send ends).
// It returns the first violation found.
func (t *Trace) Validate() error {
	for rank, seq := range t.byRank {
		var lastStart int64
		var lastMarker uint64
		for i := range seq {
			r := &seq[i]
			if r.Rank != rank {
				return fmt.Errorf("trace: rank %d stream holds record for rank %d at index %d", rank, r.Rank, i)
			}
			if r.End < r.Start {
				return fmt.Errorf("trace: %v: End %d < Start %d", EventID{rank, i}, r.End, r.Start)
			}
			if i > 0 && r.Start < lastStart {
				return fmt.Errorf("trace: %v: Start %d < previous Start %d", EventID{rank, i}, r.Start, lastStart)
			}
			if i > 0 && r.Marker < lastMarker {
				return fmt.Errorf("trace: %v: Marker %d < previous Marker %d", EventID{rank, i}, r.Marker, lastMarker)
			}
			lastStart, lastMarker = r.Start, r.Marker
		}
	}
	matched, _ := t.MatchSendRecv()
	for recv, send := range matched {
		rr, sr := t.MustAt(recv), t.MustAt(send)
		if rr.End < sr.End {
			return fmt.Errorf("trace: receive %v (end %d) precedes its send %v (end %d)", recv, rr.End, send, sr.End)
		}
		if rr.Src != sr.Rank || sr.Dst != rr.Rank {
			return fmt.Errorf("trace: endpoint mismatch between send %v and receive %v", send, recv)
		}
	}
	return nil
}

// Stats summarizes a trace; used by reports and tests.
type Stats struct {
	Records     int
	PerKind     map[Kind]int
	Sends       int
	Recvs       int
	BytesSent   int
	EndTime     int64
	PerRankMsgs []int // receives per rank

	// Salvage damage, when the trace came through the salvage reader.
	Gaps         int    // quarantined damaged spans
	GapBytes     int64  // total bytes quarantined
	PossiblyLost uint64 // upper bound on lost events across all ranks
}

// Summarize computes summary statistics.
func (t *Trace) Summarize() Stats {
	st := Stats{PerKind: make(map[Kind]int), PerRankMsgs: make([]int, len(t.byRank))}
	for rank, seq := range t.byRank {
		for i := range seq {
			r := &seq[i]
			st.Records++
			st.PerKind[r.Kind]++
			switch r.Kind {
			case KindSend:
				st.Sends++
				st.BytesSent += r.Bytes
			case KindRecv:
				st.Recvs++
				st.PerRankMsgs[rank]++
			}
			if r.End > st.EndTime {
				st.EndTime = r.End
			}
		}
	}
	st.Gaps = len(t.gaps)
	for _, g := range t.gaps {
		st.GapBytes += g.Bytes
		for _, rg := range g.Ranks {
			st.PossiblyLost += rg.PossiblyLost()
		}
	}
	return st
}
