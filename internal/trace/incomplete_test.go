package trace

import (
	"bytes"
	"testing"
)

func TestIncompleteRoundTrip(t *testing.T) {
	tr := New(2)
	tr.MustAppend(Record{Kind: KindSend, Rank: 0, Dst: 1, Tag: 7, MsgID: 1, Fault: FaultDrop})
	tr.MustAppend(Record{Kind: KindFault, Rank: 1, Src: NoRank, Dst: NoRank, Fault: FaultCrash, Name: "injected"})
	tr.MarkIncomplete("rank 1 crashed")

	var buf bytes.Buffer
	if err := WriteAll(&buf, tr); err != nil {
		t.Fatalf("WriteAll: %v", err)
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !got.Incomplete() || got.IncompleteReason() != "rank 1 crashed" {
		t.Fatalf("incomplete flag lost: %v %q", got.Incomplete(), got.IncompleteReason())
	}
	if got.Rank(0)[0].Fault != FaultDrop {
		t.Errorf("send fault annotation lost: %+v", got.Rank(0)[0])
	}
	if r := got.Rank(1)[0]; r.Kind != KindFault || r.Fault != FaultCrash {
		t.Errorf("crash record lost: %+v", r)
	}
}

func TestIncompletePreservedByCloneAndWindow(t *testing.T) {
	tr := New(1)
	tr.MustAppend(Record{Kind: KindMarker, Rank: 0, Start: 5, End: 5})
	tr.MarkIncomplete("stream cut")
	if c := tr.Clone(); !c.Incomplete() || c.IncompleteReason() != "stream cut" {
		t.Error("Clone dropped the incomplete flag")
	}
	if w := tr.Window(0, 10); !w.Incomplete() {
		t.Error("Window dropped the incomplete flag")
	}
	// First reason sticks.
	tr.MarkIncomplete("second reason")
	if tr.IncompleteReason() != "stream cut" {
		t.Errorf("reason overwritten: %q", tr.IncompleteReason())
	}
}

func TestReadAllPartialSalvagesTruncatedFile(t *testing.T) {
	var buf bytes.Buffer
	// Tiny chunks so each record seals its own frame: truncation then
	// damages only the last chunk and the salvageable prefix is nonempty.
	fw, err := NewFileWriterOptions(&buf, 1, WriterOptions{ChunkBytes: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		rec := Record{Kind: KindMarker, Rank: 0, Marker: uint64(i + 1), Start: int64(i), End: int64(i)}
		if err := fw.Write(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()

	// Strict reader rejects the cut file; the tolerant one salvages a prefix.
	cut := whole[:len(whole)-3]
	if _, err := ReadAll(bytes.NewReader(cut)); err == nil {
		t.Error("ReadAll accepted a truncated file")
	}
	got, err := ReadAllPartial(bytes.NewReader(cut))
	if err != nil {
		t.Fatalf("ReadAllPartial: %v", err)
	}
	if !got.Incomplete() {
		t.Error("salvaged trace not marked incomplete")
	}
	if got.Len() == 0 || got.Len() >= 10 {
		t.Errorf("salvaged %d records, want a proper nonempty prefix", got.Len())
	}

	// A pristine file stays complete through the tolerant reader.
	full, err := ReadAllPartial(bytes.NewReader(whole))
	if err != nil {
		t.Fatal(err)
	}
	if full.Incomplete() || full.Len() != 10 {
		t.Errorf("pristine file misread: incomplete=%v len=%d", full.Incomplete(), full.Len())
	}

	// Garbage without a decodable header is still an error.
	if _, err := ReadAllPartial(bytes.NewReader([]byte("BOGUS"))); err == nil {
		t.Error("ReadAllPartial accepted garbage header")
	}
}
