package trace

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
)

// TestCorruptedFilesNeverPanic flips bits and truncates trace files at
// deterministic positions: the scanner must return an error or clean EOF,
// never panic or loop forever.
func TestCorruptedFilesNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	tr := randomTrace(rng, 3, 60)
	var buf bytes.Buffer
	if err := WriteAll(&buf, tr); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()

	scanAll := func(data []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on corrupted input: %v", r)
			}
		}()
		sc, err := NewScanner(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < len(data)+10; i++ { // bounded: no infinite loops
			if _, err := sc.Next(); err != nil {
				return
			}
		}
		t.Fatalf("scanner yielded more records than bytes in the file")
	}

	// Bit flips at deterministic positions.
	for trial := 0; trial < 300; trial++ {
		data := append([]byte(nil), orig...)
		pos := rng.Intn(len(data))
		data[pos] ^= 1 << uint(rng.Intn(8))
		scanAll(data)
	}
	// Truncations.
	for cut := 0; cut < len(orig); cut += 7 {
		scanAll(orig[:cut])
	}
	// Random garbage.
	for trial := 0; trial < 50; trial++ {
		garbage := make([]byte, rng.Intn(200))
		rng.Read(garbage)
		scanAll(append([]byte("TDBGTRC2"), garbage...))
	}
}

// TestIndexOnTruncatedFile: BuildIndex must surface an error rather than
// misbehave when the file is cut mid-record.
func TestIndexOnTruncatedFile(t *testing.T) {
	rng := rand.New(rand.NewSource(98))
	tr := randomTrace(rng, 2, 40)
	var buf bytes.Buffer
	if err := WriteAll(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := BuildIndex(bytes.NewReader(data[:len(data)*2/3]), 8); err == nil {
		// Truncation exactly on a record boundary reads as clean EOF —
		// acceptable; anything else must error. Verify by scanning.
		sc, err2 := NewScanner(bytes.NewReader(data[:len(data)*2/3]))
		if err2 != nil {
			return
		}
		for {
			_, err2 = sc.Next()
			if err2 == io.EOF {
				return // clean boundary: index legitimately succeeded
			}
			if err2 != nil {
				t.Fatal("index succeeded on a file the scanner rejects")
			}
		}
	}
}
