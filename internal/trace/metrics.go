package trace

import (
	"sync/atomic"

	"tracedbg/internal/obs"
)

// traceMetrics is the package's self-observability set. Write-path counters
// are rank-sharded so publications land on the rank's own cache line; the
// sharded writer publishes them only at drain points (chunk flushes and
// on-demand Flush) so the per-record hot path carries no atomic ops or
// registry traffic at all. Chunk-granularity and load-path metrics use
// plain cells.
type traceMetrics struct {
	recordsWritten *obs.ShardedCounter
	bufferBytes    *obs.ShardedGauge
	bytesEncoded   *obs.ShardedCounter
	chunkFlushes   *obs.Counter
	chunkBytes     *obs.Histogram

	loadParallel  *obs.Counter
	loadFallback  *obs.Counter
	loadSegments  *obs.Counter
	loadWorkers   *obs.Gauge
	loadScanNs    *obs.Histogram
	loadDecodeNs  *obs.Histogram
	loadRecords   *obs.Counter
	loadIndexed   *obs.Counter
	loadIndexMiss *obs.Counter

	chunksSealed   *obs.Counter
	crcErrors      *obs.Counter
	chunksSalvaged *obs.Counter
	fsyncs         *obs.Counter
	gapSpans       *obs.Gauge
	gapBytes       *obs.Gauge
}

func newTraceMetrics(r *obs.Registry) *traceMetrics {
	return &traceMetrics{
		recordsWritten: r.ShardedCounter("tracedbg_trace_records_written_total",
			"records accepted by the sharded trace writer"),
		bufferBytes: r.ShardedGauge("tracedbg_trace_buffer_bytes",
			"encoded bytes buffered in per-rank shards at the last on-demand flush"),
		bytesEncoded: r.ShardedCounter("tracedbg_trace_bytes_encoded_total",
			"encoded record bytes handed to the shared file writer"),
		chunkFlushes: r.Counter("tracedbg_trace_chunk_flushes_total",
			"per-rank buffer batches drained into the shared file writer"),
		chunkBytes: r.Histogram("tracedbg_trace_chunk_bytes",
			"size distribution of flushed chunks in bytes"),
		loadParallel: r.Counter("tracedbg_trace_load_parallel_total",
			"trace loads served by the parallel segment decoder"),
		loadFallback: r.Counter("tracedbg_trace_load_serial_fallback_total",
			"trace loads that stepped aside to the serial scanner"),
		loadSegments: r.Counter("tracedbg_trace_load_segments_total",
			"byte-range segments decoded by parallel loads"),
		loadWorkers: r.Gauge("tracedbg_trace_load_workers",
			"decode workers used by the most recent parallel load"),
		loadScanNs: r.Histogram("tracedbg_trace_load_scan_ns",
			"duration of the structural pass per parallel load, nanoseconds"),
		loadDecodeNs: r.Histogram("tracedbg_trace_load_decode_ns",
			"duration of segment decode + assembly per parallel load, nanoseconds"),
		loadRecords: r.Counter("tracedbg_trace_load_records_total",
			"records materialized by parallel loads"),
		loadIndexed: r.Counter("tracedbg_trace_load_indexed_total",
			"parallel loads that reused a prebuilt index for segmentation"),
		loadIndexMiss: r.Counter("tracedbg_trace_load_index_mismatch_total",
			"indexed loads whose index disagreed with the bytes (re-ran unindexed)"),
		chunksSealed: r.Counter("tracedbg_trace_chunks_sealed_total",
			"checksummed chunk frames written to trace files"),
		crcErrors: r.Counter("tracedbg_trace_crc_errors_total",
			"chunk frames rejected for checksum mismatch or damaged framing"),
		chunksSalvaged: r.Counter("tracedbg_trace_chunks_salvaged_total",
			"chunk frames recovered by resynchronizing salvage after damage"),
		fsyncs: r.Counter("tracedbg_trace_fsyncs_total",
			"fsyncs issued by trace writers under their durability policy"),
		gapSpans: r.Gauge("tracedbg_trace_gaps",
			"damaged spans quarantined by the most recent salvaged load"),
		gapBytes: r.Gauge("tracedbg_trace_gap_bytes",
			"bytes quarantined by the most recent salvaged load"),
	}
}

var traceObs atomic.Pointer[traceMetrics]

func init() { traceObs.Store(newTraceMetrics(obs.Default())) }

// SetObsRegistry re-points the package's metrics at a registry; obs.Nop()
// yields nil metrics whose increments are no-ops. It exists for the
// instrumentation-overhead benchmarks; restore with
// SetObsRegistry(obs.Default()).
func SetObsRegistry(r *obs.Registry) {
	traceObs.Store(newTraceMetrics(r))
}

func metrics() *traceMetrics { return traceObs.Load() }
