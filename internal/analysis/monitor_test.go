package analysis

import (
	"sort"
	"strings"
	"testing"

	"tracedbg/internal/instr"
	"tracedbg/internal/mp"
	"tracedbg/internal/trace"
)

// completionOrder returns the trace's records in the order a live run would
// have emitted them (AddTrace's ordering).
func completionOrder(tr *trace.Trace) []*trace.Record {
	var ids []trace.EventID
	for r := 0; r < tr.NumRanks(); r++ {
		for i := range tr.Rank(r) {
			ids = append(ids, trace.EventID{Rank: r, Index: i})
		}
	}
	sort.Slice(ids, func(a, b int) bool {
		ra, rb := tr.MustAt(ids[a]), tr.MustAt(ids[b])
		if ra.End != rb.End {
			return ra.End < rb.End
		}
		if ra.Kind == trace.KindSend && rb.Kind == trace.KindRecv {
			return true
		}
		if ra.Kind == trace.KindRecv && rb.Kind == trace.KindSend {
			return false
		}
		return ids[a].Less(ids[b])
	})
	out := make([]*trace.Record, len(ids))
	for i, id := range ids {
		out[i] = tr.MustAt(id)
	}
	return out
}

// TestMonitorMatchesPostMortem: a monitor that absorbed the whole stream
// reports the same traffic and unmatched lists as the post-mortem analyses
// of the finalized trace.
func TestMonitorMatchesPostMortem(t *testing.T) {
	sink := instr.NewMemorySink(3)
	in := instr.New(3, sink, instr.LevelAll)
	if err := in.Run(mp.Config{NumRanks: 3}, func(c *instr.Ctx) {
		next := (c.Rank() + 1) % 3
		prev := (c.Rank() + 2) % 3
		for i := 0; i < 3; i++ {
			if c.Rank()%2 == 0 {
				c.Send(next, 7, make([]byte, 64))
				c.Recv(prev, 7)
			} else {
				c.Recv(prev, 7)
				c.Send(next, 7, make([]byte, 64))
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	tr := sink.Trace()

	m := NewMonitor(tr.NumRanks(), -1)
	for _, rec := range completionOrder(tr) {
		if err := m.Observe(rec); err != nil {
			t.Fatal(err)
		}
	}
	if m.Records() != tr.Len() {
		t.Fatalf("absorbed %d records, trace has %d", m.Records(), tr.Len())
	}
	if got, want := m.Traffic().String(), AnalyzeTraffic(tr).String(); got != want {
		t.Errorf("traffic diverged:\nlive:\n%s\npost-mortem:\n%s", got, want)
	}
	want := NewMatchTracker()
	want.AddTrace(tr)
	if got := m.MatchReport(); got != want.Report() {
		t.Errorf("match report diverged:\nlive:\n%s\npost-mortem:\n%s", got, want.Report())
	}
	status := m.Status()
	if !strings.Contains(status, "records") {
		t.Errorf("status: %q", status)
	}
}

// TestMonitorStopline: ranks report exactly one crossing each, at the first
// record whose End reaches the stopline.
func TestMonitorStopline(t *testing.T) {
	m := NewMonitor(2, 100)
	feed := []trace.Record{
		{Kind: trace.KindMarker, Rank: 0, Start: 10, End: 50},
		{Kind: trace.KindMarker, Rank: 1, Start: 10, End: 99},
		{Kind: trace.KindMarker, Rank: 0, Start: 60, End: 120},
		{Kind: trace.KindMarker, Rank: 0, Start: 130, End: 200},
		{Kind: trace.KindMarker, Rank: 1, Start: 100, End: 100},
	}
	for i := range feed {
		if err := m.Observe(&feed[i]); err != nil {
			t.Fatal(err)
		}
	}
	cross := m.Crossings()
	if len(cross) != 2 || cross[0] != 0 || cross[1] != 1 {
		t.Fatalf("crossings = %v", cross)
	}
	if again := m.Crossings(); len(again) != 0 {
		t.Fatalf("crossings not drained: %v", again)
	}
	if at := m.CrossedAt(0); at != 120 {
		t.Errorf("rank 0 crossed at %d, want 120", at)
	}
	if at := m.CrossedAt(1); at != 100 {
		t.Errorf("rank 1 crossed at %d, want 100", at)
	}
	if !m.AllCrossed() {
		t.Error("AllCrossed = false")
	}
	if !strings.Contains(m.Status(), "stopline 100 crossed by 2/2 ranks") {
		t.Errorf("status: %q", m.Status())
	}
}

// TestMonitorDeadlockDebounce: the incremental deadlock check reproduces
// the post-mortem fault-aware report and reuses the cached verdict until
// enough new records arrive.
func TestMonitorDeadlockDebounce(t *testing.T) {
	tr := stalledTrace(t, 2, func(c *instr.Ctx) {
		c.Recv(1-c.Rank(), 0)
	})
	m := NewMonitor(tr.NumRanks(), -1)
	for _, rec := range completionOrder(tr) {
		if err := m.Observe(rec); err != nil {
			t.Fatal(err)
		}
	}
	rep := m.CheckDeadlock(0)
	if !rep.HasDeadlock() {
		t.Fatalf("no deadlock found: %s", rep)
	}
	if got, want := rep.String(), DetectDeadlock(tr).String(); got != want {
		t.Errorf("deadlock report diverged:\nlive:\n%s\npost-mortem:\n%s", got, want)
	}
	if again := m.CheckDeadlock(1000); again != rep {
		t.Error("debounced check re-ran with no new records")
	}
	if fresh := m.CheckDeadlock(0); fresh == rep {
		t.Error("forced check returned the cached report")
	}
}
