package analysis

import (
	"io"
	"math/rand"
	"reflect"
	"testing"

	"tracedbg/internal/trace"
)

type sliceCursor struct {
	recs []trace.Record
	i    int
}

func (c *sliceCursor) Next() (*trace.Record, error) {
	if c.i >= len(c.recs) {
		return nil, io.EOF
	}
	rec := &c.recs[c.i]
	c.i++
	return rec, nil
}

func (c *sliceCursor) Close() error { return nil }

// allCursor replays the trace's merged order, the shape store.All yields.
func allCursor(tr *trace.Trace) trace.RecordCursor {
	var recs []trace.Record
	for _, id := range tr.MergedOrder() {
		recs = append(recs, *tr.MustAt(id))
	}
	return &sliceCursor{recs: recs}
}

func trafficTrace(rng *rand.Rand, ranks, msgs int) *trace.Trace {
	tr := trace.New(ranks)
	clock := make([]int64, ranks)
	marker := make([]uint64, ranks)
	var msgID uint64
	for i := 0; i < msgs; i++ {
		src := rng.Intn(ranks)
		dst := (src + 1 + rng.Intn(ranks-1)) % ranks
		msgID++
		s := clock[src]
		e := s + 1 + int64(rng.Intn(5))
		clock[src] = e
		marker[src]++
		tr.MustAppend(trace.Record{Kind: trace.KindSend, Rank: src, Marker: marker[src],
			Start: s, End: e, Src: src, Dst: dst, Bytes: 8 + rng.Intn(100), MsgID: msgID})
		// Skew the rank-0 traffic so Odd irregularities actually appear.
		if src == 0 && rng.Intn(2) == 0 {
			continue
		}
		marker[dst]++
		rs := clock[dst]
		re := rs + 1
		clock[dst] = re
		tr.MustAppend(trace.Record{Kind: trace.KindRecv, Rank: dst, Marker: marker[dst],
			Start: rs, End: re, Src: src, Dst: dst, Bytes: 8, MsgID: msgID})
	}
	return tr
}

// TestAnalyzeTrafficStreamIdentity: the streaming analyzer over a cursor
// must produce the exact report of the materialized analyzer, including the
// irregularity classification.
func TestAnalyzeTrafficStreamIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for i := 0; i < 6; i++ {
		tr := trafficTrace(rng, 3+rng.Intn(5), 100+rng.Intn(400))
		want := AnalyzeTraffic(tr)
		got, err := AnalyzeTrafficStream(tr.NumRanks(), allCursor(tr))
		if err != nil {
			t.Fatalf("trace %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trace %d: stream report differs\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func TestBuildCommMatrixStreamIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	for i := 0; i < 6; i++ {
		tr := trafficTrace(rng, 3+rng.Intn(5), 100+rng.Intn(400))
		want := BuildCommMatrix(tr)
		got, err := BuildCommMatrixStream(tr.NumRanks(), allCursor(tr))
		if err != nil {
			t.Fatalf("trace %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trace %d: stream matrix differs\n got %+v\nwant %+v", i, got, want)
		}
	}
}

// TestStreamOutOfRangeRanks: records with ranks outside [0, numRanks) are
// skipped, not a panic.
func TestStreamOutOfRangeRanks(t *testing.T) {
	recs := []trace.Record{
		{Kind: trace.KindSend, Rank: -1, Src: -1, Dst: 0, Bytes: 4},
		{Kind: trace.KindSend, Rank: 5, Src: 5, Dst: 1, Bytes: 4},
		{Kind: trace.KindSend, Rank: 0, Src: 0, Dst: 1, Bytes: 4},
	}
	rep, err := AnalyzeTrafficStream(2, &sliceCursor{recs: recs})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sends[0] != 1 || rep.Sends[1] != 0 {
		t.Fatalf("sends = %v", rep.Sends)
	}
	m, err := BuildCommMatrixStream(2, &sliceCursor{recs: recs})
	if err != nil {
		t.Fatal(err)
	}
	if m.Msgs[0][1] != 1 {
		t.Fatalf("msgs = %v", m.Msgs)
	}
}
