package analysis

import (
	"strings"
	"testing"

	"tracedbg/internal/instr"
	"tracedbg/internal/mp"
	"tracedbg/internal/trace"
)

func TestDetectIntertwinedTagSelective(t *testing.T) {
	// Rank 0 sends tag 1 then tag 2; rank 1 receives tag 2 first: the tag-1
	// message is overtaken.
	sink := instr.NewMemorySink(2)
	in := instr.New(2, sink, instr.LevelWrappers)
	if err := in.Run(mp.Config{NumRanks: 2}, func(c *instr.Ctx) {
		if c.Rank() == 0 {
			c.SendInt64s(1, 1, []int64{1})
			c.SendInt64s(1, 2, []int64{2})
		} else {
			c.Probe(0, 2) // ensure both are buffered
			c.Recv(0, 2)
			c.Recv(0, 1)
		}
	}); err != nil {
		t.Fatal(err)
	}
	pairs := DetectIntertwined(sink.Trace())
	if len(pairs) != 1 {
		t.Fatalf("pairs = %v", pairs)
	}
	p := pairs[0]
	if p.Src != 0 || p.Dst != 1 || p.FirstTag != 1 || p.SecondTag != 2 {
		t.Fatalf("pair = %+v", p)
	}
	rep := IntertwinedReport(sink.Trace())
	if !strings.Contains(rep, "overtaken by tag=2") {
		t.Errorf("report:\n%s", rep)
	}
}

func TestNoIntertwinedInFIFOTraffic(t *testing.T) {
	sink := instr.NewMemorySink(2)
	in := instr.New(2, sink, instr.LevelWrappers)
	if err := in.Run(mp.Config{NumRanks: 2}, func(c *instr.Ctx) {
		if c.Rank() == 0 {
			for i := 0; i < 5; i++ {
				c.SendInt64s(1, i, []int64{int64(i)})
			}
		} else {
			for i := 0; i < 5; i++ {
				c.Recv(0, i) // in send order
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if pairs := DetectIntertwined(sink.Trace()); len(pairs) != 0 {
		t.Fatalf("FIFO traffic flagged: %v", pairs)
	}
	if rep := IntertwinedReport(sink.Trace()); !strings.Contains(rep, "no intertwined") {
		t.Errorf("report:\n%s", rep)
	}
}

func TestIntertwinedIgnoresUnmatched(t *testing.T) {
	tr := trace.New(2)
	tr.MustAppend(trace.Record{Kind: trace.KindSend, Rank: 0, Marker: 1, Src: 0, Dst: 1, Tag: 1, MsgID: 1})
	tr.MustAppend(trace.Record{Kind: trace.KindSend, Rank: 0, Marker: 2, Start: 1, End: 1, Src: 0, Dst: 1, Tag: 2, MsgID: 2})
	// Only the second message was received.
	tr.MustAppend(trace.Record{Kind: trace.KindRecv, Rank: 1, Marker: 1, Start: 2, End: 2, Src: 0, Dst: 1, Tag: 2, MsgID: 2})
	if pairs := DetectIntertwined(tr); len(pairs) != 0 {
		t.Fatalf("unmatched send produced a pair: %v", pairs)
	}
}
