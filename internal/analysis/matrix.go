package analysis

import (
	"fmt"
	"strings"

	"tracedbg/internal/trace"
)

// CommMatrix aggregates point-to-point traffic per directed channel: the
// at-a-glance communication structure of the program.
type CommMatrix struct {
	N     int
	Msgs  [][]int   // Msgs[src][dst]
	Bytes [][]int64 // Bytes[src][dst]
}

// BuildCommMatrix counts completed sends per channel.
func BuildCommMatrix(tr *trace.Trace) *CommMatrix {
	n := tr.NumRanks()
	m := &CommMatrix{N: n, Msgs: make([][]int, n), Bytes: make([][]int64, n)}
	for i := range m.Msgs {
		m.Msgs[i] = make([]int, n)
		m.Bytes[i] = make([]int64, n)
	}
	for r := 0; r < n; r++ {
		for i := range tr.Rank(r) {
			rec := &tr.Rank(r)[i]
			if rec.Kind != trace.KindSend {
				continue
			}
			if rec.Dst < 0 || rec.Dst >= n {
				continue
			}
			m.Msgs[rec.Src][rec.Dst]++
			m.Bytes[rec.Src][rec.Dst] += int64(rec.Bytes)
		}
	}
	return m
}

// TotalMsgs sums all channel counts.
func (m *CommMatrix) TotalMsgs() int {
	t := 0
	for _, row := range m.Msgs {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// Hotspot returns the channel with the most bytes (src, dst, bytes); ok is
// false for an empty matrix.
func (m *CommMatrix) Hotspot() (src, dst int, bytes int64, ok bool) {
	for s := range m.Bytes {
		for d, v := range m.Bytes[s] {
			if v > bytes {
				src, dst, bytes, ok = s, d, v, true
			}
		}
	}
	return
}

// Text renders the matrix (message counts, with byte totals per row).
func (m *CommMatrix) Text() string {
	var sb strings.Builder
	sb.WriteString("communication matrix (messages; rows = senders)\n")
	sb.WriteString("      ")
	for d := 0; d < m.N; d++ {
		fmt.Fprintf(&sb, "%6d", d)
	}
	sb.WriteString("   bytes-out\n")
	for s := 0; s < m.N; s++ {
		fmt.Fprintf(&sb, "%4d: ", s)
		var rowBytes int64
		for d := 0; d < m.N; d++ {
			fmt.Fprintf(&sb, "%6d", m.Msgs[s][d])
			rowBytes += m.Bytes[s][d]
		}
		fmt.Fprintf(&sb, "   %d\n", rowBytes)
	}
	return sb.String()
}
