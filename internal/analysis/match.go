// Package analysis implements the paper's §4.4 history analysis: the
// online list of unmatched sends and receives, deadlock detection from
// circular wait dependencies, wildcard message-race detection, the action
// graph summarization of the call graph, and the message-traffic
// irregularity report that pinpoints anomalies like Figure 6's missed
// message.
package analysis

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"tracedbg/internal/trace"
)

// MatchTracker maintains the unmatched send/receive lists online, updated
// as execution progresses; it can be installed as an instrumentation sink.
type MatchTracker struct {
	mu           sync.Mutex
	pendingSends map[uint64]trace.Record // sends whose receive has not appeared
	matched      int
	blockedRecvs []trace.Record // receives that never completed (KindBlocked)
	orphanRecvs  []trace.Record // receives whose send never appeared (window truncation)
	totalSends   int
	totalRecvs   int
}

// NewMatchTracker creates an empty tracker.
func NewMatchTracker() *MatchTracker {
	return &MatchTracker{pendingSends: make(map[uint64]trace.Record)}
}

// Emit implements the instrumentation Sink interface.
func (t *MatchTracker) Emit(rec *trace.Record) {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch rec.Kind {
	case trace.KindSend:
		t.totalSends++
		t.pendingSends[rec.MsgID] = *rec
	case trace.KindRecv:
		t.totalRecvs++
		if _, ok := t.pendingSends[rec.MsgID]; ok {
			delete(t.pendingSends, rec.MsgID)
			t.matched++
		} else {
			t.orphanRecvs = append(t.orphanRecvs, *rec)
		}
	case trace.KindBlocked:
		if strings.Contains(rec.Name, "Recv") || strings.Contains(rec.Name, "Wait") {
			t.blockedRecvs = append(t.blockedRecvs, *rec)
		}
	}
}

// AddTrace feeds a whole trace through the tracker in completion order —
// the order in which a live run would have emitted the records (a receive
// always completes after its send completes).
func (t *MatchTracker) AddTrace(tr *trace.Trace) {
	var ids []trace.EventID
	for r := 0; r < tr.NumRanks(); r++ {
		for i := range tr.Rank(r) {
			ids = append(ids, trace.EventID{Rank: r, Index: i})
		}
	}
	sort.Slice(ids, func(a, b int) bool {
		ra, rb := tr.MustAt(ids[a]), tr.MustAt(ids[b])
		if ra.End != rb.End {
			return ra.End < rb.End
		}
		if ra.Kind == trace.KindSend && rb.Kind == trace.KindRecv {
			return true // a send sorts before a same-instant receive
		}
		if ra.Kind == trace.KindRecv && rb.Kind == trace.KindSend {
			return false
		}
		return ids[a].Less(ids[b])
	})
	for _, id := range ids {
		t.Emit(tr.MustAt(id))
	}
}

// UnmatchedSends returns the sends that have not (yet) been received, in
// message-id order.
func (t *MatchTracker) UnmatchedSends() []trace.Record {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]trace.Record, 0, len(t.pendingSends))
	for _, r := range t.pendingSends {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MsgID < out[j].MsgID })
	return out
}

// UnmatchedRecvs returns receives that could not complete: blocked receive
// operations plus orphan receive records.
func (t *MatchTracker) UnmatchedRecvs() []trace.Record {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := append([]trace.Record(nil), t.blockedRecvs...)
	out = append(out, t.orphanRecvs...)
	return out
}

// Matched returns the number of completed pairs so far.
func (t *MatchTracker) Matched() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.matched
}

// Totals returns (sends, recvs) observed.
func (t *MatchTracker) Totals() (int, int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.totalSends, t.totalRecvs
}

// Report renders the unmatched lists for the user.
func (t *MatchTracker) Report() string {
	sends := t.UnmatchedSends()
	recvs := t.UnmatchedRecvs()
	var sb strings.Builder
	fmt.Fprintf(&sb, "message matching: %d matched, %d unmatched sends, %d unmatched receives\n",
		t.Matched(), len(sends), len(recvs))
	for _, s := range sends {
		fmt.Fprintf(&sb, "  unmatched send: %s\n", s.String())
	}
	for _, r := range recvs {
		fmt.Fprintf(&sb, "  unmatched recv: %s\n", r.String())
	}
	return sb.String()
}
