package analysis

import (
	"fmt"
	"strings"

	"tracedbg/internal/trace"
)

// ActionKind classifies what a function did while active.
type ActionKind uint8

// Action kinds.
const (
	ActionCall ActionKind = iota
	ActionSend
	ActionRecv
	ActionCollective
	ActionCompute
)

// String names the action kind.
func (k ActionKind) String() string {
	switch k {
	case ActionCall:
		return "call"
	case ActionSend:
		return "send"
	case ActionRecv:
		return "recv"
	case ActionCollective:
		return "collective"
	case ActionCompute:
		return "compute"
	}
	return fmt.Sprintf("ActionKind(%d)", uint8(k))
}

// Action is one classified step of a function's activity, with consecutive
// repetitions folded into a count — the lower-resolution view of history the
// paper calls the action graph.
type Action struct {
	Kind   ActionKind
	Target string // callee name, peer rank ("->3" / "<-0"), or construct
	Count  int
}

// FuncActions summarizes the actions of one function on one rank.
type FuncActions struct {
	Rank    int
	Func    string
	Actions []Action
}

// ActionGraph is the per-function action summary of an execution.
type ActionGraph struct {
	Funcs []FuncActions
}

// BuildActionGraph classifies, for every function activation context, the
// calls, messages, and computation performed while the function was active
// (directly — nested activity is attributed to the nested function).
func BuildActionGraph(tr *trace.Trace) *ActionGraph {
	type key struct {
		rank int
		fn   string
	}
	byFunc := make(map[key]*FuncActions)
	var order []key
	get := func(rank int, fn string) *FuncActions {
		k := key{rank, fn}
		if fa, ok := byFunc[k]; ok {
			return fa
		}
		fa := &FuncActions{Rank: rank, Func: fn}
		byFunc[k] = fa
		order = append(order, k)
		return fa
	}
	addAction := func(fa *FuncActions, kind ActionKind, target string) {
		if n := len(fa.Actions); n > 0 {
			last := &fa.Actions[n-1]
			if last.Kind == kind && last.Target == target {
				last.Count++
				return
			}
		}
		fa.Actions = append(fa.Actions, Action{Kind: kind, Target: target, Count: 1})
	}

	for rank := 0; rank < tr.NumRanks(); rank++ {
		stack := []string{"program"}
		top := func() string { return stack[len(stack)-1] }
		for i := range tr.Rank(rank) {
			rec := &tr.Rank(rank)[i]
			switch rec.Kind {
			case trace.KindFuncEntry:
				addAction(get(rank, top()), ActionCall, rec.Name)
				stack = append(stack, rec.Name)
			case trace.KindFuncExit:
				if len(stack) > 1 {
					stack = stack[:len(stack)-1]
				}
			case trace.KindSend:
				addAction(get(rank, top()), ActionSend, fmt.Sprintf("->%d", rec.Dst))
			case trace.KindRecv:
				addAction(get(rank, top()), ActionRecv, fmt.Sprintf("<-%d", rec.Src))
			case trace.KindCollective:
				addAction(get(rank, top()), ActionCollective, rec.Name)
			case trace.KindCompute:
				addAction(get(rank, top()), ActionCompute, "")
			}
		}
	}

	g := &ActionGraph{}
	for _, k := range order {
		g.Funcs = append(g.Funcs, *byFunc[k])
	}
	return g
}

// Text renders the action graph.
func (g *ActionGraph) Text() string {
	var sb strings.Builder
	sb.WriteString("action graph\n")
	for _, fa := range g.Funcs {
		fmt.Fprintf(&sb, "  rank %d %s:\n", fa.Rank, fa.Func)
		for _, a := range fa.Actions {
			if a.Count > 1 {
				fmt.Fprintf(&sb, "    %s %s x%d\n", a.Kind, a.Target, a.Count)
			} else {
				fmt.Fprintf(&sb, "    %s %s\n", a.Kind, a.Target)
			}
		}
	}
	return sb.String()
}

// Lookup finds the action summary for (rank, function).
func (g *ActionGraph) Lookup(rank int, fn string) (FuncActions, bool) {
	for _, fa := range g.Funcs {
		if fa.Rank == rank && fa.Func == fn {
			return fa, true
		}
	}
	return FuncActions{}, false
}
