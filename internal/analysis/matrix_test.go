package analysis

import (
	"strings"
	"testing"

	"tracedbg/internal/trace"
)

func TestCommMatrix(t *testing.T) {
	tr := trace.New(3)
	add := func(src, dst, bytes int, marker uint64) {
		tr.MustAppend(trace.Record{Kind: trace.KindSend, Rank: src, Marker: marker,
			Start: int64(marker), End: int64(marker), Src: src, Dst: dst, Bytes: bytes, MsgID: uint64(marker)})
	}
	add(0, 1, 100, 1)
	add(0, 1, 50, 2)
	add(0, 2, 10, 3)
	add(2, 0, 7, 1)

	m := BuildCommMatrix(tr)
	if m.Msgs[0][1] != 2 || m.Bytes[0][1] != 150 {
		t.Errorf("channel 0->1 = %d msgs / %d bytes", m.Msgs[0][1], m.Bytes[0][1])
	}
	if m.Msgs[2][0] != 1 || m.Msgs[1][0] != 0 {
		t.Errorf("matrix rows wrong")
	}
	if m.TotalMsgs() != 4 {
		t.Errorf("total = %d", m.TotalMsgs())
	}
	src, dst, bytes, ok := m.Hotspot()
	if !ok || src != 0 || dst != 1 || bytes != 150 {
		t.Errorf("hotspot = %d->%d %d, %v", src, dst, bytes, ok)
	}
	txt := m.Text()
	if !strings.Contains(txt, "communication matrix") || !strings.Contains(txt, "160") {
		t.Errorf("text:\n%s", txt)
	}
}

func TestCommMatrixEmpty(t *testing.T) {
	m := BuildCommMatrix(trace.New(2))
	if m.TotalMsgs() != 0 {
		t.Error("empty matrix has messages")
	}
	if _, _, _, ok := m.Hotspot(); ok {
		t.Error("empty matrix has hotspot")
	}
}

func TestCommMatrixIgnoresSelfInvalid(t *testing.T) {
	tr := trace.New(2)
	// A send whose destination is out of matrix range (defensive).
	tr.MustAppend(trace.Record{Kind: trace.KindSend, Rank: 0, Marker: 1, Src: 0, Dst: 9, MsgID: 1})
	m := BuildCommMatrix(tr)
	if m.TotalMsgs() != 0 {
		t.Error("out-of-range destination counted")
	}
}
