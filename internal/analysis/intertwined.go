package analysis

import (
	"fmt"
	"sort"
	"strings"

	"tracedbg/internal/trace"
)

// Intertwined messages (paper §4.4, after MPI 1.1 p.31): two messages on
// the same directed channel whose receive order differs from their send
// order. The non-overtaking rule forbids this for equal tags, so an
// intertwined pair always involves tag-selective (or wildcard-tag)
// receiving — legal, but worth surfacing to the user because it is where
// mentally-simulated FIFO intuition breaks.
type Intertwined struct {
	Src, Dst   int
	First      trace.EventID // the earlier send
	Second     trace.EventID // the later send, received earlier
	FirstRecv  trace.EventID
	SecondRecv trace.EventID
	FirstTag   int
	SecondTag  int
}

// String renders one intertwined pair.
func (iw Intertwined) String() string {
	return fmt.Sprintf("channel %d->%d: message tag=%d (send %v) overtaken by tag=%d (send %v)",
		iw.Src, iw.Dst, iw.FirstTag, iw.First, iw.SecondTag, iw.Second)
}

// DetectIntertwined finds all out-of-order receive pairs per directed
// channel.
func DetectIntertwined(tr *trace.Trace) []Intertwined {
	matched, _ := tr.MatchSendRecv()
	recvOf := make(map[trace.EventID]trace.EventID, len(matched))
	for recv, send := range matched {
		recvOf[send] = recv
	}

	type chKey struct{ src, dst int }
	sends := make(map[chKey][]trace.EventID)
	for r := 0; r < tr.NumRanks(); r++ {
		for i := range tr.Rank(r) {
			rec := &tr.Rank(r)[i]
			if rec.Kind == trace.KindSend {
				k := chKey{rec.Src, rec.Dst}
				sends[k] = append(sends[k], trace.EventID{Rank: r, Index: i})
			}
		}
	}

	var out []Intertwined
	var keys []chKey
	for k := range sends {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].src != keys[j].src {
			return keys[i].src < keys[j].src
		}
		return keys[i].dst < keys[j].dst
	})
	for _, k := range keys {
		list := sends[k]
		// Sends are already in per-rank index order = send order.
		for i := 0; i < len(list); i++ {
			ri, ok := recvOf[list[i]]
			if !ok {
				continue
			}
			for j := i + 1; j < len(list); j++ {
				rj, ok := recvOf[list[j]]
				if !ok {
					continue
				}
				// Both received by the same rank; compare receive order.
				if rj.Index < ri.Index {
					out = append(out, Intertwined{
						Src: k.src, Dst: k.dst,
						First: list[i], Second: list[j],
						FirstRecv: ri, SecondRecv: rj,
						FirstTag:  tr.MustAt(list[i]).Tag,
						SecondTag: tr.MustAt(list[j]).Tag,
					})
				}
			}
		}
	}
	return out
}

// IntertwinedReport renders the pairs for the user.
func IntertwinedReport(tr *trace.Trace) string {
	pairs := DetectIntertwined(tr)
	if len(pairs) == 0 {
		return "no intertwined messages\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d intertwined message pair(s):\n", len(pairs))
	for _, p := range pairs {
		fmt.Fprintf(&sb, "  %s\n", p)
	}
	return sb.String()
}
