package analysis

import (
	"errors"
	"strings"
	"testing"

	"tracedbg/internal/fault"
	"tracedbg/internal/instr"
	"tracedbg/internal/mp"
	"tracedbg/internal/trace"
)

// faultStalledTrace runs a program under the given fault plan, requires it to
// stall, and returns its trace.
func faultStalledTrace(t *testing.T, n int, p fault.Plan, body func(c *instr.Ctx)) *trace.Trace {
	t.Helper()
	sink := instr.NewMemorySink(n)
	in := instr.New(n, sink, instr.LevelAll)
	cfg := mp.Config{NumRanks: n}
	if _, err := fault.Install(p, &cfg); err != nil {
		t.Fatal(err)
	}
	err := in.Run(cfg, body)
	var stall *mp.StallError
	if !errors.As(err, &stall) {
		t.Fatalf("expected stall, got %v", err)
	}
	return sink.Trace()
}

func TestDroppedMessageHangIsNotADeadlock(t *testing.T) {
	// Rank 0 sends to rank 1; the fault plan drops the message, so rank 1's
	// receive hangs. The analyzer must blame the injected drop, not report
	// a hopeless wait or a deadlock.
	plan := fault.Plan{Seed: 3, Rules: []fault.Rule{fault.DropNth(0, 1, 1)}}
	tr := faultStalledTrace(t, 2, plan, func(c *instr.Ctx) {
		if c.Rank() == 0 {
			c.Send(1, 7, []byte("lost"))
		} else {
			c.Recv(0, 7)
		}
	})
	rep := DetectDeadlock(tr)
	if rep.HasDeadlock() {
		t.Fatalf("drop misdiagnosed as deadlock: %s", rep)
	}
	if len(rep.InjectedDrops) != 1 || rep.InjectedDrops[0].From != 1 {
		t.Fatalf("InjectedDrops = %+v", rep.InjectedDrops)
	}
	if len(rep.Hopeless) != 0 {
		t.Errorf("drop also reported hopeless: %+v", rep.Hopeless)
	}
	if !rep.FaultInduced() {
		t.Error("FaultInduced() = false")
	}
	if !strings.Contains(rep.String(), "injected fault dropped the message") {
		t.Errorf("report:\n%s", rep)
	}
}

func TestDroppedWildcardReceiveIsClassified(t *testing.T) {
	plan := fault.Plan{Seed: 3, Rules: []fault.Rule{fault.DropNth(0, 1, 1)}}
	tr := faultStalledTrace(t, 2, plan, func(c *instr.Ctx) {
		if c.Rank() == 0 {
			c.Send(1, 7, []byte("lost"))
		} else {
			c.Recv(mp.AnySource, mp.AnyTag)
		}
	})
	rep := DetectDeadlock(tr)
	if len(rep.InjectedDrops) != 1 {
		t.Fatalf("wildcard hang not attributed to drop: %s", rep)
	}
}

func TestCrashedPeerHangIsClassified(t *testing.T) {
	// Rank 1 crashes before sending; rank 0's receive hangs on the corpse.
	plan := fault.Plan{Seed: 3, Rules: []fault.Rule{fault.CrashRule(1, 1)}}
	tr := faultStalledTrace(t, 2, plan, func(c *instr.Ctx) {
		if c.Rank() == 1 {
			c.Send(0, 7, []byte("never sent"))
			return
		}
		c.Recv(1, 7)
	})
	rep := DetectDeadlock(tr)
	if rep.HasDeadlock() {
		t.Fatalf("crash misdiagnosed as deadlock: %s", rep)
	}
	if len(rep.CrashedPeers) != 1 || rep.CrashedPeers[0].From != 0 || rep.CrashedPeers[0].On != 1 {
		t.Fatalf("CrashedPeers = %+v", rep.CrashedPeers)
	}
	if len(rep.Hopeless) != 0 {
		t.Errorf("crash also reported hopeless: %+v", rep.Hopeless)
	}
	if !strings.Contains(rep.String(), "which crashed") {
		t.Errorf("report:\n%s", rep)
	}
}

func TestGenuineDeadlockStillDetectedUnderInjector(t *testing.T) {
	// An installed injector whose rules never fire must not change the
	// verdict on a real circular wait.
	plan := fault.Plan{Seed: 3, Rules: []fault.Rule{fault.DropNth(0, 1, 99)}}
	tr := faultStalledTrace(t, 2, plan, func(c *instr.Ctx) {
		c.Recv(1-c.Rank(), 0)
	})
	rep := DetectDeadlock(tr)
	if !rep.HasDeadlock() {
		t.Fatalf("deadlock not found: %s", rep)
	}
	if rep.FaultInduced() {
		t.Errorf("clean deadlock blamed on faults: %s", rep)
	}
}
