package analysis

import (
	"errors"
	"strings"
	"testing"

	"tracedbg/internal/causality"
	"tracedbg/internal/instr"
	"tracedbg/internal/mp"
	"tracedbg/internal/trace"
)

func TestMatchTrackerOnline(t *testing.T) {
	tr := NewMatchTracker()
	send := trace.Record{Kind: trace.KindSend, Rank: 0, Src: 0, Dst: 1, Tag: 1, MsgID: 1}
	tr.Emit(&send)
	if got := tr.UnmatchedSends(); len(got) != 1 || got[0].MsgID != 1 {
		t.Fatalf("unmatched sends = %v", got)
	}
	recv := trace.Record{Kind: trace.KindRecv, Rank: 1, Src: 0, Dst: 1, Tag: 1, MsgID: 1}
	tr.Emit(&recv)
	if got := tr.UnmatchedSends(); len(got) != 0 {
		t.Fatalf("after match, unmatched = %v", got)
	}
	if tr.Matched() != 1 {
		t.Errorf("matched = %d", tr.Matched())
	}
	s, r := tr.Totals()
	if s != 1 || r != 1 {
		t.Errorf("totals = %d,%d", s, r)
	}
	orphan := trace.Record{Kind: trace.KindRecv, Rank: 1, MsgID: 99}
	tr.Emit(&orphan)
	blocked := trace.Record{Kind: trace.KindBlocked, Rank: 0, Name: "Blocked(Recv)", Src: 1}
	tr.Emit(&blocked)
	if got := tr.UnmatchedRecvs(); len(got) != 2 {
		t.Fatalf("unmatched recvs = %v", got)
	}
	rep := tr.Report()
	if !strings.Contains(rep, "1 matched") || !strings.Contains(rep, "unmatched recv") {
		t.Errorf("report:\n%s", rep)
	}
}

// stalledTrace runs a deliberately deadlocked program (crossed receives)
// and returns its trace.
func stalledTrace(t *testing.T, n int, body func(c *instr.Ctx)) *trace.Trace {
	t.Helper()
	sink := instr.NewMemorySink(n)
	in := instr.New(n, sink, instr.LevelAll)
	err := in.Run(mp.Config{NumRanks: n}, body)
	var stall *mp.StallError
	if !errors.As(err, &stall) {
		t.Fatalf("expected stall, got %v", err)
	}
	return sink.Trace()
}

func TestDetectDeadlockCrossedReceives(t *testing.T) {
	tr := stalledTrace(t, 2, func(c *instr.Ctx) {
		c.Recv(1-c.Rank(), 0)
	})
	rep := DetectDeadlock(tr)
	if !rep.HasDeadlock() {
		t.Fatalf("no deadlock found: %s", rep)
	}
	if len(rep.Cycles) != 1 || len(rep.Cycles[0]) != 2 {
		t.Fatalf("cycles = %v", rep.Cycles)
	}
	if rep.Cycles[0][0] != 0 {
		t.Errorf("cycle should be canonicalized to start at rank 0: %v", rep.Cycles)
	}
	if !strings.Contains(rep.String(), "cycle: 0 -> 1 -> 0") {
		t.Errorf("report:\n%s", rep)
	}
}

func TestDetectDeadlockThreeCycle(t *testing.T) {
	tr := stalledTrace(t, 3, func(c *instr.Ctx) {
		c.Recv((c.Rank()+1)%3, 0)
	})
	rep := DetectDeadlock(tr)
	if !rep.HasDeadlock() || len(rep.Cycles) != 1 || len(rep.Cycles[0]) != 3 {
		t.Fatalf("cycles = %v", rep.Cycles)
	}
}

func TestDetectHopelessWait(t *testing.T) {
	// Rank 1 waits on rank 0, which finishes without sending: no cycle,
	// but the wait is hopeless.
	tr := stalledTrace(t, 2, func(c *instr.Ctx) {
		if c.Rank() == 1 {
			c.Recv(0, 5)
		}
	})
	rep := DetectDeadlock(tr)
	if rep.HasDeadlock() {
		t.Fatalf("unexpected cycle: %v", rep.Cycles)
	}
	if len(rep.Hopeless) != 1 || rep.Hopeless[0].From != 1 || rep.Hopeless[0].On != 0 {
		t.Fatalf("hopeless = %+v", rep.Hopeless)
	}
	if !strings.Contains(rep.String(), "will never respond") {
		t.Errorf("report:\n%s", rep)
	}
}

func TestNoDeadlockInCleanTrace(t *testing.T) {
	sink := instr.NewMemorySink(2)
	in := instr.New(2, sink, instr.LevelAll)
	if err := in.Run(mp.Config{NumRanks: 2}, func(c *instr.Ctx) {
		if c.Rank() == 0 {
			c.Send(1, 0, []byte("x"))
		} else {
			c.Recv(0, 0)
		}
	}); err != nil {
		t.Fatal(err)
	}
	rep := DetectDeadlock(sink.Trace())
	if rep.HasDeadlock() || len(rep.Blocked) != 0 || len(rep.Hopeless) != 0 {
		t.Fatalf("clean trace flagged: %s", rep)
	}
}

func orderOf(t *testing.T, tr *trace.Trace) *causality.Order {
	t.Helper()
	o, err := causality.New(tr)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestDetectRacesWildcardFanIn(t *testing.T) {
	// Two workers race to a wildcard receive.
	sink := instr.NewMemorySink(3)
	in := instr.New(3, sink, instr.LevelAll)
	if err := in.Run(mp.Config{NumRanks: 3}, func(c *instr.Ctx) {
		if c.Rank() == 0 {
			c.Recv(mp.AnySource, 0)
			c.Recv(mp.AnySource, 0)
		} else {
			c.SendInt64s(0, 0, []int64{int64(c.Rank())})
		}
	}); err != nil {
		t.Fatal(err)
	}
	races := DetectRaces(orderOf(t, sink.Trace()))
	if len(races) == 0 {
		t.Fatal("fan-in race not detected")
	}
	// The first wildcard receive must race between the two sends.
	first := races[0]
	if len(first.Candidates) < 1 {
		t.Fatalf("race has no alternatives: %+v", first)
	}
	if !strings.Contains(first.String(), "racing receive") {
		t.Errorf("race string: %s", first)
	}
}

func TestNoRacesInDeterministicProgram(t *testing.T) {
	// Specific-source receives in a pipeline: no wildcard, no race.
	sink := instr.NewMemorySink(3)
	in := instr.New(3, sink, instr.LevelAll)
	if err := in.Run(mp.Config{NumRanks: 3}, func(c *instr.Ctx) {
		switch c.Rank() {
		case 0:
			c.Send(1, 0, []byte("a"))
		case 1:
			c.Recv(0, 0)
			c.Send(2, 0, []byte("b"))
		case 2:
			c.Recv(1, 0)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if races := DetectRaces(orderOf(t, sink.Trace())); len(races) != 0 {
		t.Fatalf("deterministic program flagged: %v", races)
	}
}

func TestNoRaceWhenWildcardHasSingleSender(t *testing.T) {
	// A wildcard receive with only one possible sender is not a race.
	sink := instr.NewMemorySink(2)
	in := instr.New(2, sink, instr.LevelAll)
	if err := in.Run(mp.Config{NumRanks: 2}, func(c *instr.Ctx) {
		if c.Rank() == 0 {
			c.Recv(mp.AnySource, 0)
		} else {
			c.Send(0, 0, []byte("only"))
		}
	}); err != nil {
		t.Fatal(err)
	}
	if races := DetectRaces(orderOf(t, sink.Trace())); len(races) != 0 {
		t.Fatalf("single-sender wildcard flagged: %v", races)
	}
}

func TestActionGraph(t *testing.T) {
	tr := trace.New(1)
	var m uint64
	var clk int64
	add := func(kind trace.Kind, name string, peer int) {
		m++
		clk++
		rec := trace.Record{Kind: kind, Rank: 0, Marker: m, Start: clk, End: clk, Name: name}
		switch kind {
		case trace.KindSend:
			rec.Src, rec.Dst, rec.MsgID = 0, peer, m
		case trace.KindRecv:
			rec.Src, rec.Dst, rec.MsgID = peer, 0, m
		}
		tr.MustAppend(rec)
	}
	add(trace.KindFuncEntry, "main", 0)
	add(trace.KindFuncEntry, "distribute", 0)
	add(trace.KindSend, "", 1)
	add(trace.KindSend, "", 1)
	add(trace.KindSend, "", 2)
	add(trace.KindFuncExit, "distribute", 0)
	add(trace.KindRecv, "", 1)
	add(trace.KindFuncExit, "main", 0)

	g := BuildActionGraph(tr)
	dist, ok := g.Lookup(0, "distribute")
	if !ok {
		t.Fatal("distribute summary missing")
	}
	// Consecutive sends to rank 1 fold into one action with count 2.
	if len(dist.Actions) != 2 || dist.Actions[0].Count != 2 || dist.Actions[0].Target != "->1" {
		t.Fatalf("distribute actions = %+v", dist.Actions)
	}
	mainFA, ok := g.Lookup(0, "main")
	if !ok {
		t.Fatal("main summary missing")
	}
	if len(mainFA.Actions) != 2 || mainFA.Actions[0].Kind != ActionCall || mainFA.Actions[1].Kind != ActionRecv {
		t.Fatalf("main actions = %+v", mainFA.Actions)
	}
	txt := g.Text()
	if !strings.Contains(txt, "send ->1 x2") || !strings.Contains(txt, "call distribute") {
		t.Errorf("action graph text:\n%s", txt)
	}
	if _, ok := g.Lookup(5, "nope"); ok {
		t.Error("bogus lookup succeeded")
	}
	if ActionSend.String() != "send" || ActionKind(99).String() == "" {
		t.Error("action kind names")
	}
}

func TestAnalyzeTrafficFindsOutlier(t *testing.T) {
	// 1 master + 6 workers receiving 2 messages each, except one receives 1.
	tr := trace.New(8)
	var msg uint64
	clk := make([]int64, 8)
	marker := make([]uint64, 8)
	emit := func(kind trace.Kind, rank, peer int) {
		msg++
		clk[rank]++
		marker[rank]++
		rec := trace.Record{Kind: kind, Rank: rank, Marker: marker[rank], Start: clk[rank], End: clk[rank], MsgID: msg}
		if kind == trace.KindSend {
			rec.Src, rec.Dst = rank, peer
		} else {
			rec.Src, rec.Dst = peer, rank
		}
		tr.MustAppend(rec)
	}
	for w := 1; w < 8; w++ {
		emit(trace.KindSend, 0, w)
		emit(trace.KindRecv, w, 0)
		if w != 7 {
			emit(trace.KindSend, 0, w)
			emit(trace.KindRecv, w, 0)
		}
		emit(trace.KindSend, w, 0)
		emit(trace.KindRecv, 0, w)
	}
	rep := AnalyzeTraffic(tr)
	found := false
	for _, ir := range rep.Odd {
		if ir.Rank == 7 && ir.Recvs == 1 && ir.PeerRecvs == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("rank 7 not flagged:\n%s", rep)
	}
	if !strings.Contains(rep.String(), "IRREGULAR") {
		t.Errorf("report:\n%s", rep)
	}
}

func TestAnalyzeTrafficSymmetricClean(t *testing.T) {
	tr := trace.New(4)
	var msg uint64
	marker := make([]uint64, 4)
	clk := make([]int64, 4)
	for r := 0; r < 4; r++ {
		dst := (r + 1) % 4
		msg++
		marker[r]++
		clk[r]++
		tr.MustAppend(trace.Record{Kind: trace.KindSend, Rank: r, Marker: marker[r], Start: clk[r], End: clk[r], Src: r, Dst: dst, MsgID: msg})
	}
	for r := 0; r < 4; r++ {
		src := (r + 3) % 4
		marker[r]++
		clk[r] += 10
		tr.MustAppend(trace.Record{Kind: trace.KindRecv, Rank: r, Marker: marker[r], Start: clk[r], End: clk[r], Src: src, Dst: r, MsgID: uint64(src + 1)})
	}
	rep := AnalyzeTraffic(tr)
	if len(rep.Odd) != 0 {
		t.Fatalf("symmetric traffic flagged: %+v", rep.Odd)
	}
	if !strings.Contains(rep.String(), "no irregularities") {
		t.Errorf("report:\n%s", rep)
	}
}
