package analysis

import (
	"fmt"
	"sort"
	"strings"

	"tracedbg/internal/causality"
	"tracedbg/internal/trace"
)

// Race describes one racing receive: a wildcard receive for which more than
// one send could have matched, so a different execution could deliver a
// different message (after Netzer et al. [15], which the paper's race
// detection feature builds on).
type Race struct {
	Recv       trace.EventID
	Matched    trace.EventID   // the send it actually received
	Candidates []trace.EventID // other sends that could have matched
}

// String renders one race.
func (r Race) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "racing receive %v (matched send %v, %d alternative(s):", r.Recv, r.Matched, len(r.Candidates))
	for _, c := range r.Candidates {
		fmt.Fprintf(&sb, " %v", c)
	}
	sb.WriteString(")")
	return sb.String()
}

// DetectRaces finds racing wildcard receives. A send s' is an alternative
// candidate for wildcard receive r matched to s when:
//
//   - s' targets r's rank with the same tag (conservative for AnyTag),
//   - s' is not the matched send,
//   - r does not happen before s' (the message could have existed by then),
//   - the receive that actually consumed s' (if any) does not happen before
//     r (otherwise s' was necessarily gone in every execution).
//
// This is a conservative over-approximation of "could have been delivered
// to r instead"; deterministic programs produce no races under it.
func DetectRaces(o *causality.Order) []Race {
	tr := o.Trace()
	type sendInfo struct {
		id  trace.EventID
		rec *trace.Record
	}
	sendsTo := make(map[int][]sendInfo) // dst -> sends
	for r := 0; r < tr.NumRanks(); r++ {
		for i := range tr.Rank(r) {
			rec := &tr.Rank(r)[i]
			if rec.Kind == trace.KindSend {
				sendsTo[rec.Dst] = append(sendsTo[rec.Dst], sendInfo{trace.EventID{Rank: r, Index: i}, rec})
			}
		}
	}
	var races []Race
	for r := 0; r < tr.NumRanks(); r++ {
		for i := range tr.Rank(r) {
			rec := &tr.Rank(r)[i]
			if rec.Kind != trace.KindRecv || !rec.WasWildcard {
				continue
			}
			rid := trace.EventID{Rank: r, Index: i}
			matched, ok := o.MatchedSend(rid)
			if !ok {
				continue
			}
			var cands []trace.EventID
			for _, s := range sendsTo[r] {
				if s.id == matched || s.rec.Tag != rec.Tag {
					continue
				}
				if o.HappensBefore(rid, s.id) {
					continue // sent only after this receive completed
				}
				if consumer, ok := o.MatchedRecv(s.id); ok && o.HappensBefore(consumer, rid) {
					continue // consumed before r in every execution
				}
				cands = append(cands, s.id)
			}
			if len(cands) > 0 {
				sort.Slice(cands, func(a, b int) bool { return cands[a].Less(cands[b]) })
				races = append(races, Race{Recv: rid, Matched: matched, Candidates: cands})
			}
		}
	}
	sort.Slice(races, func(a, b int) bool { return races[a].Recv.Less(races[b].Recv) })
	return races
}
