package analysis

import (
	"fmt"
	"sort"
	"strings"

	"tracedbg/internal/trace"
)

// Irregularity flags a rank whose message traffic deviates from the
// behaviour of its peer group — the observation that exposes Figure 6's bug
// ("processes 1-6 each receive 2 messages and process 7 only receives 1").
type Irregularity struct {
	Rank      int
	Sends     int
	Recvs     int
	PeerSends int // the majority signature it deviates from
	PeerRecvs int
	Peers     []int // ranks exhibiting the majority signature
}

// String renders one irregularity.
func (ir Irregularity) String() string {
	return fmt.Sprintf("rank %d sent %d / received %d messages; %d peer(s) %v sent %d / received %d",
		ir.Rank, ir.Sends, ir.Recvs, len(ir.Peers), ir.Peers, ir.PeerSends, ir.PeerRecvs)
}

// TrafficReport summarizes per-rank message counts and the outliers.
type TrafficReport struct {
	Sends []int
	Recvs []int
	Odd   []Irregularity
}

// String renders the report.
func (r *TrafficReport) String() string {
	var sb strings.Builder
	sb.WriteString("message traffic per rank:\n")
	for rank := range r.Sends {
		fmt.Fprintf(&sb, "  rank %d: %d sent, %d received\n", rank, r.Sends[rank], r.Recvs[rank])
	}
	if len(r.Odd) == 0 {
		sb.WriteString("no irregularities\n")
	}
	for _, ir := range r.Odd {
		fmt.Fprintf(&sb, "IRREGULAR: %s\n", ir.String())
	}
	return sb.String()
}

// AnalyzeTraffic counts completed sends and receives per rank and flags
// ranks whose (sends, recvs) signature is in the minority among ranks
// sharing the majority signature. Ranks with entirely unique roles (for
// example a master) form their own signature group; a group is flagged only
// when a strictly larger group exists, so symmetric workers expose the
// deviant member.
func AnalyzeTraffic(tr *trace.Trace) *TrafficReport {
	n := tr.NumRanks()
	rep := &TrafficReport{Sends: make([]int, n), Recvs: make([]int, n)}
	for rank := 0; rank < n; rank++ {
		for i := range tr.Rank(rank) {
			switch tr.Rank(rank)[i].Kind {
			case trace.KindSend:
				rep.Sends[rank]++
			case trace.KindRecv:
				rep.Recvs[rank]++
			}
		}
	}
	classifyTraffic(rep)
	return rep
}

// classifyTraffic fills rep.Odd from the per-rank counts: signature-group
// the ranks and flag every group strictly smaller than the largest.
func classifyTraffic(rep *TrafficReport) {
	n := len(rep.Sends)
	type sig struct{ s, r int }
	groups := make(map[sig][]int)
	for rank := 0; rank < n; rank++ {
		k := sig{rep.Sends[rank], rep.Recvs[rank]}
		groups[k] = append(groups[k], rank)
	}
	// Find the largest group (ties broken toward the lexicographically
	// smaller signature for determinism).
	var major sig
	majorLen := -1
	var sigs []sig
	for k := range groups {
		sigs = append(sigs, k)
	}
	sort.Slice(sigs, func(i, j int) bool {
		if sigs[i].s != sigs[j].s {
			return sigs[i].s < sigs[j].s
		}
		return sigs[i].r < sigs[j].r
	})
	for _, k := range sigs {
		if len(groups[k]) > majorLen {
			major, majorLen = k, len(groups[k])
		}
	}
	for _, k := range sigs {
		if k == major || len(groups[k]) >= majorLen {
			continue
		}
		for _, rank := range groups[k] {
			rep.Odd = append(rep.Odd, Irregularity{
				Rank: rank, Sends: k.s, Recvs: k.r,
				PeerSends: major.s, PeerRecvs: major.r,
				Peers: append([]int(nil), groups[major]...),
			})
		}
	}
	sort.Slice(rep.Odd, func(i, j int) bool { return rep.Odd[i].Rank < rep.Odd[j].Rank })
}
