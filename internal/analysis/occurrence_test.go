package analysis_test

import (
	"path/filepath"
	"testing"

	"tracedbg/internal/analysis"
	"tracedbg/internal/store"
	"tracedbg/internal/trace"
)

// occTrace lays down a known occurrence pattern: rank 0 hits app.go:10 at
// ordinals 0, 2, 4 and app.go:20 at ordinal 1; rank 1 hits app.go:10 once.
func occTrace() *trace.Trace {
	tr := trace.New(2)
	add := func(rank, line int, start int64, marker uint64) {
		tr.MustAppend(trace.Record{Kind: trace.KindCompute, Rank: rank, Marker: marker,
			Loc:  trace.Location{File: "app.go", Line: line, Func: "f"},
			Name: "step", Start: start, End: start + 1})
	}
	add(0, 10, 0, 1)
	add(0, 20, 2, 2)
	add(0, 10, 4, 3)
	add(0, 10, 6, 4)
	add(1, 10, 1, 1)
	return tr
}

func TestOccurrenceAt(t *testing.T) {
	tr := occTrace()
	cases := []struct {
		line, rank, k int
		want          int // expected Index; -1 = ErrNotFound
	}{
		{10, 0, 0, 0},
		{10, 0, 1, 2},
		{10, 0, 2, 3},
		{10, 0, 3, -1},
		{20, 0, 0, 1},
		{10, 1, 0, 0},
		{10, 1, 1, -1},
		{30, 0, 0, -1},
		{10, 5, 0, -1},
		{10, 0, -1, -1},
	}
	check := func(label string, got trace.EventID, err error, rank, want int) {
		t.Helper()
		if want < 0 {
			if err != trace.ErrNotFound {
				t.Fatalf("%s: err = %v, want ErrNotFound", label, err)
			}
			return
		}
		if err != nil || got != (trace.EventID{Rank: rank, Index: want}) {
			t.Fatalf("%s: got %v, %v; want %d/%d", label, got, err, rank, want)
		}
	}
	for _, c := range cases {
		got, err := analysis.OccurrenceAt(tr, "app.go", c.line, c.rank, c.k)
		check("trace", got, err, c.rank, c.want)
	}

	// Same answers through an indexed store (posting lists) and an
	// unindexed one (scan fallback).
	dir := t.TempDir()
	indexed := filepath.Join(dir, "i.trace")
	if err := trace.WriteFileAtomic(indexed, tr, trace.WriterOptions{BuildIndex: true}); err != nil {
		t.Fatal(err)
	}
	plain := filepath.Join(dir, "p.trace")
	if err := trace.WriteFileAtomic(plain, tr, trace.WriterOptions{}); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{indexed, plain} {
		st, err := store.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cases {
			got, err := analysis.OccurrenceAtStore(st, "app.go", c.line, c.rank, c.k)
			check(filepath.Base(path), got, err, c.rank, c.want)
		}
	}
}
