package analysis

// Occurrence resolution: "the k-th time rank R executed file:line" → an
// EventID. This is the primitive behind re-execution breakpoints in
// trace-driven debugging — the debugger replays to a specific dynamic
// instance of a static location, not just the first. Over an indexed store
// the answer comes straight from the sidecar's location posting lists
// without decoding any records.

import (
	"tracedbg/internal/store"
	"tracedbg/internal/trace"
)

// OccurrenceAt returns the EventID of the k-th (0-based) record of the
// rank at file:line in a materialized trace. trace.ErrNotFound when the
// location executed fewer than k+1 times on the rank.
func OccurrenceAt(tr *trace.Trace, file string, line, rank, k int) (trace.EventID, error) {
	if k < 0 || rank < 0 || rank >= tr.NumRanks() {
		return trace.EventID{}, trace.ErrNotFound
	}
	seen := 0
	for i, r := range tr.Rank(rank) {
		if r.Loc.File != file || r.Loc.Line != line {
			continue
		}
		if seen == k {
			return trace.EventID{Rank: rank, Index: i}, nil
		}
		seen++
	}
	return trace.EventID{}, trace.ErrNotFound
}

// OccurrenceAtStore is OccurrenceAt over an opened store: answered from
// the persistent index's posting lists when sidecars validated, by a
// metric-counted scan otherwise.
func OccurrenceAtStore(st *store.Store, file string, line, rank, k int) (trace.EventID, error) {
	return st.Indexes().OccurrenceAt(file, line, rank, k)
}
