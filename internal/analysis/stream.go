package analysis

import (
	"io"

	"tracedbg/internal/trace"
)

// The streaming variants consume a record cursor (store.All, or any other
// trace.RecordCursor) instead of a materialized trace. Both analyses are
// order-independent counts, so one pass in any record order produces the
// same report as the materialized builders — in O(chunk) memory.

// AnalyzeTrafficStream is AnalyzeTraffic over a record cursor. The cursor
// is drained but not closed.
func AnalyzeTrafficStream(numRanks int, c trace.RecordCursor) (*TrafficReport, error) {
	rep := &TrafficReport{Sends: make([]int, numRanks), Recvs: make([]int, numRanks)}
	for {
		rec, err := c.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if rec.Rank < 0 || rec.Rank >= numRanks {
			continue
		}
		switch rec.Kind {
		case trace.KindSend:
			rep.Sends[rec.Rank]++
		case trace.KindRecv:
			rep.Recvs[rec.Rank]++
		}
	}
	classifyTraffic(rep)
	return rep, nil
}

// BuildCommMatrixStream is BuildCommMatrix over a record cursor. The
// cursor is drained but not closed.
func BuildCommMatrixStream(numRanks int, c trace.RecordCursor) (*CommMatrix, error) {
	m := &CommMatrix{N: numRanks, Msgs: make([][]int, numRanks), Bytes: make([][]int64, numRanks)}
	for i := range m.Msgs {
		m.Msgs[i] = make([]int, numRanks)
		m.Bytes[i] = make([]int64, numRanks)
	}
	for {
		rec, err := c.Next()
		if err == io.EOF {
			return m, nil
		}
		if err != nil {
			return nil, err
		}
		if rec.Kind != trace.KindSend {
			continue
		}
		if rec.Src < 0 || rec.Src >= numRanks || rec.Dst < 0 || rec.Dst >= numRanks {
			continue
		}
		m.Msgs[rec.Src][rec.Dst]++
		m.Bytes[rec.Src][rec.Dst] += int64(rec.Bytes)
	}
}
