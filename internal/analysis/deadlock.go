package analysis

import (
	"fmt"
	"strings"

	"tracedbg/internal/mp"
	"tracedbg/internal/trace"
)

// WaitEdge is one rank's blocked dependency: From waits for On.
// On == mp.AnySource means the rank would accept any sender.
type WaitEdge struct {
	From int
	On   int
	Op   string
	Tag  int
	Loc  trace.Location
}

// DeadlockReport describes circular wait dependencies found in a trace of a
// stalled execution (the paper: "the debugger is also able to detect
// deadlocks due to circular dependency in sends or receives").
type DeadlockReport struct {
	Blocked []WaitEdge
	// Cycles lists rank cycles: each is a sequence r0 -> r1 -> ... -> r0.
	Cycles [][]int
	// Hopeless lists blocked ranks whose awaited peer finished or is not
	// itself blocked on them (no cycle, but the wait can never complete).
	Hopeless []WaitEdge
}

// HasDeadlock reports whether any circular dependency was found.
func (r *DeadlockReport) HasDeadlock() bool { return len(r.Cycles) > 0 }

// String renders the report.
func (r *DeadlockReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "deadlock analysis: %d blocked rank(s), %d cycle(s)\n", len(r.Blocked), len(r.Cycles))
	for _, c := range r.Cycles {
		sb.WriteString("  cycle: ")
		for i, rank := range c {
			if i > 0 {
				sb.WriteString(" -> ")
			}
			fmt.Fprintf(&sb, "%d", rank)
		}
		fmt.Fprintf(&sb, " -> %d\n", c[0])
	}
	for _, h := range r.Hopeless {
		fmt.Fprintf(&sb, "  rank %d waits on %d (%s tag=%d) which will never respond\n", h.From, h.On, h.Op, h.Tag)
	}
	return sb.String()
}

// DetectDeadlock analyzes the blocked operations recorded in a trace (the
// KindBlocked records written when a stall aborts the world) and finds
// circular wait dependencies among them.
func DetectDeadlock(tr *trace.Trace) *DeadlockReport {
	rep := &DeadlockReport{}
	waits := make(map[int]WaitEdge) // one blocked op per rank (single-threaded)
	for r := 0; r < tr.NumRanks(); r++ {
		for i := range tr.Rank(r) {
			rec := &tr.Rank(r)[i]
			if rec.Kind != trace.KindBlocked {
				continue
			}
			e := WaitEdge{From: r, Op: rec.Name, Tag: rec.Tag, Loc: rec.Loc}
			// Receive-like blocks wait on Src; send-like blocks wait on Dst.
			if strings.Contains(rec.Name, "Send") {
				e.On = rec.Dst
			} else {
				e.On = rec.Src
			}
			waits[r] = e
			rep.Blocked = append(rep.Blocked, e)
		}
	}

	// Follow the wait chain from each blocked rank; a revisit of a rank on
	// the current path is a cycle. Wildcard waits cannot be followed.
	inCycle := make(map[int]bool)
	for start := range waits {
		if inCycle[start] {
			continue
		}
		path := []int{}
		onPath := make(map[int]int)
		cur := start
		for {
			e, blocked := waits[cur]
			if !blocked || e.On == mp.AnySource || e.On == trace.NoRank {
				break
			}
			if pos, seen := onPath[cur]; seen {
				cycle := append([]int(nil), path[pos:]...)
				// Canonical rotation: smallest rank first.
				minI := 0
				for i, v := range cycle {
					if v < cycle[minI] {
						minI = i
					}
				}
				canon := append(append([]int(nil), cycle[minI:]...), cycle[:minI]...)
				dup := false
				for _, c := range rep.Cycles {
					if equalInts(c, canon) {
						dup = true
						break
					}
				}
				if !dup {
					rep.Cycles = append(rep.Cycles, canon)
				}
				for _, v := range canon {
					inCycle[v] = true
				}
				break
			}
			onPath[cur] = len(path)
			path = append(path, cur)
			cur = e.On
		}
	}

	for _, e := range rep.Blocked {
		if inCycle[e.From] {
			continue
		}
		if e.On == mp.AnySource || e.On == trace.NoRank {
			continue
		}
		if _, peerBlocked := waits[e.On]; !peerBlocked {
			// The awaited rank is not blocked: it finished without
			// satisfying this wait.
			rep.Hopeless = append(rep.Hopeless, e)
		}
	}
	return rep
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
