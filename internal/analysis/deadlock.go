package analysis

import (
	"fmt"
	"strings"

	"tracedbg/internal/mp"
	"tracedbg/internal/trace"
)

// WaitEdge is one rank's blocked dependency: From waits for On.
// On == mp.AnySource means the rank would accept any sender.
type WaitEdge struct {
	From  int
	On    int
	Op    string
	Tag   int
	Loc   trace.Location
	Fault string // fault annotation on the blocked record itself, if any
}

// DeadlockReport describes circular wait dependencies found in a trace of a
// stalled execution (the paper: "the debugger is also able to detect
// deadlocks due to circular dependency in sends or receives").
type DeadlockReport struct {
	Blocked []WaitEdge
	// Cycles lists rank cycles: each is a sequence r0 -> r1 -> ... -> r0.
	Cycles [][]int
	// Hopeless lists blocked ranks whose awaited peer finished or is not
	// itself blocked on them (no cycle, but the wait can never complete).
	Hopeless []WaitEdge
	// InjectedDrops lists blocked operations explained by an injected
	// message drop recorded in the history: the awaited message (or the
	// blocked rendezvous send itself) was removed from the wire by fault
	// injection. These hangs are artifacts of the fault plan, not program
	// bugs.
	InjectedDrops []WaitEdge
	// CrashedPeers lists blocked operations waiting on a rank that the
	// history records as crashed (injected crash or Proc.Crash).
	CrashedPeers []WaitEdge
	// GapObscured lists blocked operations whose verdict cannot be trusted
	// because the salvaged history has a quarantined gap touching the
	// awaited rank: the event that would have satisfied the wait may have
	// been LOST with the damaged chunk, not absent from the execution. Such
	// edges are withheld from Hopeless rather than misreported.
	GapObscured []WaitEdge
}

// HasDeadlock reports whether any circular dependency was found.
func (r *DeadlockReport) HasDeadlock() bool { return len(r.Cycles) > 0 }

// FaultInduced reports whether any blocked operation is explained by an
// injected fault rather than program logic.
func (r *DeadlockReport) FaultInduced() bool {
	return len(r.InjectedDrops) > 0 || len(r.CrashedPeers) > 0
}

// String renders the report.
func (r *DeadlockReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "deadlock analysis: %d blocked rank(s), %d cycle(s)\n", len(r.Blocked), len(r.Cycles))
	for _, c := range r.Cycles {
		sb.WriteString("  cycle: ")
		for i, rank := range c {
			if i > 0 {
				sb.WriteString(" -> ")
			}
			fmt.Fprintf(&sb, "%d", rank)
		}
		fmt.Fprintf(&sb, " -> %d\n", c[0])
	}
	for _, h := range r.Hopeless {
		fmt.Fprintf(&sb, "  rank %d waits on %d (%s tag=%d) which will never respond\n", h.From, h.On, h.Op, h.Tag)
	}
	for _, h := range r.InjectedDrops {
		fmt.Fprintf(&sb, "  rank %d hangs in %s because an injected fault dropped the message (not a program bug)\n", h.From, h.Op)
	}
	for _, h := range r.CrashedPeers {
		fmt.Fprintf(&sb, "  rank %d waits on rank %d, which crashed (injected fault)\n", h.From, h.On)
	}
	for _, h := range r.GapObscured {
		fmt.Fprintf(&sb, "  rank %d waits on rank %d, whose events may be lost in a damaged trace span (verdict withheld)\n", h.From, h.On)
	}
	return sb.String()
}

// DetectDeadlock analyzes the blocked operations recorded in a trace (the
// KindBlocked records written when a stall aborts the world) and finds
// circular wait dependencies among them.
func DetectDeadlock(tr *trace.Trace) *DeadlockReport {
	rep := &DeadlockReport{}
	waits := make(map[int]WaitEdge) // one blocked op per rank (single-threaded)
	var dropped []droppedSend
	crashed := make(map[int]bool)
	for r := 0; r < tr.NumRanks(); r++ {
		for i := range tr.Rank(r) {
			rec := &tr.Rank(r)[i]
			switch rec.Kind {
			case trace.KindSend:
				if strings.Contains(rec.Fault, trace.FaultDrop) {
					dropped = append(dropped, droppedSend{src: r, dst: rec.Dst, tag: rec.Tag})
				}
				continue
			case trace.KindFault:
				if rec.Fault == trace.FaultCrash {
					crashed[r] = true
				}
				continue
			case trace.KindBlocked:
				// Fall through to wait-edge construction.
			default:
				continue
			}
			e := WaitEdge{From: r, Op: rec.Name, Tag: rec.Tag, Loc: rec.Loc, Fault: rec.Fault}
			// Receive-like blocks wait on Src; send-like blocks wait on Dst.
			if strings.Contains(rec.Name, "Send") {
				e.On = rec.Dst
			} else {
				e.On = rec.Src
			}
			waits[r] = e
			rep.Blocked = append(rep.Blocked, e)
		}
	}

	// Classify fault-induced hangs before looking for cycles: an edge that
	// would have been satisfied but for an injected drop or a crashed peer
	// is not a genuine wait dependency, so it cannot participate in a
	// deadlock cycle. (A ring where one hop is dropped stalls with a
	// structurally circular wait graph — but the cause is the fault, not a
	// circular dependency the programmer wrote.)
	const (
		byDrop  = "drop"
		byCrash = "crash"
	)
	faultCause := make(map[int]string)
	for r, e := range waits {
		sendLike := strings.Contains(e.Op, "Send")
		switch {
		case strings.Contains(e.Fault, trace.FaultDrop):
			// A blocked rendezvous send whose own message was dropped: the
			// receiver can never consume it.
			faultCause[r] = byDrop
		case !sendLike && dropExplains(e, dropped):
			faultCause[r] = byDrop
		case e.On != mp.AnySource && e.On != trace.NoRank && crashed[e.On]:
			faultCause[r] = byCrash
		}
	}

	// Follow the wait chain from each blocked rank; a revisit of a rank on
	// the current path is a cycle. Wildcard and fault-explained waits
	// cannot be followed.
	inCycle := make(map[int]bool)
	for start := range waits {
		if inCycle[start] {
			continue
		}
		path := []int{}
		onPath := make(map[int]int)
		cur := start
		for {
			e, blocked := waits[cur]
			if !blocked || e.On == mp.AnySource || e.On == trace.NoRank || faultCause[cur] != "" {
				break
			}
			if pos, seen := onPath[cur]; seen {
				cycle := append([]int(nil), path[pos:]...)
				// Canonical rotation: smallest rank first.
				minI := 0
				for i, v := range cycle {
					if v < cycle[minI] {
						minI = i
					}
				}
				canon := append(append([]int(nil), cycle[minI:]...), cycle[:minI]...)
				dup := false
				for _, c := range rep.Cycles {
					if equalInts(c, canon) {
						dup = true
						break
					}
				}
				if !dup {
					rep.Cycles = append(rep.Cycles, canon)
				}
				for _, v := range canon {
					inCycle[v] = true
				}
				break
			}
			onPath[cur] = len(path)
			path = append(path, cur)
			cur = e.On
		}
	}

	// Report the classifications.
	for _, e := range rep.Blocked {
		switch faultCause[e.From] {
		case byDrop:
			rep.InjectedDrops = append(rep.InjectedDrops, e)
			continue
		case byCrash:
			rep.CrashedPeers = append(rep.CrashedPeers, e)
			continue
		}
		if inCycle[e.From] || e.On == mp.AnySource || e.On == trace.NoRank {
			continue
		}
		if _, peerBlocked := waits[e.On]; !peerBlocked {
			// The awaited rank is not blocked: it finished without
			// satisfying this wait — unless the history lost events of
			// that rank to trace damage, in which case the satisfying
			// operation may simply be missing from the salvage.
			if tr.GapTouches(e.On) {
				rep.GapObscured = append(rep.GapObscured, e)
			} else {
				rep.Hopeless = append(rep.Hopeless, e)
			}
		}
	}
	return rep
}

// droppedSend is a send the history records as removed by fault injection.
type droppedSend struct{ src, dst, tag int }

// dropExplains reports whether a recorded dropped send could have satisfied
// the blocked receive, honouring its wildcard source/tag specifiers.
func dropExplains(e WaitEdge, dropped []droppedSend) bool {
	for _, d := range dropped {
		if d.dst != e.From {
			continue
		}
		if e.On != mp.AnySource && e.On != d.src {
			continue
		}
		if e.Tag != mp.AnyTag && e.Tag != d.tag {
			continue
		}
		return true
	}
	return false
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
