package analysis

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"tracedbg/internal/trace"
)

// Monitor is the incremental (always-on) form of the §4.4 history analyses:
// it consumes a live record stream one record at a time — a Store.Tail
// cursor, an instrumentation sink — and keeps the traffic counts, the
// unmatched send/receive lists, stopline crossings, and a debounced deadlock
// verdict current while the run is still executing. Every analysis reuses
// the post-mortem implementation (MatchTracker online, DetectDeadlock over
// the accumulated history), so a monitor that has seen the whole stream
// reports exactly what the post-mortem run of the finalized trace reports —
// including the fault-aware classification of blocked operations.
type Monitor struct {
	mu       sync.Mutex
	tr       *trace.Trace
	mt       *MatchTracker
	stopline int64

	sends, recvs []int
	crossedAt    []int64 // first End >= stopline per rank; -1 = not yet
	newCross     []int   // ranks that crossed since the last Crossings call

	lastDeadlockLen int
	deadlock        *DeadlockReport
}

// NewMonitor creates a monitor for numRanks ranks. stopline < 0 disables
// stopline tracking.
func NewMonitor(numRanks int, stopline int64) *Monitor {
	crossed := make([]int64, numRanks)
	for i := range crossed {
		crossed[i] = -1
	}
	return &Monitor{
		tr:              trace.New(numRanks),
		mt:              NewMatchTracker(),
		stopline:        stopline,
		sends:           make([]int, numRanks),
		recvs:           make([]int, numRanks),
		crossedAt:       crossed,
		lastDeadlockLen: -1,
	}
}

// Observe feeds one record. It is safe for concurrent use, though a tail
// cursor delivers serially. Records must arrive in per-rank start order
// (what any trace cursor yields); a violation is reported by the underlying
// trace append and the record is dropped.
func (m *Monitor) Observe(rec *trace.Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, err := m.tr.Append(*rec); err != nil {
		return err
	}
	m.mt.Emit(rec)
	if rec.Rank >= 0 && rec.Rank < len(m.sends) {
		switch rec.Kind {
		case trace.KindSend:
			m.sends[rec.Rank]++
		case trace.KindRecv:
			m.recvs[rec.Rank]++
		}
		if m.stopline >= 0 && m.crossedAt[rec.Rank] < 0 && rec.End >= m.stopline {
			m.crossedAt[rec.Rank] = rec.End
			m.newCross = append(m.newCross, rec.Rank)
		}
	}
	return nil
}

// Records returns how many records the monitor has absorbed.
func (m *Monitor) Records() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tr.Len()
}

// Trace exposes the accumulated history (for a final full analysis pass).
// The monitor keeps appending to it; callers should only use it after the
// stream has ended.
func (m *Monitor) Trace() *trace.Trace {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tr
}

// Traffic snapshots the incremental per-rank counts through the same
// irregularity classification as the post-mortem AnalyzeTraffic.
func (m *Monitor) Traffic() *TrafficReport {
	m.mu.Lock()
	rep := &TrafficReport{
		Sends: append([]int(nil), m.sends...),
		Recvs: append([]int(nil), m.recvs...),
	}
	m.mu.Unlock()
	classifyTraffic(rep)
	return rep
}

// Unmatched returns the current unmatched send and receive counts.
func (m *Monitor) Unmatched() (sends, recvs int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.mt.UnmatchedSends()), len(m.mt.UnmatchedRecvs())
}

// MatchReport renders the unmatched lists (the online §4.4 lists).
func (m *Monitor) MatchReport() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.mt.Report()
}

// Crossings drains the stopline crossings observed since the previous call:
// each entry is a rank that has just reached the stopline, in observation
// order. CrossedAt reports the crossing time of a rank, or -1.
func (m *Monitor) Crossings() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := m.newCross
	m.newCross = nil
	return out
}

// CrossedAt returns the virtual time at which rank first crossed the
// stopline, or -1 if it has not (or stopline tracking is off).
func (m *Monitor) CrossedAt(rank int) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if rank < 0 || rank >= len(m.crossedAt) {
		return -1
	}
	return m.crossedAt[rank]
}

// AllCrossed reports whether every rank has crossed the stopline.
func (m *Monitor) AllCrossed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopline < 0 || len(m.crossedAt) == 0 {
		return false
	}
	for _, at := range m.crossedAt {
		if at < 0 {
			return false
		}
	}
	return true
}

// CheckDeadlock runs the full fault-aware deadlock detection over the
// accumulated history, debounced: the (potentially quadratic) detector only
// re-runs when at least minNewRecords records arrived since the previous
// check; otherwise the cached report is returned. minNewRecords <= 0 always
// re-runs.
func (m *Monitor) CheckDeadlock(minNewRecords int) *DeadlockReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.tr.Len()
	if m.deadlock != nil && m.lastDeadlockLen >= 0 && n-m.lastDeadlockLen < minNewRecords {
		return m.deadlock
	}
	m.deadlock = DetectDeadlock(m.tr)
	m.lastDeadlockLen = n
	return m.deadlock
}

// Status renders a one-line live summary: record count, unmatched totals,
// irregular ranks, stopline progress.
func (m *Monitor) Status() string {
	traffic := m.Traffic()
	us, ur := m.Unmatched()
	m.mu.Lock()
	n := m.tr.Len()
	var crossed []int
	if m.stopline >= 0 {
		for r, at := range m.crossedAt {
			if at >= 0 {
				crossed = append(crossed, r)
			}
		}
	}
	stopline := m.stopline
	m.mu.Unlock()

	var sb strings.Builder
	fmt.Fprintf(&sb, "%d records, %d unmatched send(s), %d unmatched recv(s)", n, us, ur)
	if len(traffic.Odd) > 0 {
		ranks := make([]int, 0, len(traffic.Odd))
		for _, ir := range traffic.Odd {
			ranks = append(ranks, ir.Rank)
		}
		sort.Ints(ranks)
		fmt.Fprintf(&sb, ", irregular ranks %v", ranks)
	}
	if stopline >= 0 {
		fmt.Fprintf(&sb, ", stopline %d crossed by %d/%d ranks", stopline, len(crossed), len(m.crossedAt))
	}
	return sb.String()
}
