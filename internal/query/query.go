// Package query implements a small expression language for searching
// execution histories — the programmable query interface that trace-based
// debugging toolkits expose (cf. the integrated toolkit of LeBlanc,
// Mellor-Crummey & Fowler cited by the paper). Queries compile to record
// predicates and run over traces:
//
//	kind = send && dst = 7 && bytes > 100
//	(rank = 0 || rank = 1) && name =~ "Matr"
//	kind = recv && wildcard && tag != 3
//
// Fields: kind, rank, src, dst, tag, bytes, marker, msgid, start, end,
// dur, line, name, func, file, wildcard. Comparisons: = != < <= > >= and =~
// (substring match on string fields). Kind values are the record kind names
// (send, recv, funcentry, ...), case-insensitive.
package query

import (
	"fmt"
	"strconv"
	"strings"

	"tracedbg/internal/trace"
)

// Query is a compiled predicate.
type Query struct {
	expr expr
	src  string
	b    bounds // conservative (rank, start, marker) intervals for pruning
}

// Compile parses and compiles a query expression.
func Compile(s string) (*Query, error) {
	toks, err := lex(s)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("query: unexpected %q after expression", p.toks[p.pos].text)
	}
	return &Query{expr: e, src: s, b: analyze(e)}, nil
}

// String returns the original expression.
func (q *Query) String() string { return q.src }

// Match evaluates the query against one record.
func (q *Query) Match(rec *trace.Record) bool { return q.expr.eval(rec) }

// Run returns the matching events of a trace in (rank, index) order. Ranks
// and index windows excluded by the query's bounds are skipped entirely; the
// result is identical to filtering every record through Match.
//
// Deprecated: Run is a shim over the planner — use
// q.Plan(NewTraceSource(tr)).Run(). It remains exported for one release;
// new call sites are rejected by scripts/lint-queries.sh.
func (q *Query) Run(tr *trace.Trace) []trace.EventID {
	return q.runTrace(tr)
}

// --- lexer ---------------------------------------------------------------

type tokKind uint8

const (
	tokIdent tokKind = iota
	tokNumber
	tokString
	tokOp    // = != < <= > >= =~
	tokAndOr // && ||
	tokNot   // !
	tokLParen
	tokRParen
)

type token struct {
	kind tokKind
	text string
}

func lex(s string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "("})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")"})
			i++
		case c == '&' && i+1 < len(s) && s[i+1] == '&':
			toks = append(toks, token{tokAndOr, "&&"})
			i += 2
		case c == '|' && i+1 < len(s) && s[i+1] == '|':
			toks = append(toks, token{tokAndOr, "||"})
			i += 2
		case c == '!' && i+1 < len(s) && s[i+1] == '=':
			toks = append(toks, token{tokOp, "!="})
			i += 2
		case c == '!':
			toks = append(toks, token{tokNot, "!"})
			i++
		case c == '=' && i+1 < len(s) && s[i+1] == '~':
			toks = append(toks, token{tokOp, "=~"})
			i += 2
		case c == '=':
			toks = append(toks, token{tokOp, "="})
			i++
		case c == '<' || c == '>':
			op := string(c)
			i++
			if i < len(s) && s[i] == '=' {
				op += "="
				i++
			}
			toks = append(toks, token{tokOp, op})
		case c == '"':
			j := i + 1
			for j < len(s) && s[j] != '"' {
				j++
			}
			if j == len(s) {
				return nil, fmt.Errorf("query: unterminated string at offset %d", i)
			}
			toks = append(toks, token{tokString, s[i+1 : j]})
			i = j + 1
		case c == '-' || (c >= '0' && c <= '9'):
			j := i + 1
			for j < len(s) && s[j] >= '0' && s[j] <= '9' {
				j++
			}
			toks = append(toks, token{tokNumber, s[i:j]})
			i = j
		case isIdentChar(c):
			j := i
			for j < len(s) && isIdentChar(s[j]) {
				j++
			}
			toks = append(toks, token{tokIdent, s[i:j]})
			i = j
		default:
			return nil, fmt.Errorf("query: unexpected character %q at offset %d", c, i)
		}
	}
	return toks, nil
}

func isIdentChar(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// --- parser --------------------------------------------------------------
//
// or   := and ( "||" and )*
// and  := not ( "&&" not )*
// not  := "!" not | "(" or ")" | cmp | flag
// cmp  := field op value
// flag := "wildcard" | "message"

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() (token, bool) {
	if p.pos < len(p.toks) {
		return p.toks[p.pos], true
	}
	return token{}, false
}

func (p *parser) next() (token, bool) {
	t, ok := p.peek()
	if ok {
		p.pos++
	}
	return t, ok
}

func (p *parser) parseOr() (expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		t, ok := p.peek()
		if !ok || t.kind != tokAndOr || t.text != "||" {
			return left, nil
		}
		p.pos++
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = orExpr{left, right}
	}
}

func (p *parser) parseAnd() (expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for {
		t, ok := p.peek()
		if !ok || t.kind != tokAndOr || t.text != "&&" {
			return left, nil
		}
		p.pos++
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = andExpr{left, right}
	}
}

func (p *parser) parseNot() (expr, error) {
	t, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("query: unexpected end of expression")
	}
	switch t.kind {
	case tokNot:
		p.pos++
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return notExpr{inner}, nil
	case tokLParen:
		p.pos++
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if t, ok := p.next(); !ok || t.kind != tokRParen {
			return nil, fmt.Errorf("query: missing closing parenthesis")
		}
		return inner, nil
	case tokIdent:
		return p.parseCmp()
	}
	return nil, fmt.Errorf("query: unexpected %q", t.text)
}

func (p *parser) parseCmp() (expr, error) {
	field, _ := p.next()
	name := strings.ToLower(field.text)

	// Bare flags.
	switch name {
	case "wildcard":
		return flagExpr{get: func(r *trace.Record) bool { return r.WasWildcard }}, nil
	case "message":
		return flagExpr{get: func(r *trace.Record) bool { return r.Kind.IsMessage() }}, nil
	}

	op, ok := p.next()
	if !ok || op.kind != tokOp {
		return nil, fmt.Errorf("query: field %q needs a comparison operator", field.text)
	}
	val, ok := p.next()
	if !ok {
		return nil, fmt.Errorf("query: comparison with %q has no value", field.text)
	}

	if sget, isStr := stringFields[name]; isStr {
		if val.kind != tokString && val.kind != tokIdent {
			return nil, fmt.Errorf("query: field %q compares against strings", field.text)
		}
		switch op.text {
		case "=", "!=", "=~":
		default:
			return nil, fmt.Errorf("query: operator %q not defined on string field %q", op.text, field.text)
		}
		return strExpr{get: sget, op: op.text, val: val.text}, nil
	}

	if name == "kind" {
		if val.kind != tokIdent && val.kind != tokString {
			return nil, fmt.Errorf("query: kind compares against a kind name")
		}
		k, err := kindByName(val.text)
		if err != nil {
			return nil, err
		}
		switch op.text {
		case "=":
			return flagExpr{get: func(r *trace.Record) bool { return r.Kind == k }}, nil
		case "!=":
			return flagExpr{get: func(r *trace.Record) bool { return r.Kind != k }}, nil
		}
		return nil, fmt.Errorf("query: operator %q not defined on kind", op.text)
	}

	iget, isInt := intFields[name]
	if !isInt {
		return nil, fmt.Errorf("query: unknown field %q", field.text)
	}
	if val.kind != tokNumber {
		return nil, fmt.Errorf("query: field %q compares against numbers", field.text)
	}
	n, err := strconv.ParseInt(val.text, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("query: bad number %q", val.text)
	}
	switch op.text {
	case "=", "!=", "<", "<=", ">", ">=":
	default:
		return nil, fmt.Errorf("query: operator %q not defined on numeric field %q", op.text, field.text)
	}
	return intExpr{field: name, get: iget, op: op.text, val: n}, nil
}

// --- field tables ----------------------------------------------------------

var intFields = map[string]func(*trace.Record) int64{
	"rank":   func(r *trace.Record) int64 { return int64(r.Rank) },
	"src":    func(r *trace.Record) int64 { return int64(r.Src) },
	"dst":    func(r *trace.Record) int64 { return int64(r.Dst) },
	"tag":    func(r *trace.Record) int64 { return int64(r.Tag) },
	"bytes":  func(r *trace.Record) int64 { return int64(r.Bytes) },
	"marker": func(r *trace.Record) int64 { return int64(r.Marker) },
	"msgid":  func(r *trace.Record) int64 { return int64(r.MsgID) },
	"start":  func(r *trace.Record) int64 { return r.Start },
	"end":    func(r *trace.Record) int64 { return r.End },
	"line":   func(r *trace.Record) int64 { return int64(r.Loc.Line) },
	"dur":    func(r *trace.Record) int64 { return r.Duration() },
}

var stringFields = map[string]func(*trace.Record) string{
	"name": func(r *trace.Record) string { return r.Name },
	"func": func(r *trace.Record) string { return r.Loc.Func },
	"file": func(r *trace.Record) string { return r.Loc.File },
}

func kindByName(s string) (trace.Kind, error) {
	switch strings.ToLower(s) {
	case "funcentry":
		return trace.KindFuncEntry, nil
	case "funcexit":
		return trace.KindFuncExit, nil
	case "regionbegin":
		return trace.KindRegionBegin, nil
	case "regionend":
		return trace.KindRegionEnd, nil
	case "compute":
		return trace.KindCompute, nil
	case "send":
		return trace.KindSend, nil
	case "recv":
		return trace.KindRecv, nil
	case "collective":
		return trace.KindCollective, nil
	case "blocked":
		return trace.KindBlocked, nil
	case "marker":
		return trace.KindMarker, nil
	case "checkpoint":
		return trace.KindCheckpoint, nil
	case "fault":
		return trace.KindFault, nil
	}
	return 0, fmt.Errorf("query: unknown kind %q", s)
}

// --- expressions -----------------------------------------------------------

type expr interface{ eval(*trace.Record) bool }

type andExpr struct{ l, r expr }

func (e andExpr) eval(rec *trace.Record) bool { return e.l.eval(rec) && e.r.eval(rec) }

type orExpr struct{ l, r expr }

func (e orExpr) eval(rec *trace.Record) bool { return e.l.eval(rec) || e.r.eval(rec) }

type notExpr struct{ inner expr }

func (e notExpr) eval(rec *trace.Record) bool { return !e.inner.eval(rec) }

type flagExpr struct{ get func(*trace.Record) bool }

func (e flagExpr) eval(rec *trace.Record) bool { return e.get(rec) }

type intExpr struct {
	field string // for bounds analysis
	get   func(*trace.Record) int64
	op    string
	val   int64
}

func (e intExpr) eval(rec *trace.Record) bool {
	v := e.get(rec)
	switch e.op {
	case "=":
		return v == e.val
	case "!=":
		return v != e.val
	case "<":
		return v < e.val
	case "<=":
		return v <= e.val
	case ">":
		return v > e.val
	case ">=":
		return v >= e.val
	}
	return false
}

type strExpr struct {
	get func(*trace.Record) string
	op  string
	val string
}

func (e strExpr) eval(rec *trace.Record) bool {
	v := e.get(rec)
	switch e.op {
	case "=":
		return v == e.val
	case "!=":
		return v != e.val
	case "=~":
		return strings.Contains(v, e.val)
	}
	return false
}
