package query

import (
	"errors"
	"io"
	"math/rand"
	"testing"

	"tracedbg/internal/trace"
)

// sliceCursor replays a rank's records; the test stand-in for a store cursor.
type sliceCursor struct {
	recs   []trace.Record
	i      int
	closed bool
}

func (c *sliceCursor) Next() (*trace.Record, error) {
	if c.i >= len(c.recs) {
		return nil, io.EOF
	}
	rec := &c.recs[c.i]
	c.i++
	return rec, nil
}

func (c *sliceCursor) Close() error { c.closed = true; return nil }

func rankOpener(tr *trace.Trace) (func(int) (trace.RecordCursor, error), []*sliceCursor) {
	curs := make([]*sliceCursor, tr.NumRanks())
	return func(rank int) (trace.RecordCursor, error) {
		c := &sliceCursor{recs: tr.Rank(rank)}
		curs[rank] = c
		return c, nil
	}, curs
}

// TestRunStreamMatchesRun is the differential test for the streaming path:
// every query over cursors must return exactly what the materialized pruned
// Run returns, in the same order.
func TestRunStreamMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	tr := boundsTrace(rng, 8, 4000)
	exprs := []string{
		"rank = 3",
		"rank = 3 && start >= 100 && start < 900",
		"rank >= 2 && rank <= 4",
		"start > 500",
		"start >= 200 && start <= 210",
		"marker = 17",
		"marker >= 10 && marker < 40 && kind = send",
		"rank = 1 || rank = 6",
		"(rank = 1 && start < 50) || (rank = 2 && start > 950)",
		"!(rank = 3)",
		"rank != 3",
		"kind = send && bytes > 100",
		"wildcard",
		"name =~ \"Re\"",
		"rank = 0 && marker > 5 && start > 10 && !(tag = 2)",
		"start < -1",
		"rank = 99",
		"rank = 3 && rank = 4",
	}
	for _, src := range exprs {
		q, err := Compile(src)
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		want := q.Run(tr)
		open, curs := rankOpener(tr)
		got, err := q.RunStream(tr.NumRanks(), open)
		if err != nil {
			t.Fatalf("%q: RunStream: %v", src, err)
		}
		if !sameIDs(got, want) {
			t.Errorf("%q: RunStream differs\n got %v\nwant %v", src, got, want)
		}
		for r, c := range curs {
			if c != nil && !c.closed {
				t.Errorf("%q: cursor for rank %d left open", src, r)
			}
		}
	}
}

func TestRunStreamRandomQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	tr := boundsTrace(rng, 6, 1500)
	fields := []string{"rank", "start", "marker", "bytes", "tag"}
	ops := []string{"=", "!=", "<", "<=", ">", ">="}
	junct := []string{" && ", " || "}
	for i := 0; i < 300; i++ {
		n := 1 + rng.Intn(3)
		src := ""
		for j := 0; j < n; j++ {
			if j > 0 {
				src += junct[rng.Intn(2)]
			}
			f := fields[rng.Intn(len(fields))]
			v := rng.Intn(60)
			src += f + " " + ops[rng.Intn(len(ops))] + " " + itoa(v)
		}
		q, err := Compile(src)
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		want := q.Run(tr)
		open, _ := rankOpener(tr)
		got, err := q.RunStream(tr.NumRanks(), open)
		if err != nil {
			t.Fatalf("%q: RunStream: %v", src, err)
		}
		if !sameIDs(got, want) {
			t.Fatalf("%q: RunStream differs", src)
		}
	}
}

// allOpener interleaves every rank's records at a fixed chunk granularity —
// the file order a sharded writer produces and store.All replays.
func allOpener(tr *trace.Trace, chunk int) func() (trace.RecordCursor, error) {
	var all []trace.Record
	cursors := make([][]trace.Record, tr.NumRanks())
	for r := range cursors {
		cursors[r] = tr.Rank(r)
	}
	for {
		n := 0
		for r := range cursors {
			take := chunk
			if take > len(cursors[r]) {
				take = len(cursors[r])
			}
			all = append(all, cursors[r][:take]...)
			cursors[r] = cursors[r][take:]
			n += take
		}
		if n == 0 {
			break
		}
	}
	return func() (trace.RecordCursor, error) {
		return &sliceCursor{recs: all}, nil
	}
}

// TestRunStreamAllMatchesRunStream: the single-pass shared-cursor path must
// return exactly what the per-rank streaming path (and the materialized
// pruned Run) returns, in the same rank-major order, regardless of how the
// ranks interleave in the file.
func TestRunStreamAllMatchesRunStream(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	tr := boundsTrace(rng, 8, 4000)
	exprs := []string{
		"rank = 3",
		"rank = 3 && start >= 100 && start < 900",
		"rank >= 2 && rank <= 4",
		"start > 500",
		"start >= 200 && start <= 210",
		"marker = 17",
		"marker >= 10 && marker < 40 && kind = send",
		"rank = 1 || rank = 6",
		"(rank = 1 && start < 50) || (rank = 2 && start > 950)",
		"!(rank = 3)",
		"kind = send && bytes > 100",
		"wildcard",
		"name =~ \"Re\"",
		"start < -1",
		"rank = 99",
	}
	for _, chunk := range []int{1, 7, 64, 1 << 20} {
		for _, src := range exprs {
			q, err := Compile(src)
			if err != nil {
				t.Fatalf("compile %q: %v", src, err)
			}
			want := q.Run(tr)
			got, err := q.RunStreamAll(tr.NumRanks(), allOpener(tr, chunk))
			if err != nil {
				t.Fatalf("%q (chunk %d): RunStreamAll: %v", src, chunk, err)
			}
			if !sameIDs(got, want) {
				t.Errorf("%q (chunk %d): RunStreamAll differs\n got %v\nwant %v", src, chunk, got, want)
			}
		}
	}
}

func TestRunStreamAllRandomQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	tr := boundsTrace(rng, 6, 1500)
	fields := []string{"rank", "start", "marker", "bytes", "tag"}
	ops := []string{"=", "!=", "<", "<=", ">", ">="}
	junct := []string{" && ", " || "}
	for i := 0; i < 300; i++ {
		n := 1 + rng.Intn(3)
		src := ""
		for j := 0; j < n; j++ {
			if j > 0 {
				src += junct[rng.Intn(2)]
			}
			f := fields[rng.Intn(len(fields))]
			v := rng.Intn(60)
			src += f + " " + ops[rng.Intn(len(ops))] + " " + itoa(v)
		}
		q, err := Compile(src)
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		want := q.Run(tr)
		got, err := q.RunStreamAll(tr.NumRanks(), allOpener(tr, 16))
		if err != nil {
			t.Fatalf("%q: RunStreamAll: %v", src, err)
		}
		if !sameIDs(got, want) {
			t.Fatalf("%q: RunStreamAll differs", src)
		}
	}
}

func TestRunStreamAllOpenError(t *testing.T) {
	q, err := Compile("rank >= 0")
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	_, err = q.RunStreamAll(2, func() (trace.RecordCursor, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("open error lost: %v", err)
	}
	// A fully rank-pruned query must not open the cursor at all.
	q2, err := Compile("rank = 99")
	if err != nil {
		t.Fatal(err)
	}
	ids, err := q2.RunStreamAll(2, func() (trace.RecordCursor, error) { return nil, boom })
	if err != nil || len(ids) != 0 {
		t.Fatalf("pruned query opened the cursor: ids=%v err=%v", ids, err)
	}
}

func TestRunStreamOpenError(t *testing.T) {
	q, err := Compile("rank >= 0")
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	_, err = q.RunStream(2, func(int) (trace.RecordCursor, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("open error lost: %v", err)
	}
}
