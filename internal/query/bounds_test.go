package query

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"tracedbg/internal/trace"
)

func boundsTrace(rng *rand.Rand, ranks, events int) *trace.Trace {
	tr := trace.New(ranks)
	clock := make([]int64, ranks)
	marker := make([]uint64, ranks)
	names := []string{"Send", "Recv", "Work"}
	for i := 0; i < events; i++ {
		r := rng.Intn(ranks)
		start := clock[r]
		end := start + 1 + int64(rng.Intn(8))
		clock[r] = end
		marker[r]++
		kind := trace.KindCompute
		switch rng.Intn(3) {
		case 0:
			kind = trace.KindSend
		case 1:
			kind = trace.KindRecv
		}
		tr.MustAppend(trace.Record{Kind: kind, Rank: r, Marker: marker[r],
			Start: start, End: end, Src: rng.Intn(ranks), Dst: rng.Intn(ranks),
			Tag: rng.Intn(4), Bytes: rng.Intn(200), MsgID: uint64(i),
			WasWildcard: rng.Intn(5) == 0, Name: names[rng.Intn(len(names))]})
	}
	return tr
}

// TestPrunedRunMatchesFullScan is the differential test for index pruning:
// every query must return exactly what an unpruned scan of every record
// returns, in the same order.
func TestPrunedRunMatchesFullScan(t *testing.T) {
	// Force the fan-out path of RunParallel even on a single-CPU machine.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	rng := rand.New(rand.NewSource(41))
	tr := boundsTrace(rng, 8, 4000)
	exprs := []string{
		"rank = 3",
		"rank = 3 && start >= 100 && start < 900",
		"rank >= 2 && rank <= 4",
		"start > 500",
		"start >= 200 && start <= 210",
		"marker = 17",
		"marker >= 10 && marker < 40 && kind = send",
		"rank = 1 || rank = 6",
		"(rank = 1 && start < 50) || (rank = 2 && start > 950)",
		"!(rank = 3)",
		"rank != 3",
		"kind = send && bytes > 100",
		"wildcard",
		"name =~ \"Re\"",
		"rank = 0 && marker > 5 && start > 10 && !(tag = 2)",
		"start < -1",
		"rank = 99",
		"rank = 3 && rank = 4", // contradiction: empty bounds
	}
	for _, src := range exprs {
		q, err := Compile(src)
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		want := tr.Filter(q.Match)
		got := q.Run(tr)
		if !sameIDs(got, want) {
			t.Errorf("%q: pruned Run differs\n got %v\nwant %v", src, got, want)
		}
		par := q.RunParallel(tr)
		if !sameIDs(par, want) {
			t.Errorf("%q: RunParallel differs\n got %v\nwant %v", src, par, want)
		}
	}
}

func sameIDs(a, b []trace.EventID) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

// TestPrunedRunRandomQueries fuzzes the comparison space: random conjunctions
// of rank/start/marker constraints against the full scan.
func TestPrunedRunRandomQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	tr := boundsTrace(rng, 6, 1500)
	fields := []string{"rank", "start", "marker", "bytes", "tag"}
	ops := []string{"=", "!=", "<", "<=", ">", ">="}
	junct := []string{" && ", " || "}
	for i := 0; i < 300; i++ {
		n := 1 + rng.Intn(3)
		src := ""
		for j := 0; j < n; j++ {
			if j > 0 {
				src += junct[rng.Intn(2)]
			}
			f := fields[rng.Intn(len(fields))]
			v := rng.Intn(60)
			src += f + " " + ops[rng.Intn(len(ops))] + " " + itoa(v)
		}
		q, err := Compile(src)
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		want := tr.Filter(q.Match)
		if got := q.Run(tr); !sameIDs(got, want) {
			t.Fatalf("%q: pruned Run differs", src)
		}
		if got := q.RunParallel(tr); !sameIDs(got, want) {
			t.Fatalf("%q: RunParallel differs", src)
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func TestBoundsAnalysis(t *testing.T) {
	cases := []struct {
		src   string
		check func(b bounds) bool
	}{
		{"rank = 3", func(b bounds) bool { return b.rank == span{3, 3} && b.start.full() }},
		{"rank >= 2 && rank < 5", func(b bounds) bool { return b.rank == span{2, 4} }},
		{"rank = 1 || rank = 6", func(b bounds) bool { return b.rank == span{1, 6} }},
		{"rank = 3 && rank = 4", func(b bounds) bool { return b.empty() }},
		{"!(rank = 3)", func(b bounds) bool { return b.rank.full() }},
		{"rank != 3", func(b bounds) bool { return b.rank.full() }},
		{"start > 10 && marker <= 7", func(b bounds) bool {
			return b.start.lo == 11 && b.marker.hi == 7 && b.rank.full()
		}},
		{"kind = send && rank = 2", func(b bounds) bool { return b.rank == span{2, 2} }},
		{"rank = 2 || start > 5", func(b bounds) bool { return b.rank.full() && b.start.full() }},
	}
	for _, c := range cases {
		q, err := Compile(c.src)
		if err != nil {
			t.Fatalf("compile %q: %v", c.src, err)
		}
		if !c.check(q.b) {
			t.Errorf("%q: bounds = %+v", c.src, q.b)
		}
	}
}

func TestQueryCache(t *testing.T) {
	c := NewCache()
	q1, err := c.Compile("rank = 1")
	if err != nil {
		t.Fatal(err)
	}
	q2, err := c.Compile("rank = 1")
	if err != nil {
		t.Fatal(err)
	}
	if q1 != q2 {
		t.Error("cache returned a recompiled query")
	}
	if _, err := c.Compile("rank ="); err == nil {
		t.Fatal("bad query accepted")
	}
	if _, err2 := c.Compile("rank ="); err2 == nil {
		t.Fatal("cached error lost")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}
