package query_test

// Differential suite for the query planner: across every input shape —
// clean v3 (sequential and sharded/indexed), legacy v2, segmented
// manifests, corrupted and truncated files, stale sidecars — the planner
// with an index, the planner without one, and each legacy entry point must
// produce identical EventID sets. This pins the legacy executors as the
// reference semantics while they remain exported, and proves index seeks
// never change results.

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"tracedbg/internal/obs"
	"tracedbg/internal/query"
	"tracedbg/internal/store"
	"tracedbg/internal/trace"
)

// diffTrace builds a deterministic multi-rank history with markers,
// locations, and message fields — the same shape the store suite uses.
func diffTrace(rng *rand.Rand, ranks, msgs int) *trace.Trace {
	files := []string{"ring.go", "lu.go", "main.go"}
	funcs := []string{"main", "worker", "exchange"}
	tr := trace.New(ranks)
	clock := make([]int64, ranks)
	marker := make([]uint64, ranks)
	var msgID uint64
	for i := 0; i < msgs; i++ {
		src := rng.Intn(ranks)
		dst := (src + 1 + rng.Intn(ranks-1)) % ranks
		msgID++
		loc := trace.Location{File: files[rng.Intn(len(files))], Line: 1 + rng.Intn(40),
			Func: funcs[rng.Intn(len(funcs))]}
		s := clock[src]
		e := s + 1 + int64(rng.Intn(9))
		clock[src] = e
		marker[src]++
		tr.MustAppend(trace.Record{Kind: trace.KindSend, Rank: src, Marker: marker[src],
			Loc: loc, Name: "Send", Start: s, End: e, Src: src, Dst: dst,
			Tag: rng.Intn(3), Bytes: 8 + rng.Intn(64), MsgID: msgID})
		if clock[dst] < e {
			clock[dst] = e
		}
		rs := clock[dst]
		re := rs + 1 + int64(rng.Intn(9))
		clock[dst] = re
		marker[dst]++
		tr.MustAppend(trace.Record{Kind: trace.KindRecv, Rank: dst, Marker: marker[dst],
			Loc: loc, Name: "Recv", Start: rs, End: re, Src: src, Dst: dst,
			Bytes: 8, MsgID: msgID, WasWildcard: rng.Intn(4) == 0})
	}
	return tr
}

// diffQueries is the fixed corpus: marker edges (index seeks), time edges,
// rank pruning, compound predicates, string and flag predicates, and
// shapes with no usable bounds at all.
var diffQueries = []string{
	"marker >= 50",
	"marker > 100 && marker <= 200",
	"marker = 75",
	"start >= 500",
	"start >= 200 && start < 900 && bytes > 20",
	"rank = 1 && kind = send",
	"rank <= 1 && marker >= 30 && dst = 0",
	"kind = recv && wildcard",
	"name =~ Recv || tag = 2",
	"msgid > 40 && msgid < 60",
	"start < 100",
	"! (kind = send) && marker >= 10",
	"rank = 99",
	"bytes >= 8",
}

// randomQuery emits a seeded random expression over the numeric fields the
// bounds analysis understands plus a few it does not.
func randomQuery(rng *rand.Rand) string {
	fields := []string{"marker", "start", "rank", "bytes", "tag", "msgid", "dst"}
	ops := []string{"=", "!=", "<", "<=", ">", ">="}
	terms := 1 + rng.Intn(3)
	var sb bytes.Buffer
	for i := 0; i < terms; i++ {
		if i > 0 {
			if rng.Intn(2) == 0 {
				sb.WriteString(" && ")
			} else {
				sb.WriteString(" || ")
			}
		}
		f := fields[rng.Intn(len(fields))]
		var v int
		switch f {
		case "marker":
			v = rng.Intn(400)
		case "start":
			v = rng.Intn(3000)
		case "rank", "dst", "tag":
			v = rng.Intn(5)
		default:
			v = rng.Intn(100)
		}
		fmt.Fprintf(&sb, "%s %s %d", f, ops[rng.Intn(len(ops))], v)
	}
	return sb.String()
}

// diffInput is one store shape under differential test.
type diffInput struct {
	name    string
	path    string // opened fresh per strategy
	indexed bool   // whether the planner is expected to use the index
}

// buildDiffInputs writes every input shape into dir.
func buildDiffInputs(t *testing.T, dir string, tr *trace.Trace) []diffInput {
	t.Helper()
	var inputs []diffInput

	seq := filepath.Join(dir, "seq.trace")
	if err := trace.WriteFileAtomic(seq, tr, trace.WriterOptions{ChunkBytes: 1 << 10, BuildIndex: true}); err != nil {
		t.Fatal(err)
	}
	inputs = append(inputs, diffInput{"v3-indexed", seq, true})

	plain := filepath.Join(dir, "plain.trace")
	if err := trace.WriteFileAtomic(plain, tr, trace.WriterOptions{ChunkBytes: 1 << 10}); err != nil {
		t.Fatal(err)
	}
	inputs = append(inputs, diffInput{"v3-unindexed", plain, false})

	var sh bytes.Buffer
	sw, err := trace.NewShardedWriterOptions(&sh, tr.NumRanks(), 1<<10,
		trace.WriterOptions{BuildIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range tr.MergedOrder() {
		if err := sw.Write(tr.MustAt(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	sharded := filepath.Join(dir, "sharded.trace")
	if err := os.WriteFile(sharded, sh.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteIndexFile(trace.IndexPath(sharded), sw.SealIndex()); err != nil {
		t.Fatal(err)
	}
	inputs = append(inputs, diffInput{"v3-sharded-indexed", sharded, true})

	v2 := filepath.Join(dir, "v2.trace")
	if err := trace.WriteFileAtomic(v2, tr, trace.WriterOptions{LegacyV2: true}); err != nil {
		t.Fatal(err)
	}
	// Backfill: v2 files index through trepair -index's library path.
	v2data, err := os.ReadFile(v2)
	if err != nil {
		t.Fatal(err)
	}
	v2si, err := trace.BuildSegmentIndexBytes(v2data, trace.DefaultIndexStride)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteIndexFile(trace.IndexPath(v2), v2si); err != nil {
		t.Fatal(err)
	}
	inputs = append(inputs, diffInput{"v2-indexed", v2, true})

	segDir := filepath.Join(dir, "segs")
	if err := os.MkdirAll(segDir, 0o755); err != nil {
		t.Fatal(err)
	}
	gw, err := trace.NewSegmentedWriter(segDir, "run", tr.NumRanks(), 4<<10,
		trace.WriterOptions{ChunkBytes: 1 << 10, BuildIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range tr.MergedOrder() {
		if err := gw.Write(tr.MustAt(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	inputs = append(inputs, diffInput{"manifest-indexed", gw.ManifestPath(), true})

	// Corrupted: flip a payload byte mid-file. The sidecar goes stale, the
	// planner must fall back, and every strategy must agree on the
	// salvaged record set.
	cdata, err := os.ReadFile(seq)
	if err != nil {
		t.Fatal(err)
	}
	cdata = append([]byte(nil), cdata...)
	cdata[len(cdata)/2] ^= 0x20
	corrupt := filepath.Join(dir, "corrupt.trace")
	if err := os.WriteFile(corrupt, cdata, 0o644); err != nil {
		t.Fatal(err)
	}
	sidecar, err := os.ReadFile(trace.IndexPath(seq))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(trace.IndexPath(corrupt), sidecar, 0o644); err != nil {
		t.Fatal(err)
	}
	inputs = append(inputs, diffInput{"corrupt-stale-sidecar", corrupt, false})

	// Truncated: drop the trailing 40% (and carry the now-stale sidecar).
	tdata := cdata[:len(cdata)*3/5]
	trunc := filepath.Join(dir, "trunc.trace")
	if err := os.WriteFile(trunc, tdata, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(trace.IndexPath(trunc), sidecar, 0o644); err != nil {
		t.Fatal(err)
	}
	inputs = append(inputs, diffInput{"truncated-stale-sidecar", trunc, false})

	return inputs
}

// runAllStrategies executes one query against one input via every
// execution path and fails on any divergence.
func runAllStrategies(t *testing.T, in diffInput, src string) {
	t.Helper()
	q, err := query.Compile(src)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	st, err := store.Open(in.path)
	if err != nil {
		t.Fatalf("%s: open: %v", in.name, err)
	}
	if got := st.Indexes().Available(); got != in.indexed {
		t.Fatalf("%s: index available = %v, want %v (%s)", in.name, got, in.indexed,
			st.Indexes().Reason())
	}
	tr, err := st.Trace()
	if err != nil {
		t.Fatalf("%s: trace: %v", in.name, err)
	}

	ref := q.Run(tr) // the materialized legacy scan is the reference

	results := map[string][]trace.EventID{
		"RunParallel": q.RunParallel(tr),
	}
	if ids, err := q.RunStream(st.NumRanks(), st.Records); err != nil {
		t.Fatalf("%s: RunStream: %v", in.name, err)
	} else {
		results["RunStream"] = ids
	}
	if ids, err := q.RunStreamAll(st.NumRanks(), st.All); err != nil {
		t.Fatalf("%s: RunStreamAll: %v", in.name, err)
	} else {
		results["RunStreamAll"] = ids
	}
	if ids, err := q.Plan(query.NewStoreSource(st)).Run(); err != nil {
		t.Fatalf("%s: Plan(store): %v", in.name, err)
	} else {
		results["Plan(store)"] = ids
	}
	if ids, err := q.Plan(query.NewTraceSource(tr)).Run(); err != nil {
		t.Fatalf("%s: Plan(trace): %v", in.name, err)
	} else {
		results["Plan(trace)"] = ids
	}
	if ids, err := q.Plan(query.NewCursorSource(st.NumRanks(), st.Records)).Run(); err != nil {
		t.Fatalf("%s: Plan(cursors): %v", in.name, err)
	} else {
		results["Plan(cursors)"] = ids
	}
	if ids, err := q.Plan(query.NewAllSource(st.NumRanks(), st.All)).Run(); err != nil {
		t.Fatalf("%s: Plan(all): %v", in.name, err)
	} else {
		results["Plan(all)"] = ids
	}
	for label, ids := range results {
		if len(ids) == 0 && len(ref) == 0 {
			continue
		}
		if !reflect.DeepEqual(ids, ref) {
			t.Fatalf("%s: %q via %s returned %d ids, reference %d\n got %v\nwant %v",
				in.name, src, label, len(ids), len(ref), ids, ref)
		}
	}
}

// TestPlannerDifferential is the parity pin across inputs × strategies ×
// the fixed corpus.
func TestPlannerDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := diffTrace(rng, 4, 500)
	dir := t.TempDir()
	for _, in := range buildDiffInputs(t, dir, tr) {
		in := in
		t.Run(in.name, func(t *testing.T) {
			for _, src := range diffQueries {
				runAllStrategies(t, in, src)
			}
		})
	}
}

// TestPlannerDifferentialRandom sweeps seeded random queries over the two
// richest shapes: the indexed manifest and the indexed sharded file.
func TestPlannerDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := diffTrace(rng, 4, 400)
	dir := t.TempDir()
	inputs := buildDiffInputs(t, dir, tr)
	qrng := rand.New(rand.NewSource(13))
	for i := 0; i < 40; i++ {
		src := randomQuery(qrng)
		for _, in := range inputs {
			if in.name != "manifest-indexed" && in.name != "v3-sharded-indexed" {
				continue
			}
			runAllStrategies(t, in, src)
		}
	}
}

// TestPlannerColdZeroScan is the acceptance pin: a bounded query on a
// fresh, indexed store must decode zero records through the scan-path
// cursors — the index answers it outright.
func TestPlannerColdZeroScan(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tr := diffTrace(rng, 4, 500)
	dir := t.TempDir()
	inputs := buildDiffInputs(t, dir, tr)

	reg := obs.NewRegistry()
	store.SetObsRegistry(reg)
	query.SetObsRegistry(reg)
	defer store.SetObsRegistry(obs.Default())
	defer query.SetObsRegistry(obs.Default())

	q, err := query.Compile("marker >= 180 && kind = send")
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for _, in := range inputs {
		if !in.indexed {
			continue
		}
		st, err := store.Open(in.path)
		if err != nil {
			t.Fatal(err)
		}
		ids, err := q.Plan(query.NewStoreSource(st)).Run()
		if err != nil {
			t.Fatal(err)
		}
		total += len(ids)
	}
	if total == 0 {
		t.Fatal("bounded query matched nothing; corpus too weak")
	}
	snap := map[string]float64{}
	for _, m := range reg.Snapshot().Metrics {
		snap[m.Name] = m.Value
	}
	if v := snap["tracedbg_store_cursor_records_total"]; v != 0 {
		t.Fatalf("indexed plans decoded %v records via scan cursors, want 0", v)
	}
	if v := snap["tracedbg_query_plan_indexed_ranks_total"]; v == 0 {
		t.Fatal("no ranks were answered by index seeks")
	}
	if v := snap["tracedbg_query_plan_scans_total"]; v != 0 {
		t.Fatalf("plan fell back to full scan %v times, want 0", v)
	}
}

// TestPlanExplain pins the -explain surface: strategy lines reflect the
// store's negotiated capability and the chosen seek edge.
func TestPlanExplain(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	tr := diffTrace(rng, 3, 100)
	dir := t.TempDir()
	path := filepath.Join(dir, "e.trace")
	if err := trace.WriteFileAtomic(path, tr, trace.WriterOptions{BuildIndex: true}); err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.Compile("marker >= 40 && rank = 1")
	if err != nil {
		t.Fatal(err)
	}
	out := q.Plan(query.NewStoreSource(st)).Explain()
	for _, want := range []string{"strategy: index", "seek marker>=40", "2 pruned"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Fatalf("Explain missing %q:\n%s", want, out)
		}
	}

	plain := filepath.Join(dir, "p.trace")
	if err := trace.WriteFileAtomic(plain, tr, trace.WriterOptions{}); err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(plain)
	if err != nil {
		t.Fatal(err)
	}
	out = q.Plan(query.NewStoreSource(st2)).Explain()
	if !bytes.Contains([]byte(out), []byte("full scan")) {
		t.Fatalf("unindexed Explain missing full-scan strategy:\n%s", out)
	}

	out = q.Plan(query.NewTraceSource(tr)).Explain()
	if !bytes.Contains([]byte(out), []byte("pruned scan")) {
		t.Fatalf("trace Explain missing pruned-scan strategy:\n%s", out)
	}
}

// TestCacheEventsFor pins result memoization: hits only on identical
// (expression, generation), never across a rewrite, never for empty
// generations.
func TestCacheEventsFor(t *testing.T) {
	c := query.NewCache()
	calls := 0
	run := func() ([]trace.EventID, error) {
		calls++
		return []trace.EventID{{Rank: 1, Index: calls}}, nil
	}
	a, _ := c.EventsFor("x = 1", "gen1", run)
	b, _ := c.EventsFor("x = 1", "gen1", run)
	if calls != 1 || !reflect.DeepEqual(a, b) {
		t.Fatalf("same generation re-ran: calls=%d a=%v b=%v", calls, a, b)
	}
	if _, err := c.EventsFor("x = 1", "gen2", run); err != nil || calls != 2 {
		t.Fatalf("generation change did not re-run: calls=%d err=%v", calls, err)
	}
	if _, err := c.EventsFor("x = 2", "gen2", run); err != nil || calls != 3 {
		t.Fatalf("expression change did not re-run: calls=%d err=%v", calls, err)
	}
	c.EventsFor("x = 2", "", run)
	c.EventsFor("x = 2", "", run)
	if calls != 5 {
		t.Fatalf("empty generation was cached: calls=%d", calls)
	}
}
