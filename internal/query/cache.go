package query

import "sync"

// Cache memoizes compiled queries by source text. Interactive loops (the
// tdbg repl, tanalyze batch filters) re-issue the same expressions; caching
// makes recompilation free without changing any semantics — compiled queries
// are immutable, so sharing one across goroutines is safe. Compile errors are
// cached too, so a repeatedly mistyped expression does not re-lex every time.
type Cache struct {
	mu sync.Mutex
	m  map[string]cacheEntry
}

type cacheEntry struct {
	q   *Query
	err error
}

// NewCache returns an empty query cache.
func NewCache() *Cache { return &Cache{m: make(map[string]cacheEntry)} }

// Compile returns the cached compilation of src, compiling on first use.
func (c *Cache) Compile(src string) (*Query, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[src]; ok {
		return e.q, e.err
	}
	q, err := Compile(src)
	c.m[src] = cacheEntry{q: q, err: err}
	return q, err
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
