package query

import (
	"container/list"
	"sync"

	"tracedbg/internal/trace"
)

// DefaultCacheSize is the entry capacity of caches made by NewCache. A few
// hundred distinct expressions is far beyond any interactive session; the
// bound exists so a driver that machine-generates expressions (one per
// message ID, say) cannot grow the cache without limit.
const DefaultCacheSize = 256

// Cache memoizes compiled queries by source text, evicting the least
// recently used entry at capacity. Interactive loops (the tdbg repl,
// tanalyze batch filters) re-issue the same expressions; caching makes
// recompilation free without changing any semantics — compiled queries are
// immutable, so sharing one across goroutines is safe. Compile errors are
// cached too, so a repeatedly mistyped expression does not re-lex every time.
type Cache struct {
	mu  sync.Mutex
	cap int // <= 0 means unbounded
	m   map[string]*list.Element
	lru *list.List // front = most recently used

	// Result memoization, keyed by (expression, store generation). A
	// separate LRU with the same capacity: results are only as immutable
	// as the bytes they were computed from, so the generation — which
	// changes whenever a store's files are rewritten — is part of the key
	// and an empty generation disables caching entirely.
	rm   map[string]*list.Element
	rlru *list.List
}

type cacheEntry struct {
	src string
	q   *Query
	err error
}

type resultEntry struct {
	key string
	ids []trace.EventID
}

// NewCache returns an empty query cache with DefaultCacheSize capacity.
func NewCache() *Cache { return NewCacheSize(DefaultCacheSize) }

// NewCacheSize returns an empty query cache holding at most n entries;
// n <= 0 means unbounded.
func NewCacheSize(n int) *Cache {
	return &Cache{cap: n, m: make(map[string]*list.Element), lru: list.New(),
		rm: make(map[string]*list.Element), rlru: list.New()}
}

// Compile returns the cached compilation of src, compiling on first use.
func (c *Cache) Compile(src string) (*Query, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := metrics()
	if el, ok := c.m[src]; ok {
		c.lru.MoveToFront(el)
		m.cacheHits.Inc()
		e := el.Value.(*cacheEntry)
		return e.q, e.err
	}
	m.cacheMisses.Inc()
	q, err := Compile(src)
	c.m[src] = c.lru.PushFront(&cacheEntry{src: src, q: q, err: err})
	m.cacheEntries.Add(1)
	if c.cap > 0 && c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).src)
		m.cacheEvictions.Inc()
		m.cacheEntries.Add(-1)
	}
	return q, err
}

// EventsFor memoizes a query execution by (expression, generation). gen
// must identify the exact on-disk content the run reads — store.Generation
// is the intended producer — so a trace rewritten at the same path (scrub,
// repair, re-collection) can never serve results computed from the old
// bytes: its generation differs and misses. An empty gen means the source
// has no stable identity (in-memory image, live tail); the run executes
// uncached. The returned slice is shared across hits — callers must not
// mutate it.
func (c *Cache) EventsFor(expr, gen string, run func() ([]trace.EventID, error)) ([]trace.EventID, error) {
	m := metrics()
	if gen == "" {
		m.resultMisses.Inc()
		return run()
	}
	key := expr + "\x00" + gen
	c.mu.Lock()
	if el, ok := c.rm[key]; ok {
		c.rlru.MoveToFront(el)
		ids := el.Value.(*resultEntry).ids
		c.mu.Unlock()
		m.resultHits.Inc()
		return ids, nil
	}
	c.mu.Unlock()
	m.resultMisses.Inc()
	ids, err := run()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if _, ok := c.rm[key]; !ok {
		c.rm[key] = c.rlru.PushFront(&resultEntry{key: key, ids: ids})
		if c.cap > 0 && c.rlru.Len() > c.cap {
			oldest := c.rlru.Back()
			c.rlru.Remove(oldest)
			delete(c.rm, oldest.Value.(*resultEntry).key)
		}
	}
	c.mu.Unlock()
	return ids, nil
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Cap returns the cache's entry capacity (<= 0 means unbounded).
func (c *Cache) Cap() int { return c.cap }
