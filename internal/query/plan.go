package query

// The query planner. A compiled query plus a Source — a materialized
// trace, streaming cursors, or a store with negotiated capabilities —
// yields a Plan that picks the cheapest sound execution per rank:
//
//   - index seek: the store has validated sidecars and the query's bounds
//     give a lower marker/time edge, so the cursor starts mid-file and
//     decodes only the candidate window (sharded files: only that rank's
//     chunks).
//   - pruned scan: no usable seek edge, but bounds still skip whole ranks
//     and retire a rank once its window is passed.
//   - full scan: no index (missing, stale, live store) — the exact
//     single-pass semantics queries always had.
//
// Every strategy filters survivors through the full predicate, so results
// are bit-identical across strategies; the differential suite pins that.
// The legacy entry points (Run, RunParallel, RunStream, RunStreamAll) are
// shims over Plan and scheduled for unexport.

import (
	"fmt"
	"io"
	"math"
	"strings"

	"tracedbg/internal/store"
	"tracedbg/internal/trace"
)

// Source is a sealed description of where a plan reads records from. Build
// one with NewTraceSource, NewParallelTraceSource, NewStoreSource,
// NewCursorSource, or NewAllSource.
type Source interface{ source() }

type traceSource struct {
	tr       *trace.Trace
	parallel bool
}

type storeSource struct{ st *store.Store }

type cursorSource struct {
	numRanks int
	open     func(int) (trace.RecordCursor, error)
}

type allSource struct {
	numRanks int
	open     func() (trace.RecordCursor, error)
}

func (*traceSource) source()  {}
func (*storeSource) source()  {}
func (*cursorSource) source() {}
func (*allSource) source()    {}

// NewTraceSource plans over a materialized trace: per-rank slices with
// binary-searched bounds windows.
func NewTraceSource(tr *trace.Trace) Source { return &traceSource{tr: tr} }

// NewParallelTraceSource is NewTraceSource with the per-rank scans fanned
// out across GOMAXPROCS workers. Results are identical.
func NewParallelTraceSource(tr *trace.Trace) Source {
	return &traceSource{tr: tr, parallel: true}
}

// NewStoreSource plans over an opened store, using its persistent indexes
// when available and degrading to the full-scan stream otherwise.
func NewStoreSource(st *store.Store) Source { return &storeSource{st: st} }

// NewCursorSource plans over per-rank streaming cursors; open is called
// once per surviving rank (store.Records is directly assignable).
func NewCursorSource(numRanks int, open func(int) (trace.RecordCursor, error)) Source {
	return &cursorSource{numRanks: numRanks, open: open}
}

// NewAllSource plans over one all-ranks cursor opened at most once
// (store.All is directly assignable).
func NewAllSource(numRanks int, open func() (trace.RecordCursor, error)) Source {
	return &allSource{numRanks: numRanks, open: open}
}

// Plan binds the query to a source. Construction is cheap and does not
// read data; strategy selection happens per rank when the plan runs (and
// is previewed by Explain).
func (q *Query) Plan(src Source) *Plan { return &Plan{q: q, src: src} }

// Plan is one executable binding of a query to a source.
type Plan struct {
	q   *Query
	src Source
}

// Run executes the plan and returns the matching events in (rank, index)
// order — identical to filtering every record through Match, whatever
// strategy ran.
func (p *Plan) Run() ([]trace.EventID, error) {
	metrics().plans.Inc()
	switch s := p.src.(type) {
	case *traceSource:
		if s.parallel {
			return p.q.runTraceParallel(s.tr), nil
		}
		return p.q.runTrace(s.tr), nil
	case *storeSource:
		return p.runStore(s.st)
	case *cursorSource:
		return p.q.runCursors(s.numRanks, s.open)
	case *allSource:
		return p.q.runStreamAll(s.numRanks, s.open)
	}
	return nil, fmt.Errorf("query: unknown plan source %T", p.src)
}

// seekEdge describes the one indexed seek a query's bounds justify for a
// rank: the tightest sound lower edge, or a plain rank seek when the
// bounds give none.
type seekEdge struct {
	kind   string // "marker", "time", or "rank"
	marker uint64
	time   int64
}

// seekEdgeFor derives the seek from the bounds. Marker edges win over time
// edges when both exist (either is sound; marker checkpoints are exact on
// the same axis FindMarker uses). A marker edge must be positive: the seek
// contract is "every skipped record has Marker < from" on the uint64 axis,
// which matches the int64 bounds comparison only for positive edges.
func (q *Query) seekEdgeFor() seekEdge {
	b := q.b
	if !b.marker.full() && b.marker.lo > 0 {
		return seekEdge{kind: "marker", marker: uint64(b.marker.lo)}
	}
	if !b.start.full() && b.start.lo > math.MinInt64 {
		return seekEdge{kind: "time", time: b.start.lo}
	}
	return seekEdge{kind: "rank"}
}

func (e seekEdge) String() string {
	switch e.kind {
	case "marker":
		return fmt.Sprintf("seek marker>=%d", e.marker)
	case "time":
		return fmt.Sprintf("seek start>=%d", e.time)
	}
	return "seek rank head"
}

// runStore executes against a store: per-rank index seeks when sidecars
// validated, the exact single-pass full-scan semantics otherwise.
func (p *Plan) runStore(st *store.Store) ([]trace.EventID, error) {
	ix := st.Indexes()
	if !ix.Available() {
		metrics().planScans.Inc()
		return p.q.runStreamAll(st.NumRanks(), st.All)
	}
	q := p.q
	m := metrics()
	m.queries.Inc()
	b := q.b
	edge := q.seekEdgeFor()
	var out []trace.EventID
	for rank := 0; rank < st.NumRanks(); rank++ {
		if int64(rank) < b.rank.lo || int64(rank) > b.rank.hi {
			m.ranksPruned.Inc()
			continue
		}
		m.ranksScan.Inc()
		m.planIndexedRanks.Inc()
		var (
			c   store.OrdCursor
			err error
		)
		switch edge.kind {
		case "marker":
			c, err = ix.SeekMarker(rank, edge.marker)
		case "time":
			c, err = ix.SeekTime(rank, edge.time)
		default:
			c, err = ix.SeekRank(rank)
		}
		if err != nil {
			return nil, err
		}
		out, err = q.runOrdCursor(rank, c, out)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// runOrdCursor is runRankStream over an ordinal-carrying cursor: the same
// skip-below / retire-past window logic, with event indexes taken from the
// cursor (which may have started mid-file) instead of counted from zero.
func (q *Query) runOrdCursor(rank int, c store.OrdCursor, out []trace.EventID) ([]trace.EventID, error) {
	defer c.Close()
	b := q.b
	m := metrics()
	var evaluated, skipped, matched uint64
	for {
		rec, i, err := c.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if (!b.start.full() && rec.Start > b.start.hi) ||
			(!b.marker.full() && int64(rec.Marker) > b.marker.hi) {
			break
		}
		if (!b.start.full() && rec.Start < b.start.lo) ||
			(!b.marker.full() && int64(rec.Marker) < b.marker.lo) {
			skipped++
			continue
		}
		evaluated++
		if q.expr.eval(rec) {
			out = append(out, trace.EventID{Rank: rank, Index: i})
			matched++
		}
	}
	if evaluated > 0 {
		m.recsEval.Add(evaluated)
	}
	m.recsSkipped.Add(skipped)
	m.matches.Add(matched)
	return out, nil
}

// Explain renders the plan's decisions without executing it: the source
// shape, the strategy each class of rank gets, and the bounds driving the
// pruning. The store case reflects the store's actual negotiated
// capability (it triggers sidecar discovery if that has not run yet).
func (p *Plan) Explain() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "query: %s\n", p.q.src)
	b := p.q.b
	var bs []string
	if !b.rank.full() {
		bs = append(bs, spanString("rank", b.rank))
	}
	if !b.start.full() {
		bs = append(bs, spanString("start", b.start))
	}
	if !b.marker.full() {
		bs = append(bs, spanString("marker", b.marker))
	}
	if len(bs) > 0 {
		fmt.Fprintf(&sb, "bounds: %s\n", strings.Join(bs, " "))
	}
	switch s := p.src.(type) {
	case *traceSource:
		if s.parallel {
			sb.WriteString("source: materialized trace\nstrategy: pruned scan (parallel)\n")
		} else {
			sb.WriteString("source: materialized trace\nstrategy: pruned scan\n")
		}
		p.explainRanks(&sb, s.tr.NumRanks(), "binary-searched window")
	case *cursorSource:
		sb.WriteString("source: per-rank cursors\nstrategy: pruned stream\n")
		p.explainRanks(&sb, s.numRanks, "stream window")
	case *allSource:
		sb.WriteString("source: all-ranks cursor\nstrategy: single-pass pruned stream\n")
		p.explainRanks(&sb, s.numRanks, "stream window")
	case *storeSource:
		ix := s.st.Indexes()
		if !ix.Available() {
			fmt.Fprintf(&sb, "source: store %s\nstrategy: full scan (%s)\n",
				s.st.Info().Path, ix.Reason())
			p.explainRanks(&sb, s.st.NumRanks(), "stream window")
			break
		}
		fmt.Fprintf(&sb, "source: store %s (indexed)\nstrategy: index\n", s.st.Info().Path)
		p.explainRanks(&sb, s.st.NumRanks(), p.q.seekEdgeFor().String())
	}
	return strings.TrimRight(sb.String(), "\n")
}

// explainRanks summarizes the per-rank fate under the current bounds.
func (p *Plan) explainRanks(sb *strings.Builder, numRanks int, scanned string) {
	b := p.q.b
	pruned := 0
	for rank := 0; rank < numRanks; rank++ {
		if int64(rank) < b.rank.lo || int64(rank) > b.rank.hi {
			pruned++
		}
	}
	fmt.Fprintf(sb, "ranks: %d total, %d pruned, %d %s\n",
		numRanks, pruned, numRanks-pruned, scanned)
}

func spanString(name string, s span) string {
	lo, hi := "-inf", "+inf"
	if s.lo != math.MinInt64 {
		lo = fmt.Sprint(s.lo)
	}
	if s.hi != math.MaxInt64 {
		hi = fmt.Sprint(s.hi)
	}
	return fmt.Sprintf("%s=[%s,%s]", name, lo, hi)
}

// runTrace is the materialized executor: per-rank record slices with
// binary-searched bounds windows (the body Run always had).
func (q *Query) runTrace(tr *trace.Trace) []trace.EventID {
	metrics().queries.Inc()
	var out []trace.EventID
	for rank := 0; rank < tr.NumRanks(); rank++ {
		out = q.runRank(tr, rank, out)
	}
	return out
}
