package query

import (
	"sync/atomic"

	"tracedbg/internal/obs"
)

// queryMetrics is the package's self-observability set. Per-record work is
// accounted with window-sized Adds in runRank (one atomic add per rank per
// query), never per-record increments, so instrumented queries stay as fast
// as uninstrumented ones.
type queryMetrics struct {
	queries     *obs.Counter
	ranksScan   *obs.Counter
	ranksPruned *obs.Counter
	recsEval    *obs.Counter
	recsSkipped *obs.Counter
	matches     *obs.Counter

	plans            *obs.Counter
	planIndexedRanks *obs.Counter
	planScans        *obs.Counter

	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheEvictions *obs.Counter
	cacheEntries   *obs.Gauge

	resultHits   *obs.Counter
	resultMisses *obs.Counter
}

func newQueryMetrics(r *obs.Registry) *queryMetrics {
	return &queryMetrics{
		queries: r.Counter("tracedbg_query_runs_total",
			"query executions (Run or RunParallel)"),
		ranksScan: r.Counter("tracedbg_query_ranks_scanned_total",
			"per-rank scans whose index window was evaluated"),
		ranksPruned: r.Counter("tracedbg_query_ranks_pruned_total",
			"per-rank scans skipped entirely by the bounds analysis"),
		recsEval: r.Counter("tracedbg_query_records_evaluated_total",
			"records run through the full predicate"),
		recsSkipped: r.Counter("tracedbg_query_records_skipped_total",
			"records excluded by binary-searched index windows without evaluation"),
		matches: r.Counter("tracedbg_query_matches_total",
			"records that satisfied a query"),
		plans: r.Counter("tracedbg_query_plans_total",
			"query plans executed (all sources and strategies)"),
		planIndexedRanks: r.Counter("tracedbg_query_plan_indexed_ranks_total",
			"per-rank executions answered by persistent-index seeks"),
		planScans: r.Counter("tracedbg_query_plan_scans_total",
			"store plans that fell back to the full-scan stream"),
		cacheHits: r.Counter("tracedbg_query_cache_hits_total",
			"compilations served from the query cache"),
		cacheMisses: r.Counter("tracedbg_query_cache_misses_total",
			"compilations the cache had to perform"),
		cacheEvictions: r.Counter("tracedbg_query_cache_evictions_total",
			"entries evicted from the query cache at capacity"),
		cacheEntries: r.Gauge("tracedbg_query_cache_entries",
			"entries currently held by query caches"),
		resultHits: r.Counter("tracedbg_query_result_cache_hits_total",
			"query executions served from the result cache"),
		resultMisses: r.Counter("tracedbg_query_result_cache_misses_total",
			"query executions the result cache had to run"),
	}
}

var queryObs atomic.Pointer[queryMetrics]

func init() { queryObs.Store(newQueryMetrics(obs.Default())) }

// SetObsRegistry re-points the package's metrics at a registry (obs.Nop()
// disables them); restore with SetObsRegistry(obs.Default()).
func SetObsRegistry(r *obs.Registry) {
	queryObs.Store(newQueryMetrics(r))
}

func metrics() *queryMetrics { return queryObs.Load() }
