package query

import (
	"testing"

	"tracedbg/internal/trace"
)

func sampleTrace() *trace.Trace {
	tr := trace.New(2)
	tr.MustAppend(trace.Record{Kind: trace.KindFuncEntry, Rank: 0, Marker: 1, Name: "MatrSend",
		Loc: trace.Location{File: "strassen.go", Line: 150, Func: "MatrSend"}})
	tr.MustAppend(trace.Record{Kind: trace.KindSend, Rank: 0, Marker: 2, Start: 1, End: 2,
		Src: 0, Dst: 1, Tag: 7, Bytes: 128, MsgID: 1, Name: "Send",
		Loc: trace.Location{File: "strassen.go", Line: 161, Func: "MatrSend"}})
	tr.MustAppend(trace.Record{Kind: trace.KindRecv, Rank: 1, Marker: 1, Start: 0, End: 3,
		Src: 0, Dst: 1, Tag: 7, Bytes: 128, MsgID: 1, WasWildcard: true, Name: "Recv"})
	tr.MustAppend(trace.Record{Kind: trace.KindCompute, Rank: 1, Marker: 2, Start: 3, End: 10})
	return tr
}

func mustRun(t *testing.T, q string) []trace.EventID {
	t.Helper()
	c, err := Compile(q)
	if err != nil {
		t.Fatalf("compile %q: %v", q, err)
	}
	return c.Run(sampleTrace())
}

func TestBasicQueries(t *testing.T) {
	cases := []struct {
		q    string
		want int
	}{
		{"kind = send", 1},
		{"kind != send", 3},
		{"rank = 0", 2},
		{"rank = 1 && kind = compute", 1},
		{"tag = 7", 2},
		{"bytes > 100", 2},
		{"bytes >= 128 && bytes <= 128", 2},
		{"marker < 2", 2},
		{"wildcard", 1},
		{"message", 2},
		{"!message", 2},
		{"name =~ \"Matr\"", 1},
		{"func = \"MatrSend\"", 2},
		{"file =~ \"strassen\"", 2},
		{"line = 161", 1},
		{"(rank = 0 || rank = 1) && kind = recv", 1},
		{"kind = send || kind = recv", 2},
		{"!(kind = send || kind = recv)", 2},
		{"end > 2 && start < 5", 2},
		{"msgid = 1", 2},
		{"dst = 1 && src = 0", 2},
	}
	for _, c := range cases {
		if got := len(mustRun(t, c.q)); got != c.want {
			t.Errorf("query %q matched %d, want %d", c.q, got, c.want)
		}
	}
}

func TestPrecedence(t *testing.T) {
	// && binds tighter than ||.
	a := len(mustRun(t, "rank = 1 || rank = 0 && kind = send"))
	b := len(mustRun(t, "rank = 1 || (rank = 0 && kind = send)"))
	c := len(mustRun(t, "(rank = 1 || rank = 0) && kind = send"))
	if a != b {
		t.Errorf("precedence: %d vs %d", a, b)
	}
	if a == c {
		t.Errorf("parenthesization had no effect (%d)", a)
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"",
		"kind =",
		"kind = bogus",
		"unknownfield = 3",
		"rank = \"zero\"",
		"name < \"a\"",
		"rank =~ 3",
		"(rank = 1",
		"rank = 1 extra",
		"rank = 1 &&",
		"kind > send",
		"name = ",
		"rank ? 3",
		"\"unterminated",
		"rank = 99999999999999999999999",
	}
	for _, q := range bad {
		if _, err := Compile(q); err == nil {
			t.Errorf("query %q compiled unexpectedly", q)
		}
	}
}

func TestKindNamesComplete(t *testing.T) {
	for _, name := range []string{
		"funcentry", "funcexit", "regionbegin", "regionend", "compute",
		"send", "recv", "collective", "blocked", "marker", "checkpoint",
	} {
		if _, err := Compile("kind = " + name); err != nil {
			t.Errorf("kind %q rejected: %v", name, err)
		}
	}
	// Case-insensitive.
	if _, err := Compile("kind = SEND"); err != nil {
		t.Errorf("upper-case kind rejected: %v", err)
	}
}

func TestMatchSingleRecord(t *testing.T) {
	q, err := Compile("kind = blocked && src = 3")
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.Record{Kind: trace.KindBlocked, Src: 3}
	if !q.Match(&rec) {
		t.Error("match failed")
	}
	rec.Src = 4
	if q.Match(&rec) {
		t.Error("match should fail")
	}
	if q.String() != "kind = blocked && src = 3" {
		t.Errorf("String = %q", q.String())
	}
}

func TestNegativeNumbers(t *testing.T) {
	// src = -1 finds records with NoRank endpoints.
	q, err := Compile("src = -1")
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.Record{Kind: trace.KindCompute, Src: trace.NoRank}
	if !q.Match(&rec) {
		t.Error("negative comparison failed")
	}
}

func TestDurationField(t *testing.T) {
	// The recv in the sample spans 0..3; the compute 3..10.
	if got := len(mustRun(t, "dur >= 7")); got != 1 {
		t.Errorf("dur >= 7 matched %d", got)
	}
	if got := len(mustRun(t, "dur = 0")); got != 1 { // the zero-length entry
		t.Errorf("dur = 0 matched %d", got)
	}
}
