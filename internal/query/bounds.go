package query

import (
	"math"
	"runtime"
	"sort"
	"sync"

	"tracedbg/internal/trace"
)

// Bounds analysis
//
// A compiled query implies, for the indexable fields (rank, start, marker),
// a conservative interval outside which no record can match. Run uses those
// intervals to prune: whole ranks are skipped, and within a rank the per-rank
// Start monotonicity (and the nondecreasing-marker invariant FindMarker
// already relies on) turn the interval into a binary-searched index window,
// so only candidate records are evaluated. Pruning never changes results:
// every surviving record still goes through the full predicate.

// span is an inclusive interval; lo > hi means empty.
type span struct{ lo, hi int64 }

var fullSpan = span{math.MinInt64, math.MaxInt64}

func (s span) empty() bool { return s.lo > s.hi }
func (s span) full() bool  { return s == fullSpan }

func (s span) intersect(o span) span {
	if o.lo > s.lo {
		s.lo = o.lo
	}
	if o.hi < s.hi {
		s.hi = o.hi
	}
	return s
}

// hull is the smallest span covering both (the union need not be contiguous).
func (s span) hull(o span) span {
	if s.empty() {
		return o
	}
	if o.empty() {
		return s
	}
	if o.lo < s.lo {
		s.lo = o.lo
	}
	if o.hi > s.hi {
		s.hi = o.hi
	}
	return s
}

// bounds are the per-field spans a record must lie in to possibly match.
type bounds struct{ rank, start, marker span }

var fullBounds = bounds{rank: fullSpan, start: fullSpan, marker: fullSpan}

func (b bounds) empty() bool { return b.rank.empty() || b.start.empty() || b.marker.empty() }

func (b bounds) intersect(o bounds) bounds {
	return bounds{
		rank:   b.rank.intersect(o.rank),
		start:  b.start.intersect(o.start),
		marker: b.marker.intersect(o.marker),
	}
}

func (b bounds) hull(o bounds) bounds {
	if b.empty() {
		return o
	}
	if o.empty() {
		return b
	}
	return bounds{
		rank:   b.rank.hull(o.rank),
		start:  b.start.hull(o.start),
		marker: b.marker.hull(o.marker),
	}
}

// cmpSpan converts one numeric comparison into a span.
func cmpSpan(op string, v int64) span {
	switch op {
	case "=":
		return span{v, v}
	case "<":
		if v == math.MinInt64 {
			return span{1, 0} // empty
		}
		return span{math.MinInt64, v - 1}
	case "<=":
		return span{math.MinInt64, v}
	case ">":
		if v == math.MaxInt64 {
			return span{1, 0}
		}
		return span{v + 1, math.MaxInt64}
	case ">=":
		return span{v, math.MaxInt64}
	}
	return fullSpan // != and anything else prune nothing
}

// analyze computes conservative bounds for an expression tree. Anything it
// does not understand (negation, string matches, flags) contributes the full
// space, keeping the analysis sound.
func analyze(e expr) bounds {
	switch x := e.(type) {
	case andExpr:
		return analyze(x.l).intersect(analyze(x.r))
	case orExpr:
		return analyze(x.l).hull(analyze(x.r))
	case intExpr:
		b := fullBounds
		switch x.field {
		case "rank":
			b.rank = cmpSpan(x.op, x.val)
		case "start":
			b.start = cmpSpan(x.op, x.val)
		case "marker":
			b.marker = cmpSpan(x.op, x.val)
		}
		return b
	}
	return fullBounds
}

// runRank appends the rank's matching events to out, using the bounds to
// binary-search the candidate index window instead of scanning everything.
func (q *Query) runRank(tr *trace.Trace, rank int, out []trace.EventID) []trace.EventID {
	b := q.b
	m := metrics()
	if int64(rank) < b.rank.lo || int64(rank) > b.rank.hi {
		m.ranksPruned.Inc()
		return out
	}
	m.ranksScan.Inc()
	recs := tr.Rank(rank)
	lo, hi := 0, len(recs)
	if !b.start.full() {
		lo = sort.Search(len(recs), func(i int) bool { return recs[i].Start >= b.start.lo })
		hi = sort.Search(len(recs), func(i int) bool { return recs[i].Start > b.start.hi })
	}
	if !b.marker.full() {
		// Markers are nondecreasing per rank (the FindMarker invariant) and
		// in practice well below 2^63, so int64 order matches uint64 order.
		mlo := sort.Search(len(recs), func(i int) bool { return int64(recs[i].Marker) >= b.marker.lo })
		mhi := sort.Search(len(recs), func(i int) bool { return int64(recs[i].Marker) > b.marker.hi })
		if mlo > lo {
			lo = mlo
		}
		if mhi < hi {
			hi = mhi
		}
	}
	before := len(out)
	for i := lo; i < hi; i++ {
		if q.expr.eval(&recs[i]) {
			out = append(out, trace.EventID{Rank: rank, Index: i})
		}
	}
	if hi > lo {
		m.recsEval.Add(uint64(hi - lo))
	}
	m.recsSkipped.Add(uint64(len(recs) - max(hi-lo, 0)))
	m.matches.Add(uint64(len(out) - before))
	return out
}

// RunParallel is Run with the per-rank scans fanned out across GOMAXPROCS
// workers. The result is identical to Run: per-rank matches are produced
// independently and concatenated in rank order.
//
// Deprecated: RunParallel is a shim over the planner — use
// q.Plan(NewParallelTraceSource(tr)).Run(). It remains exported for one
// release; new call sites are rejected by scripts/lint-queries.sh.
func (q *Query) RunParallel(tr *trace.Trace) []trace.EventID {
	return q.runTraceParallel(tr)
}

// runTraceParallel is the parallel materialized executor behind
// NewParallelTraceSource plans and the RunParallel shim.
func (q *Query) runTraceParallel(tr *trace.Trace) []trace.EventID {
	n := tr.NumRanks()
	nw := runtime.GOMAXPROCS(0)
	if nw > n {
		nw = n
	}
	if nw <= 1 {
		return q.runTrace(tr)
	}
	metrics().queries.Inc()
	perRank := make([][]trace.EventID, n)
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rank := w; rank < n; rank += nw {
				perRank[rank] = q.runRank(tr, rank, nil)
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, ids := range perRank {
		total += len(ids)
	}
	out := make([]trace.EventID, 0, total)
	for _, ids := range perRank {
		out = append(out, ids...)
	}
	return out
}
