package query

import (
	"io"

	"tracedbg/internal/trace"
)

// RunStream evaluates the query over streaming per-rank cursors instead of
// a materialized trace, in O(chunk) memory. open is called once per rank
// (store.Records is directly assignable) and each cursor is closed before
// the next rank opens. The result is identical to Run over the same
// records: event ids carry the record's ordinal position in its rank.
//
// Pruning differs in mechanism, not in result: bounds still skip whole
// ranks, and within a rank the start/marker windows skip records before the
// window and stop the scan past it (per-rank Start and marker
// monotonicity), but there is no binary search — skipped records are still
// read from the stream. The records-skipped metric therefore counts only
// records the stream actually saw.
// Deprecated: RunStream is a shim over the planner — use
// q.Plan(NewCursorSource(numRanks, open)).Run(). It remains exported for
// one release; new call sites are rejected by scripts/lint-queries.sh.
func (q *Query) RunStream(numRanks int, open func(int) (trace.RecordCursor, error)) ([]trace.EventID, error) {
	return q.runCursors(numRanks, open)
}

// runCursors is the per-rank streaming executor behind NewCursorSource
// plans and the RunStream shim.
func (q *Query) runCursors(numRanks int, open func(int) (trace.RecordCursor, error)) ([]trace.EventID, error) {
	m := metrics()
	m.queries.Inc()
	var out []trace.EventID
	for rank := 0; rank < numRanks; rank++ {
		var err error
		out, err = q.runRankStream(rank, open, out)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RunStreamAll evaluates the query in a single pass over one all-ranks
// cursor (store.All is directly assignable as open), instead of RunStream's
// one full file scan per rank. The result is identical to RunStream over
// per-rank cursors of the same store: event ids carry each record's ordinal
// position within its rank, and matches are reported rank-major.
//
// Bounds pruning keeps its RunStream semantics per rank — ranks outside the
// rank window are never evaluated, and within a rank the contiguous
// start/marker window skips records before it and retires the rank past it.
// The scan ends early once every rank is pruned or retired. Memory is
// O(matches + numRanks) on top of the cursor's own footprint, which is what
// lets a query over an mmap-backed store run without materializing anything.
// Deprecated: RunStreamAll is a shim over the planner — use
// q.Plan(NewAllSource(numRanks, open)).Run(). It remains exported for one
// release; new call sites are rejected by scripts/lint-queries.sh.
func (q *Query) RunStreamAll(numRanks int, open func() (trace.RecordCursor, error)) ([]trace.EventID, error) {
	return q.runStreamAll(numRanks, open)
}

// runStreamAll is the single-pass streaming executor behind NewAllSource
// plans, store full-scan fallbacks, and the RunStreamAll shim.
func (q *Query) runStreamAll(numRanks int, open func() (trace.RecordCursor, error)) ([]trace.EventID, error) {
	m := metrics()
	m.queries.Inc()
	b := q.b
	if numRanks < 0 {
		numRanks = 0
	}
	done := make([]bool, numRanks) // pruned, or retired past its bounds window
	idx := make([]int, numRanks)   // next ordinal within the rank
	perRank := make([][]trace.EventID, numRanks)
	active := 0
	for rank := 0; rank < numRanks; rank++ {
		if int64(rank) < b.rank.lo || int64(rank) > b.rank.hi {
			m.ranksPruned.Inc()
			done[rank] = true
			continue
		}
		m.ranksScan.Inc()
		active++
	}
	var out []trace.EventID
	if active == 0 {
		return out, nil
	}
	c, err := open()
	if err != nil {
		return nil, err
	}
	defer c.Close()
	var evaluated, skipped, matched uint64
scan:
	for {
		rec, err := c.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		rank := rec.Rank
		if rank < 0 || rank >= numRanks {
			continue
		}
		i := idx[rank]
		idx[rank]++
		if done[rank] {
			// RunStream's per-rank cursor would have stopped (or never
			// started) reading here; the shared cursor cannot, so the record
			// is discarded without counting it as seen.
			continue
		}
		// Start and markers are nondecreasing within a rank, so the bounds
		// window is a contiguous run per rank: records before it are
		// skipped, records past it retire the rank.
		if (!b.start.full() && rec.Start > b.start.hi) ||
			(!b.marker.full() && int64(rec.Marker) > b.marker.hi) {
			done[rank] = true
			if active--; active == 0 {
				break scan
			}
			continue
		}
		if (!b.start.full() && rec.Start < b.start.lo) ||
			(!b.marker.full() && int64(rec.Marker) < b.marker.lo) {
			skipped++
			continue
		}
		evaluated++
		if q.expr.eval(rec) {
			perRank[rank] = append(perRank[rank], trace.EventID{Rank: rank, Index: i})
			matched++
		}
	}
	if evaluated > 0 {
		m.recsEval.Add(evaluated)
	}
	m.recsSkipped.Add(skipped)
	m.matches.Add(matched)
	for rank := range perRank {
		out = append(out, perRank[rank]...)
	}
	return out, nil
}

func (q *Query) runRankStream(rank int, open func(int) (trace.RecordCursor, error), out []trace.EventID) ([]trace.EventID, error) {
	b := q.b
	m := metrics()
	if int64(rank) < b.rank.lo || int64(rank) > b.rank.hi {
		m.ranksPruned.Inc()
		return out, nil
	}
	m.ranksScan.Inc()
	c, err := open(rank)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	var evaluated, skipped, matched uint64
	for i := 0; ; i++ {
		rec, err := c.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		// Start and markers are nondecreasing within a rank, so the bounds
		// window is a contiguous run: records before it are skipped,
		// records past it end the scan.
		if (!b.start.full() && rec.Start > b.start.hi) ||
			(!b.marker.full() && int64(rec.Marker) > b.marker.hi) {
			break
		}
		if (!b.start.full() && rec.Start < b.start.lo) ||
			(!b.marker.full() && int64(rec.Marker) < b.marker.lo) {
			skipped++
			continue
		}
		evaluated++
		if q.expr.eval(rec) {
			out = append(out, trace.EventID{Rank: rank, Index: i})
			matched++
		}
	}
	if evaluated > 0 {
		m.recsEval.Add(evaluated)
	}
	m.recsSkipped.Add(skipped)
	m.matches.Add(matched)
	return out, nil
}
