// Package instr implements the paper's three history-acquisition strategies
// on top of the mp runtime:
//
//  1. construct-level instrumentation (the AIMS source-to-source analogue):
//     explicit Region/Construct calls with arbitrary resolution;
//  2. function-level instrumentation (the uinst/UserMonitor analogue): a
//     call at the top of every application function that increments the
//     per-process execution-marker counter, records the call site and the
//     first two arguments, and gives the debugger a control point;
//  3. communication wrappers (the PMPI profiling-interface analogue): an
//     mp.Hook that records every message-passing operation.
//
// All three feed the same Monitor, so every event carries an execution
// marker and passes through the same control point — which is what makes
// marker-threshold replay uniform across strategies.
package instr

import (
	"sync/atomic"

	"tracedbg/internal/mp"
	"tracedbg/internal/trace"
)

// ControlFunc is the debugger's control point. It runs synchronously on the
// rank's goroutine immediately after each event is generated; the debugger
// blocks inside it to stop the process (breakpoints, stoplines, stepping).
type ControlFunc func(p *mp.Proc, rec *trace.Record)

// Monitor is the UserMonitor analogue: it owns the per-rank execution-marker
// counters, the collection toggle, and the control point.
type Monitor struct {
	counters []atomic.Uint64
	collect  []atomic.Bool
	control  atomic.Pointer[ControlFunc]
}

// NewMonitor creates a monitor for numRanks processes with collection
// enabled everywhere.
func NewMonitor(numRanks int) *Monitor {
	m := &Monitor{
		counters: make([]atomic.Uint64, numRanks),
		collect:  make([]atomic.Bool, numRanks),
	}
	for i := range m.collect {
		m.collect[i].Store(true)
	}
	return m
}

// NumRanks returns the number of ranks the monitor covers.
func (m *Monitor) NumRanks() int { return len(m.counters) }

// SetControl installs the debugger's control point (nil removes it).
func (m *Monitor) SetControl(f ControlFunc) {
	if f == nil {
		m.control.Store(nil)
		return
	}
	m.control.Store(&f)
}

// Counter returns the current execution-marker counter of a rank.
func (m *Monitor) Counter(rank int) uint64 {
	if rank < 0 || rank >= len(m.counters) {
		return 0
	}
	return m.counters[rank].Load()
}

// Counters returns a snapshot of all counters — the marker vector the undo
// operation records at every stop.
func (m *Monitor) Counters() []uint64 {
	out := make([]uint64, len(m.counters))
	for i := range m.counters {
		out[i] = m.counters[i].Load()
	}
	return out
}

// SetCollect toggles trace collection for one rank. Markers keep advancing
// while collection is off (replay positions stay exact); only sink emission
// is suppressed, which is how the paper bounds trace-file size.
func (m *Monitor) SetCollect(rank int, on bool) {
	if rank >= 0 && rank < len(m.collect) {
		if was := m.collect[rank].Swap(on); was != on {
			metrics().collectFlips.Inc()
		}
	}
}

// Collecting reports whether a rank's events are being recorded.
func (m *Monitor) Collecting(rank int) bool {
	return rank >= 0 && rank < len(m.collect) && m.collect[rank].Load()
}

// tick advances the rank's marker counter, stamps and (if collecting) emits
// the record, then runs the control point. It is the single path every
// instrumentation strategy funnels through.
func (m *Monitor) tick(p *mp.Proc, rec *trace.Record, sink Sink) {
	rank := rec.Rank
	seq := m.counters[rank].Add(1)
	rec.Marker = seq
	om := metrics()
	om.ticks.Inc(rank)
	if sink != nil && m.collect[rank].Load() {
		sink.Emit(rec)
		om.emitted.Inc(rank)
	} else {
		om.suppressed.Inc(rank)
	}
	if f := m.control.Load(); f != nil {
		(*f)(p, rec)
	}
}
