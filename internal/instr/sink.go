package instr

import (
	"io"
	"sync"

	"tracedbg/internal/trace"
)

// Sink consumes event records as they are generated. Implementations must be
// safe for concurrent use by all rank goroutines.
type Sink interface {
	Emit(rec *trace.Record)
}

// MemorySink accumulates records into an in-memory trace.
type MemorySink struct {
	mu sync.Mutex
	tr *trace.Trace
	// err remembers the first structurally invalid record; the runtime
	// never produces one, so a non-nil err indicates an instrumentation bug.
	err error
}

// NewMemorySink creates a sink for numRanks ranks.
func NewMemorySink(numRanks int) *MemorySink {
	return &MemorySink{tr: trace.New(numRanks)}
}

// Emit implements Sink.
func (s *MemorySink) Emit(rec *trace.Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.tr.Append(*rec); err != nil && s.err == nil {
		s.err = err
	}
}

// Trace returns the collected trace. Call only after the world has finished
// (or while all ranks are stopped); the returned trace is the live one.
func (s *MemorySink) Trace() *trace.Trace {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tr
}

// Snapshot returns a deep copy of the trace collected so far; safe to use
// while rank goroutines are still emitting.
func (s *MemorySink) Snapshot() *trace.Trace {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tr.Clone()
}

// Err returns the first append error, if any record was rejected.
func (s *MemorySink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// FileSink streams records to a trace file with on-demand flushing.
type FileSink struct {
	fw *trace.FileWriter

	mu  sync.Mutex
	err error
}

// NewFileSink writes a trace-file header for numRanks ranks to w.
func NewFileSink(w io.Writer, numRanks int) (*FileSink, error) {
	fw, err := trace.NewFileWriter(w, numRanks)
	if err != nil {
		return nil, err
	}
	return &FileSink{fw: fw}, nil
}

// Emit implements Sink.
func (s *FileSink) Emit(rec *trace.Record) {
	if err := s.fw.Write(rec); err != nil {
		s.mu.Lock()
		if s.err == nil {
			s.err = err
		}
		s.mu.Unlock()
	}
}

// Flush forces buffered records to the underlying writer — the monitor
// flush-on-demand the debugger uses to read history mid-execution.
func (s *FileSink) Flush() error { return s.fw.Flush() }

// Err returns the first write error encountered.
func (s *FileSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// TeeSink duplicates records to several sinks.
type TeeSink []Sink

// Emit implements Sink.
func (t TeeSink) Emit(rec *trace.Record) {
	for _, s := range t {
		s.Emit(rec)
	}
}

// NullSink discards records; used to measure pure marker overhead.
type NullSink struct{}

// Emit implements Sink.
func (NullSink) Emit(*trace.Record) {}

// FilterSink forwards only records satisfying Keep — the selective
// instrumentation mechanism (record only communication constructs, only a
// particular function, ...).
type FilterSink struct {
	Keep func(*trace.Record) bool
	Next Sink
}

// Emit implements Sink.
func (f FilterSink) Emit(rec *trace.Record) {
	if f.Keep == nil || f.Keep(rec) {
		f.Next.Emit(rec)
	}
}
