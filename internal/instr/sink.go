package instr

import (
	"fmt"
	"io"
	"sync"

	"tracedbg/internal/trace"
)

// Sink consumes event records as they are generated. Implementations must be
// safe for concurrent use by all rank goroutines.
type Sink interface {
	Emit(rec *trace.Record)
}

// MemorySink accumulates records into an in-memory trace. Each rank appends
// into a private shard under its own mutex, so rank goroutines never contend
// with each other on the hot path.
type MemorySink struct {
	shards []memShard

	mu sync.Mutex
	// err remembers the first structurally invalid record; the runtime
	// never produces one, so a non-nil err indicates an instrumentation bug.
	err error
}

type memShard struct {
	mu   sync.Mutex
	recs []trace.Record
	_    [40]byte // pad to reduce false sharing between shards
}

// NewMemorySink creates a sink for numRanks ranks.
func NewMemorySink(numRanks int) *MemorySink {
	if numRanks < 0 {
		numRanks = 0
	}
	return &MemorySink{shards: make([]memShard, numRanks)}
}

// Emit implements Sink.
func (s *MemorySink) Emit(rec *trace.Record) {
	if rec.Rank < 0 || rec.Rank >= len(s.shards) {
		s.fail(fmt.Errorf("trace: record rank %d out of range [0,%d)", rec.Rank, len(s.shards)))
		return
	}
	sh := &s.shards[rec.Rank]
	sh.mu.Lock()
	if n := len(sh.recs); n > 0 && sh.recs[n-1].Start > rec.Start {
		prev := sh.recs[n-1].Start
		sh.mu.Unlock()
		s.fail(fmt.Errorf("trace: rank %d record start %d precedes previous start %d",
			rec.Rank, rec.Start, prev))
		return
	}
	sh.recs = append(sh.recs, *rec)
	sh.mu.Unlock()
}

func (s *MemorySink) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

// Trace returns the collected trace. Call only after the world has finished
// (or while all ranks are stopped); the returned trace aliases the live
// per-rank slices.
func (s *MemorySink) Trace() *trace.Trace {
	byRank := make([][]trace.Record, len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		byRank[i] = sh.recs
		sh.mu.Unlock()
	}
	return trace.FromRanks(byRank)
}

// Snapshot returns a deep copy of the trace collected so far; safe to use
// while rank goroutines are still emitting.
func (s *MemorySink) Snapshot() *trace.Trace {
	byRank := make([][]trace.Record, len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		byRank[i] = append([]trace.Record(nil), sh.recs...)
		sh.mu.Unlock()
	}
	return trace.FromRanks(byRank)
}

// Err returns the first append error, if any record was rejected.
func (s *MemorySink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// FileSink streams records to a trace file with on-demand flushing. Records
// are batched per rank by a sharded writer, so concurrent rank goroutines
// contend on the file mutex once per chunk instead of once per event.
type FileSink struct {
	sw *trace.ShardedWriter

	mu  sync.Mutex
	err error
}

// NewFileSink writes a trace-file header for numRanks ranks to w.
func NewFileSink(w io.Writer, numRanks int) (*FileSink, error) {
	sw, err := trace.NewShardedWriter(w, numRanks)
	if err != nil {
		return nil, err
	}
	return &FileSink{sw: sw}, nil
}

// Emit implements Sink.
func (s *FileSink) Emit(rec *trace.Record) {
	if err := s.sw.Write(rec); err != nil {
		s.mu.Lock()
		if s.err == nil {
			s.err = err
		}
		s.mu.Unlock()
	}
}

// Flush forces buffered records to the underlying writer — the monitor
// flush-on-demand the debugger uses to read history mid-execution.
func (s *FileSink) Flush() error { return s.sw.Flush() }

// Err returns the first write error encountered.
func (s *FileSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// TeeSink duplicates records to several sinks.
type TeeSink []Sink

// Emit implements Sink.
func (t TeeSink) Emit(rec *trace.Record) {
	for _, s := range t {
		s.Emit(rec)
	}
}

// NullSink discards records; used to measure pure marker overhead.
type NullSink struct{}

// Emit implements Sink.
func (NullSink) Emit(*trace.Record) {}

// FilterSink forwards only records satisfying Keep — the selective
// instrumentation mechanism (record only communication constructs, only a
// particular function, ...).
type FilterSink struct {
	Keep func(*trace.Record) bool
	Next Sink
}

// Emit implements Sink.
func (f FilterSink) Emit(rec *trace.Record) {
	if f.Keep == nil || f.Keep(rec) {
		f.Next.Emit(rec)
	}
}
