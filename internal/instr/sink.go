package instr

import (
	"fmt"
	"io"
	"sync"

	"tracedbg/internal/trace"
)

// Sink consumes event records as they are generated. Implementations must be
// safe for concurrent use by all rank goroutines.
type Sink interface {
	Emit(rec *trace.Record)
}

// MemorySink accumulates records into an in-memory trace. Each rank appends
// into a private shard under its own mutex, so rank goroutines never contend
// with each other on the hot path.
type MemorySink struct {
	shards []memShard

	mu sync.Mutex
	// err remembers the first structurally invalid record; the runtime
	// never produces one, so a non-nil err indicates an instrumentation bug.
	err error
}

type memShard struct {
	mu   sync.Mutex
	recs []trace.Record
	_    [40]byte // pad to reduce false sharing between shards
}

// NewMemorySink creates a sink for numRanks ranks.
func NewMemorySink(numRanks int) *MemorySink {
	if numRanks < 0 {
		numRanks = 0
	}
	return &MemorySink{shards: make([]memShard, numRanks)}
}

// Emit implements Sink.
func (s *MemorySink) Emit(rec *trace.Record) {
	if rec.Rank < 0 || rec.Rank >= len(s.shards) {
		s.fail(fmt.Errorf("trace: record rank %d out of range [0,%d)", rec.Rank, len(s.shards)))
		return
	}
	sh := &s.shards[rec.Rank]
	sh.mu.Lock()
	if n := len(sh.recs); n > 0 && sh.recs[n-1].Start > rec.Start {
		prev := sh.recs[n-1].Start
		sh.mu.Unlock()
		s.fail(fmt.Errorf("trace: rank %d record start %d precedes previous start %d",
			rec.Rank, rec.Start, prev))
		return
	}
	sh.recs = append(sh.recs, *rec)
	sh.mu.Unlock()
}

func (s *MemorySink) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

// Trace returns the collected trace. Call only after the world has finished
// (or while all ranks are stopped); the returned trace aliases the live
// per-rank slices.
func (s *MemorySink) Trace() *trace.Trace {
	byRank := make([][]trace.Record, len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		byRank[i] = sh.recs
		sh.mu.Unlock()
	}
	return trace.FromRanks(byRank)
}

// Snapshot returns a deep copy of the trace collected so far; safe to use
// while rank goroutines are still emitting.
func (s *MemorySink) Snapshot() *trace.Trace {
	byRank := make([][]trace.Record, len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		byRank[i] = append([]trace.Record(nil), sh.recs...)
		sh.mu.Unlock()
	}
	return trace.FromRanks(byRank)
}

// Err returns the first append error, if any record was rejected.
func (s *MemorySink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// FileSink streams records to a trace file with on-demand flushing. Each
// rank stages its events in a small rank-local buffer (one cache-line-padded
// shard per rank) and hands them to the sharded writer in WriteBatch runs of
// emitBatchSize, so the encode mutex and string-intern path are paid once
// per batch instead of once per event — and the sharded writer in turn
// batches encoded chunks into the shared file. Flush drains both layers.
type FileSink struct {
	sw     *trace.ShardedWriter
	shards []emitShard

	mu  sync.Mutex
	err error
}

// emitBatchSize is the depth of a rank's staging buffer — the drain cadence
// of emitBatch, and the batch size the write benchmarks mirror.
const emitBatchSize = 64

type emitShard struct {
	mu   sync.Mutex
	recs []trace.Record // staged events, cap emitBatchSize
	_    [40]byte       // pad to reduce false sharing between shards
}

// NewFileSink writes a trace-file header for numRanks ranks to w.
func NewFileSink(w io.Writer, numRanks int) (*FileSink, error) {
	sw, err := trace.NewShardedWriter(w, numRanks)
	if err != nil {
		return nil, err
	}
	if numRanks < 0 {
		numRanks = 0
	}
	s := &FileSink{sw: sw, shards: make([]emitShard, numRanks)}
	for i := range s.shards {
		s.shards[i].recs = make([]trace.Record, 0, emitBatchSize)
	}
	return s, nil
}

// Emit implements Sink. The record is copied into the rank's staging buffer
// (so the caller's pointer — typically a Ctx scratch slot — is not retained)
// and the buffer drains through emitBatch when full.
func (s *FileSink) Emit(rec *trace.Record) {
	if rec.Rank < 0 || rec.Rank >= len(s.shards) {
		// Route the stray record through the writer for its canonical
		// out-of-range error.
		s.setErr(s.sw.Write(rec))
		return
	}
	sh := &s.shards[rec.Rank]
	sh.mu.Lock()
	sh.recs = append(sh.recs, *rec)
	if len(sh.recs) >= emitBatchSize {
		err := s.emitBatch(sh, rec.Rank)
		sh.mu.Unlock()
		s.setErr(err)
		return
	}
	sh.mu.Unlock()
}

// emitBatch drains one rank's staging buffer into the sharded writer under
// a single WriteBatch call. Called with the shard mutex held.
func (s *FileSink) emitBatch(sh *emitShard, rank int) error {
	if len(sh.recs) == 0 {
		return nil
	}
	err := s.sw.WriteBatch(rank, sh.recs)
	sh.recs = sh.recs[:0]
	return err
}

func (s *FileSink) setErr(err error) {
	if err == nil {
		return
	}
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

// Flush forces buffered records to the underlying writer — the monitor
// flush-on-demand the debugger uses to read history mid-execution. Both
// staging layers drain: the per-rank record buffers, then the writer's
// encoded chunks.
func (s *FileSink) Flush() error {
	var first error
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		err := s.emitBatch(sh, i)
		sh.mu.Unlock()
		if err != nil && first == nil {
			first = err
		}
	}
	if err := s.sw.Flush(); err != nil && first == nil {
		first = err
	}
	s.setErr(first)
	return first
}

// Err returns the first write error encountered.
func (s *FileSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// TeeSink duplicates records to several sinks.
type TeeSink []Sink

// Emit implements Sink.
func (t TeeSink) Emit(rec *trace.Record) {
	for _, s := range t {
		s.Emit(rec)
	}
}

// NullSink discards records; used to measure pure marker overhead.
type NullSink struct{}

// Emit implements Sink.
func (NullSink) Emit(*trace.Record) {}

// FilterSink forwards only records satisfying Keep — the selective
// instrumentation mechanism (record only communication constructs, only a
// particular function, ...).
type FilterSink struct {
	Keep func(*trace.Record) bool
	Next Sink
}

// Emit implements Sink.
func (f FilterSink) Emit(rec *trace.Record) {
	if f.Keep == nil || f.Keep(rec) {
		f.Next.Emit(rec)
	}
}
