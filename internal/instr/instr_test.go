package instr

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"tracedbg/internal/mp"
	"tracedbg/internal/trace"
)

func TestMonitorCounters(t *testing.T) {
	m := NewMonitor(3)
	if m.NumRanks() != 3 {
		t.Fatalf("NumRanks = %d", m.NumRanks())
	}
	sink := NewMemorySink(3)
	rec := trace.Record{Kind: trace.KindMarker, Rank: 1}
	m.tick(nil, &rec, sink)
	m.tick(nil, &rec, sink)
	if m.Counter(1) != 2 || m.Counter(0) != 0 {
		t.Fatalf("counters = %v", m.Counters())
	}
	if m.Counter(-1) != 0 || m.Counter(99) != 0 {
		t.Error("out-of-range counter should be 0")
	}
	snap := m.Counters()
	if snap[0] != 0 || snap[1] != 2 || snap[2] != 0 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestMonitorCollectToggle(t *testing.T) {
	m := NewMonitor(2)
	sink := NewMemorySink(2)
	rec := func() *trace.Record { return &trace.Record{Kind: trace.KindMarker, Rank: 0} }
	m.tick(nil, rec(), sink)
	m.SetCollect(0, false)
	if m.Collecting(0) {
		t.Error("collect should be off")
	}
	m.tick(nil, rec(), sink) // marker advances, record suppressed
	m.SetCollect(0, true)
	m.tick(nil, rec(), sink)
	if m.Counter(0) != 3 {
		t.Errorf("markers must advance while collection is off: %d", m.Counter(0))
	}
	tr := sink.Trace()
	if tr.RankLen(0) != 2 {
		t.Errorf("collected %d records, want 2", tr.RankLen(0))
	}
	// The collected markers are 1 and 3 — the gap is the suppressed event.
	if tr.Rank(0)[0].Marker != 1 || tr.Rank(0)[1].Marker != 3 {
		t.Errorf("markers = %d,%d", tr.Rank(0)[0].Marker, tr.Rank(0)[1].Marker)
	}
	m.SetCollect(99, true) // out of range: no panic
	if m.Collecting(99) {
		t.Error("out of range collecting")
	}
}

func TestMonitorControlPoint(t *testing.T) {
	m := NewMonitor(1)
	var seen []uint64
	m.SetControl(func(p *mp.Proc, rec *trace.Record) {
		seen = append(seen, rec.Marker)
	})
	rec := trace.Record{Kind: trace.KindMarker, Rank: 0}
	m.tick(nil, &rec, nil)
	rec2 := trace.Record{Kind: trace.KindMarker, Rank: 0}
	m.tick(nil, &rec2, nil)
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Fatalf("control saw %v", seen)
	}
	m.SetControl(nil)
	rec3 := trace.Record{Kind: trace.KindMarker, Rank: 0}
	m.tick(nil, &rec3, nil) // must not panic
	if m.Counter(0) != 3 {
		t.Errorf("counter = %d", m.Counter(0))
	}
}

func TestSinks(t *testing.T) {
	mem := NewMemorySink(1)
	var buf bytes.Buffer
	fs, err := NewFileSink(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	filter := FilterSink{
		Keep: func(r *trace.Record) bool { return r.Kind == trace.KindSend },
		Next: mem,
	}
	tee := TeeSink{filter, fs, NullSink{}}

	send := trace.Record{Kind: trace.KindSend, Rank: 0, Src: 0, Dst: 0, MsgID: 1}
	comp := trace.Record{Kind: trace.KindCompute, Rank: 0}
	tee.Emit(&send)
	tee.Emit(&comp)

	if mem.Trace().Len() != 1 {
		t.Errorf("filter passed %d records", mem.Trace().Len())
	}
	if err := fs.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Errorf("file sink wrote %d records", got.Len())
	}
	if mem.Err() != nil || fs.Err() != nil {
		t.Errorf("sink errors: %v %v", mem.Err(), fs.Err())
	}
}

func TestFilterSinkNilKeepPassesAll(t *testing.T) {
	mem := NewMemorySink(1)
	f := FilterSink{Next: mem}
	f.Emit(&trace.Record{Kind: trace.KindMarker, Rank: 0})
	if mem.Trace().Len() != 1 {
		t.Error("nil Keep should pass records")
	}
}

func TestMemorySinkRejectsInvalid(t *testing.T) {
	mem := NewMemorySink(1)
	mem.Emit(&trace.Record{Rank: 7}) // bad rank
	if mem.Err() == nil {
		t.Error("invalid record should set Err")
	}
}

// instrumentedPingPong runs a 2-rank exchange with full instrumentation and
// returns the collected trace.
func instrumentedPingPong(t *testing.T, level Level) *trace.Trace {
	t.Helper()
	sink := NewMemorySink(2)
	in := New(2, sink, level)
	err := in.Run(mp.Config{NumRanks: 2}, func(c *Ctx) {
		defer c.Fn(Loc("pp.go", 1, "main"), int64(c.Rank()))()
		if c.Rank() == 0 {
			done := c.Region("exchange", Loc("pp.go", 3, "main"))
			c.Send(1, 5, []byte("ping"))
			c.At(Loc("pp.go", 5, "main"))
			c.Recv(1, 6)
			done()
		} else {
			c.Recv(0, 5)
			c.Compute(100)
			c.Send(0, 6, []byte("pong"))
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sink.Err() != nil {
		t.Fatalf("sink: %v", sink.Err())
	}
	return sink.Trace()
}

func TestEndToEndFullInstrumentation(t *testing.T) {
	tr := instrumentedPingPong(t, LevelAll)
	if err := tr.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	st := tr.Summarize()
	if st.Sends != 2 || st.Recvs != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if st.PerKind[trace.KindFuncEntry] != 2 || st.PerKind[trace.KindFuncExit] != 2 {
		t.Errorf("function events: %+v", st.PerKind)
	}
	if st.PerKind[trace.KindRegionBegin] != 1 || st.PerKind[trace.KindRegionEnd] != 1 {
		t.Errorf("region events: %+v", st.PerKind)
	}
	if st.PerKind[trace.KindMarker] != 1 {
		t.Errorf("statement markers: %+v", st.PerKind)
	}
	if st.PerKind[trace.KindCompute] != 1 {
		t.Errorf("compute events: %+v", st.PerKind)
	}
	// Markers are dense (1..n per rank): every event has a distinct marker.
	for rank := 0; rank < 2; rank++ {
		for i, r := range tr.Rank(rank) {
			if r.Marker != uint64(i+1) {
				t.Fatalf("rank %d record %d has marker %d", rank, i, r.Marker)
			}
		}
	}
	// Send records carry the function's location.
	sends := tr.Sends()
	for _, id := range sends {
		if tr.MustAt(id).Loc.File == "" {
			t.Errorf("send %v missing location", id)
		}
	}
	matched, orphans := tr.MatchSendRecv()
	if len(matched) != 2 || len(orphans) != 0 {
		t.Errorf("matching: %d matched, %v orphans", len(matched), orphans)
	}
}

func TestLevelGating(t *testing.T) {
	tr := instrumentedPingPong(t, LevelWrappers)
	st := tr.Summarize()
	if st.PerKind[trace.KindFuncEntry] != 0 || st.PerKind[trace.KindRegionBegin] != 0 || st.PerKind[trace.KindMarker] != 0 {
		t.Errorf("wrappers-only trace has app events: %+v", st.PerKind)
	}
	if st.Sends != 2 || st.Recvs != 2 {
		t.Errorf("wrappers-only trace missing comm events: %+v", st)
	}

	tr = instrumentedPingPong(t, LevelFunctions)
	st = tr.Summarize()
	if st.Sends != 0 {
		t.Errorf("functions-only trace has comm events: %+v", st)
	}
	if st.PerKind[trace.KindFuncEntry] != 2 {
		t.Errorf("functions-only trace: %+v", st.PerKind)
	}
}

func TestHookRecordMapping(t *testing.T) {
	cases := []struct {
		info mp.OpInfo
		kind trace.Kind
		nil_ bool
	}{
		{mp.OpInfo{Op: mp.OpSend, Rank: 0, Src: 0, Dst: 1, Tag: 2, MsgID: 5}, trace.KindSend, false},
		{mp.OpInfo{Op: mp.OpIsend, Rank: 0, Src: 0, Dst: 1}, trace.KindSend, false},
		{mp.OpInfo{Op: mp.OpRecv, Rank: 1, Src: 0, Dst: 1}, trace.KindRecv, false},
		{mp.OpInfo{Op: mp.OpWait, Rank: 1, Name: "Irecv"}, trace.KindRecv, false},
		{mp.OpInfo{Op: mp.OpWait, Rank: 0, Name: "Isend"}, 0, true},
		{mp.OpInfo{Op: mp.OpIrecv, Rank: 1}, 0, true},
		{mp.OpInfo{Op: mp.OpProbe, Rank: 1}, 0, true},
		{mp.OpInfo{Op: mp.OpCompute, Rank: 0}, trace.KindCompute, false},
		{mp.OpInfo{Op: mp.OpBarrier, Rank: 0}, trace.KindCollective, false},
		{mp.OpInfo{Op: mp.OpBcast, Rank: 0, Src: 0}, trace.KindCollective, false},
		{mp.OpInfo{Op: mp.OpRecv, Rank: 1, Blocked: true}, trace.KindBlocked, false},
		{mp.OpInfo{Op: mp.OpBarrier, Rank: 1, Blocked: true}, trace.KindBlocked, false},
	}
	for i, c := range cases {
		rec := RecordFromOp(&c.info)
		if c.nil_ {
			if rec != nil {
				t.Errorf("case %d: expected nil record, got %v", i, rec)
			}
			continue
		}
		if rec == nil {
			t.Errorf("case %d: nil record", i)
			continue
		}
		if rec.Kind != c.kind {
			t.Errorf("case %d: kind = %v, want %v", i, rec.Kind, c.kind)
		}
	}
	blocked := RecordFromOp(&mp.OpInfo{Op: mp.OpRecv, Blocked: true, Src: 3, Tag: 9})
	if blocked.Name != "Blocked(Recv)" || blocked.Src != 3 {
		t.Errorf("blocked record: %+v", blocked)
	}
}

func TestBlockedEventRecorded(t *testing.T) {
	sink := NewMemorySink(2)
	in := New(2, sink, LevelAll)
	err := in.Run(mp.Config{NumRanks: 2}, func(c *Ctx) {
		if c.Rank() == 1 {
			c.Recv(0, 1) // never satisfied
		}
	})
	var stall *mp.StallError
	if !errors.As(err, &stall) {
		t.Fatalf("expected stall, got %v", err)
	}
	tr := sink.Trace()
	blocked := tr.OfKind(trace.KindBlocked)
	if len(blocked) != 1 {
		t.Fatalf("blocked records = %d", len(blocked))
	}
	b := tr.MustAt(blocked[0])
	if b.Rank != 1 || b.Src != 0 || b.Tag != 1 {
		t.Errorf("blocked record: %+v", b)
	}
}

func TestFlushOnDemandDuringRun(t *testing.T) {
	var buf bytes.Buffer
	fs, err := NewFileSink(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	in := New(2, fs, LevelAll)
	w, err := in.World(mp.Config{NumRanks: 2})
	if err != nil {
		t.Fatal(err)
	}
	sent := make(chan struct{})
	release := make(chan struct{})
	if err := w.Start(func(p *mp.Proc) {
		c := in.Ctx(p)
		if c.Rank() == 0 {
			c.Send(1, 1, []byte("mid-run"))
			close(sent)
			<-release
		} else {
			c.Recv(0, 1)
			<-release
		}
	}); err != nil {
		t.Fatal(err)
	}
	<-sent
	// The debugger asks the monitor to flush and reads the partial history.
	if err := fs.Flush(); err != nil {
		t.Fatal(err)
	}
	partial, err := trace.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(partial.Sends()) != 1 {
		t.Errorf("partial trace sends = %d", len(partial.Sends()))
	}
	close(release)
	if err := w.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentTicksAreSafe(t *testing.T) {
	// Many ranks ticking concurrently: counters per rank must be exact.
	const n, per = 8, 500
	m := NewMonitor(n)
	sink := NewMemorySink(n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rec := trace.Record{Kind: trace.KindMarker, Rank: rank}
				m.tick(nil, &rec, sink)
			}
		}(r)
	}
	wg.Wait()
	for r := 0; r < n; r++ {
		if m.Counter(r) != per {
			t.Fatalf("rank %d counter = %d", r, m.Counter(r))
		}
		if sink.Trace().RankLen(r) != per {
			t.Fatalf("rank %d records = %d", r, sink.Trace().RankLen(r))
		}
	}
	if sink.Err() != nil {
		t.Fatal(sink.Err())
	}
}

func TestUninstrumentedCtxIsCheap(t *testing.T) {
	// A Ctx from a zero-level instrumenter must not record anything, and
	// its Fn/Region/At must be safe no-ops.
	sink := NewMemorySink(1)
	in := New(1, sink, 0)
	err := in.Run(mp.Config{NumRanks: 1}, func(c *Ctx) {
		defer c.Fn(Loc("x.go", 1, "f"))()
		done := c.Region("r", Loc("x.go", 2, "f"))
		c.At(Loc("x.go", 3, "f"))
		done()
		c.Compute(10)
	})
	if err != nil {
		t.Fatal(err)
	}
	if sink.Trace().Len() != 0 {
		t.Errorf("zero-level instrumentation recorded %d events", sink.Trace().Len())
	}
	if in.Monitor.Counter(0) != 0 {
		t.Errorf("zero-level instrumentation ticked markers: %d", in.Monitor.Counter(0))
	}
}
