//go:build !race

package instr

import (
	"bytes"
	"testing"

	"tracedbg/internal/mp"
	"tracedbg/internal/trace"
)

// Tier-2 allocation pins for the instrumentation hot paths: the whole point
// of the rank-local event path is that steady-state event emission performs
// no per-event heap allocation, and these tests keep it that way. (Guarded
// from -race builds, whose instrumentation adds allocations of its own.)

// TestCtxEventAllocs pins Fn entry+exit, Region begin+end, and At at zero
// allocations per event against a null sink: the context's scratch record
// and shared exit closure must absorb everything.
func TestCtxEventAllocs(t *testing.T) {
	in := New(1, NullSink{}, LevelAll)
	locA := Loc("a.go", 1, "f")
	locB := Loc("b.go", 2, "g")
	err := in.Run(mp.Config{NumRanks: 1}, func(c *Ctx) {
		// Warm the frame stack past its initial capacity.
		for i := 0; i < 64; i++ {
			c.Fn(locA, int64(i))()
		}
		if n := testing.AllocsPerRun(200, func() {
			c.Fn(locA, 1, 2)()
		}); n != 0 {
			t.Errorf("Fn entry+exit: %.2f allocs/event, want 0", n)
		}
		if n := testing.AllocsPerRun(200, func() {
			c.Region("phase", locB)()
		}); n != 0 {
			t.Errorf("Region begin+end: %.2f allocs/event, want 0", n)
		}
		if n := testing.AllocsPerRun(200, func() {
			c.At(locA, 7)
		}); n != 0 {
			t.Errorf("At: %.2f allocs/event, want 0", n)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFileSinkEmitAllocs pins the full write path per event — staging copy,
// batched WriteBatch handoff, chunk encode — at well under one allocation
// per event in steady state. The residue is the underlying bytes.Buffer
// growing as the file accumulates, amortized across thousands of events.
func TestFileSinkEmitAllocs(t *testing.T) {
	var buf bytes.Buffer
	buf.Grow(1 << 20)
	sink, err := NewFileSink(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.Record{Kind: trace.KindMarker, Rank: 0,
		Loc: trace.Location{File: "a.go", Line: 1, Func: "f"}, Name: "op"}
	// Warm: intern the strings, fill the first chunks.
	for i := 0; i < 4*emitBatchSize; i++ {
		rec.Start, rec.End = int64(i), int64(i)
		rec.Marker++
		sink.Emit(&rec)
	}
	n := testing.AllocsPerRun(5000, func() {
		rec.Start++
		rec.End = rec.Start
		rec.Marker++
		sink.Emit(&rec)
	})
	if n >= 0.05 {
		t.Errorf("FileSink.Emit: %.4f allocs/event, want < 0.05", n)
	}
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestHookPostAllocs pins the communication-wrapper path (fillRecordFromOp
// into the rank's padded scratch) at zero allocations per operation.
func TestHookPostAllocs(t *testing.T) {
	in := New(1, NullSink{}, LevelWrappers)
	h := in.Hook()
	info := mp.OpInfo{Op: mp.OpSend, Rank: 0, Src: 0, Dst: 0,
		Loc: trace.Location{File: "a.go", Line: 1, Func: "f"}, Bytes: 8}
	if n := testing.AllocsPerRun(500, func() {
		info.Start++
		info.End = info.Start
		info.MsgID++
		h.Post(nil, &info)
	}); n != 0 {
		t.Errorf("hook Post: %.2f allocs/op, want 0", n)
	}
}
