package instr

import (
	"strings"
	"testing"

	"tracedbg/internal/mp"
	"tracedbg/internal/trace"
)

func autoHelper(c *Ctx) {
	defer c.FnAuto(7)()
	c.AtAuto(9)
}

func TestFnAutoCapturesRealLocation(t *testing.T) {
	sink := NewMemorySink(1)
	in := New(1, sink, LevelAll)
	if err := in.Run(mp.Config{NumRanks: 1}, func(c *Ctx) {
		autoHelper(c)
	}); err != nil {
		t.Fatal(err)
	}
	tr := sink.Trace()
	entries := tr.OfKind(trace.KindFuncEntry)
	if len(entries) != 1 {
		t.Fatalf("entries = %d", len(entries))
	}
	rec := tr.MustAt(entries[0])
	if rec.Loc.File != "auto_test.go" {
		t.Errorf("file = %q", rec.Loc.File)
	}
	if !strings.Contains(rec.Loc.Func, "autoHelper") {
		t.Errorf("func = %q", rec.Loc.Func)
	}
	if rec.Args[0] != 7 {
		t.Errorf("args = %v", rec.Args)
	}
	markers := tr.OfKind(trace.KindMarker)
	if len(markers) != 1 {
		t.Fatalf("markers = %d", len(markers))
	}
	mrec := tr.MustAt(markers[0])
	if mrec.Loc.File != "auto_test.go" || mrec.Args[0] != 9 {
		t.Errorf("marker = %+v", mrec)
	}
	// Line numbers: the At call is one line after the Fn call site.
	if mrec.Loc.Line <= rec.Loc.Line {
		t.Errorf("marker line %d should follow entry line %d", mrec.Loc.Line, rec.Loc.Line)
	}
	// Exits balance entries.
	if exits := tr.OfKind(trace.KindFuncExit); len(exits) != 1 {
		t.Errorf("exits = %d", len(exits))
	}
}

func TestAutoNoOpsWhenDisabled(t *testing.T) {
	sink := NewMemorySink(1)
	in := New(1, sink, 0)
	if err := in.Run(mp.Config{NumRanks: 1}, func(c *Ctx) {
		defer c.FnAuto()()
		c.AtAuto()
	}); err != nil {
		t.Fatal(err)
	}
	if sink.Trace().Len() != 0 {
		t.Errorf("disabled auto instrumentation recorded %d events", sink.Trace().Len())
	}
}
