package instr

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"tracedbg/internal/trace"
)

// TestMemorySinkConcurrentRanks drives every shard from its own goroutine
// while another goroutine takes snapshots, then checks the final trace holds
// exactly the per-rank sequences emitted. Run with -race in CI.
func TestMemorySinkConcurrentRanks(t *testing.T) {
	const ranks, per = 8, 500
	s := NewMemorySink(ranks)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			snap := s.Snapshot()
			for r := 0; r < ranks; r++ {
				recs := snap.Rank(r)
				for j := 1; j < len(recs); j++ {
					if recs[j].Start < recs[j-1].Start {
						t.Errorf("snapshot rank %d not monotone", r)
						return
					}
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Emit(&trace.Record{Kind: trace.KindCompute, Rank: r,
					Marker: uint64(i), Start: int64(i), End: int64(i + 1), Name: "step"})
			}
		}(r)
	}
	wg.Wait()
	<-done
	if err := s.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	tr := s.Trace()
	if tr.NumRanks() != ranks || tr.Len() != ranks*per {
		t.Fatalf("shape: ranks %d len %d", tr.NumRanks(), tr.Len())
	}
	for r := 0; r < ranks; r++ {
		recs := tr.Rank(r)
		for i, rec := range recs {
			if rec.Start != int64(i) || rec.Rank != r {
				t.Fatalf("rank %d record %d = %+v", r, i, rec)
			}
		}
	}
}

// TestFileSinkConcurrentRanks checks the sharded file sink produces a
// decodable file holding every rank's records in emission order.
func TestFileSinkConcurrentRanks(t *testing.T) {
	const ranks, per = 6, 400
	var mu sync.Mutex
	var buf bytes.Buffer
	s, err := NewFileSink(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	}), ranks)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Emit(&trace.Record{Kind: trace.KindCompute, Rank: r,
					Marker: uint64(i), Start: int64(i), End: int64(i + 1),
					Loc: trace.Location{File: "f.go", Func: "f"}, Name: "step"})
				if i%97 == 0 {
					if err := s.Flush(); err != nil {
						t.Errorf("flush: %v", err)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	data := append([]byte(nil), buf.Bytes()...)
	mu.Unlock()
	tr, err := trace.ReadAll(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if tr.Len() != ranks*per {
		t.Fatalf("Len = %d, want %d", tr.Len(), ranks*per)
	}
	for r := 0; r < ranks; r++ {
		recs := tr.Rank(r)
		for i := range recs {
			if recs[i].Start != int64(i) {
				t.Fatalf("rank %d out of order at %d: %+v", r, i, recs[i])
			}
		}
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestMemorySinkSnapshotIsolated pins Snapshot's deep-copy contract: later
// emits must not show up in an earlier snapshot.
func TestMemorySinkSnapshotIsolated(t *testing.T) {
	s := NewMemorySink(2)
	s.Emit(&trace.Record{Kind: trace.KindCompute, Rank: 0, Start: 1, End: 2})
	snap := s.Snapshot()
	s.Emit(&trace.Record{Kind: trace.KindCompute, Rank: 0, Start: 3, End: 4})
	if snap.Len() != 1 {
		t.Fatalf("snapshot Len = %d, want 1", snap.Len())
	}
	want := s.Trace().Rank(0)[:1]
	if !reflect.DeepEqual(snap.Rank(0), want) {
		t.Fatalf("snapshot contents changed: %v vs %v", snap.Rank(0), want)
	}
}
