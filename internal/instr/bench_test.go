package instr

import (
	"testing"

	"tracedbg/internal/mp"
	"tracedbg/internal/trace"
)

// BenchmarkMonitorTick is the cost of one UserMonitor call: counter bump,
// sink emission, control check.
func BenchmarkMonitorTick(b *testing.B) {
	m := NewMonitor(1)
	b.Run("null-sink", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rec := trace.Record{Kind: trace.KindMarker, Rank: 0}
			m.tick(nil, &rec, NullSink{})
		}
	})
	b.Run("memory-sink", func(b *testing.B) {
		sink := NewMemorySink(1)
		for i := 0; i < b.N; i++ {
			rec := trace.Record{Kind: trace.KindMarker, Rank: 0, Start: int64(i), End: int64(i)}
			m.tick(nil, &rec, sink)
		}
	})
	b.Run("collection-off", func(b *testing.B) {
		sink := NewMemorySink(1)
		m.SetCollect(0, false)
		defer m.SetCollect(0, true)
		for i := 0; i < b.N; i++ {
			rec := trace.Record{Kind: trace.KindMarker, Rank: 0}
			m.tick(nil, &rec, sink)
		}
	})
}

// BenchmarkFnEntryExit is the full function-instrumentation path the Table 1
// Fibonacci numbers are made of.
func BenchmarkFnEntryExit(b *testing.B) {
	in := New(1, NullSink{}, LevelFunctions)
	loc := Loc("bench.go", 1, "f")
	err := in.Run(mp.Config{NumRanks: 1}, func(c *Ctx) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Fn(loc, int64(i))()
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}
