package instr

import (
	"path/filepath"
	"runtime"

	"tracedbg/internal/trace"
)

// FnAuto is Fn with the location captured automatically from the Go runtime
// — the "compiler inserts the call for you" convenience the paper's
// conclusion asks for ("a presence of a command line option such as -i or
// even -g should cause the compiler to insert instrumentation calls").
// It costs a runtime.Caller lookup per call; hot recursive code should use
// Fn with a precomputed location.
//
//	defer ctx.FnAuto()()
func (c *Ctx) FnAuto(args ...int64) func() {
	if c.in == nil || c.in.Level&LevelFunctions == 0 {
		return func() {}
	}
	return c.Fn(callerLocation(2), args...)
}

// AtAuto is At with an automatically captured location.
func (c *Ctx) AtAuto(args ...int64) {
	if c.in == nil || c.in.Level&LevelConstructs == 0 {
		return
	}
	c.At(callerLocation(2), args...)
}

// callerLocation resolves the caller's file, line and function name.
func callerLocation(skip int) trace.Location {
	pc, file, line, ok := runtime.Caller(skip)
	if !ok {
		return trace.Location{}
	}
	loc := trace.Location{File: filepath.Base(file), Line: line}
	if fn := runtime.FuncForPC(pc); fn != nil {
		name := fn.Name()
		// Trim the package path: "tracedbg/internal/apps.worker" -> "worker".
		for i := len(name) - 1; i >= 0; i-- {
			if name[i] == '.' {
				name = name[i+1:]
				break
			}
			if name[i] == '/' {
				break
			}
		}
		loc.Func = name
	}
	return loc
}
