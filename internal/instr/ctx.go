package instr

import (
	"tracedbg/internal/mp"
	"tracedbg/internal/trace"
)

// Level selects which instrumentation strategies are active.
type Level uint8

// Strategy bits. They correspond to the paper's three acquisition methods
// and may be combined freely ("the techniques ... can be used in
// combination").
const (
	// LevelWrappers records communication operations via the PMPI-style
	// hook: portable, lowest resolution.
	LevelWrappers Level = 1 << iota
	// LevelFunctions records function entries/exits via Fn — the
	// compiler-inserted UserMonitor strategy.
	LevelFunctions
	// LevelConstructs records source-level regions and statements — the
	// AIMS source-to-source strategy, arbitrary resolution.
	LevelConstructs

	// LevelAll enables everything.
	LevelAll = LevelWrappers | LevelFunctions | LevelConstructs
)

// Instrumenter couples a Monitor, a Sink and a strategy selection. One
// Instrumenter serves a whole world.
type Instrumenter struct {
	Monitor *Monitor
	Sink    Sink
	Level   Level

	// hookScratch holds one cache-line-padded record per rank for the
	// communication wrapper (each rank's hook runs on that rank's goroutine,
	// so the slot needs no lock). Nil when the Instrumenter was built as a
	// bare literal instead of through New; the hook then falls back to the
	// allocating RecordFromOp.
	hookScratch []hookShard
}

type hookShard struct {
	rec trace.Record
	_   [64]byte // pad so neighbouring ranks' scratch stays off each other's line
}

// New creates an instrumenter with a fresh monitor.
func New(numRanks int, sink Sink, level Level) *Instrumenter {
	if numRanks < 0 {
		numRanks = 0
	}
	return &Instrumenter{
		Monitor:     NewMonitor(numRanks),
		Sink:        sink,
		Level:       level,
		hookScratch: make([]hookShard, numRanks),
	}
}

// Ctx returns the per-rank instrumentation context. Applications receive a
// *Ctx instead of a bare *mp.Proc; the embedded Proc keeps the full
// communication API available.
func (in *Instrumenter) Ctx(p *mp.Proc) *Ctx {
	c := &Ctx{Proc: p, in: in, frames: make([]ctxFrame, 0, 16)}
	// One exit closure serves every Fn and Region of this context: each
	// entry pushes a frame, the shared closure pops and emits the matching
	// exit. This is what makes the per-event path allocation-free — the
	// alternative (a fresh closure per call) costs one heap object per
	// instrumented function entry.
	c.exit = func() {
		n := len(c.frames) - 1
		if n < 0 {
			return // unbalanced extra close: nothing open, nothing to emit
		}
		f := c.frames[n]
		c.frames = c.frames[:n]
		end := c.Clock()
		r := &c.scratch
		*r = trace.Record{
			Kind: f.kind, Rank: c.Rank(), Loc: f.loc,
			Start: end, End: end,
			Src: trace.NoRank, Dst: trace.NoRank, Name: f.name,
		}
		c.in.Monitor.tick(c.Proc, r, c.in.Sink)
	}
	return c
}

// Ctx is the application-side instrumentation handle for one rank. All its
// event state is rank-local: events are staged in a scratch record reused
// call after call, and open Fn/Region frames live on a context-owned stack,
// so the per-event fast path performs no heap allocation and touches no
// shared memory beyond the monitor's per-rank atomics.
//
// The record pointer handed to the Sink (and the debugger control point) is
// this scratch: it is valid only for the duration of the call, and sinks
// that defer processing must copy it (every sink in this repository does).
type Ctx struct {
	*mp.Proc
	in *Instrumenter

	scratch trace.Record // staging slot for every event this rank emits
	frames  []ctxFrame   // open Fn/Region entries, innermost last
	exit    func()       // shared closure closing the innermost open frame
}

// ctxFrame is one open Fn or Region entry awaiting its exit.
type ctxFrame struct {
	loc  trace.Location
	name string
	kind trace.Kind // KindFuncExit or KindRegionEnd
}

// noopExit is returned when a strategy is disabled; taking the address of a
// top-level function does not allocate.
func noopExit() {}

// Instrumenter returns the owning instrumenter.
func (c *Ctx) Instrumenter() *Instrumenter { return c.in }

// Fn is the UserMonitor call placed at the top of every instrumented
// function (the uinst strategy): it increments the execution-marker counter,
// records the call site and up to two arguments, and passes through the
// debugger control point. It returns the matching exit function:
//
//	defer ctx.Fn(locFib, int64(n), 0)()
//
// The location also becomes the rank's current location, so communication
// records between entry and exit are attributed to this function.
//
// Entries and exits nest: the returned function closes the innermost Fn or
// Region still open on this context, which is exactly the defer/paired-call
// discipline instrumented code follows (calls are properly nested on the
// call stack). Closing out of that order mis-attributes the exit events;
// closing more times than entries is a no-op.
func (c *Ctx) Fn(loc trace.Location, args ...int64) func() {
	if c.in == nil || c.in.Level&LevelFunctions == 0 {
		return noopExit
	}
	c.SetLoc(loc)
	now := c.Clock()
	r := &c.scratch
	*r = trace.Record{
		Kind: trace.KindFuncEntry, Rank: c.Rank(), Loc: loc,
		Start: now, End: now,
		Src: trace.NoRank, Dst: trace.NoRank,
		Name: loc.Func,
	}
	copy(r.Args[:], args)
	c.in.Monitor.tick(c.Proc, r, c.in.Sink)
	c.frames = append(c.frames, ctxFrame{loc: loc, name: loc.Func, kind: trace.KindFuncExit})
	return c.exit
}

// Region instruments a source-level construct (loop, phase, statement
// group) AIMS-style. It returns the function closing the region:
//
//	done := ctx.Region("distribute", loc)
//	... construct body ...
//	done()
//
// Regions nest with Fn frames under the same discipline (see Fn): the
// returned function closes the innermost open frame.
func (c *Ctx) Region(name string, loc trace.Location) func() {
	if c.in == nil || c.in.Level&LevelConstructs == 0 {
		return noopExit
	}
	c.SetLoc(loc)
	start := c.Clock()
	r := &c.scratch
	*r = trace.Record{
		Kind: trace.KindRegionBegin, Rank: c.Rank(), Loc: loc,
		Start: start, End: start,
		Src: trace.NoRank, Dst: trace.NoRank, Name: name,
	}
	c.in.Monitor.tick(c.Proc, r, c.in.Sink)
	c.frames = append(c.frames, ctxFrame{loc: loc, name: name, kind: trace.KindRegionEnd})
	return c.exit
}

// At declares the current statement location (statement-level resolution)
// and emits a bare marker event, giving the debugger a stoppable point
// between communication events.
func (c *Ctx) At(loc trace.Location, args ...int64) {
	if c.in == nil || c.in.Level&LevelConstructs == 0 {
		return
	}
	c.SetLoc(loc)
	now := c.Clock()
	r := &c.scratch
	*r = trace.Record{
		Kind: trace.KindMarker, Rank: c.Rank(), Loc: loc,
		Start: now, End: now,
		Src: trace.NoRank, Dst: trace.NoRank,
	}
	copy(r.Args[:], args)
	c.in.Monitor.tick(c.Proc, r, c.in.Sink)
}

// Loc builds a Location; sugar that keeps application code compact.
func Loc(file string, line int, fn string) trace.Location {
	return trace.Location{File: file, Line: line, Func: fn}
}
