package instr

import (
	"tracedbg/internal/mp"
	"tracedbg/internal/trace"
)

// Level selects which instrumentation strategies are active.
type Level uint8

// Strategy bits. They correspond to the paper's three acquisition methods
// and may be combined freely ("the techniques ... can be used in
// combination").
const (
	// LevelWrappers records communication operations via the PMPI-style
	// hook: portable, lowest resolution.
	LevelWrappers Level = 1 << iota
	// LevelFunctions records function entries/exits via Fn — the
	// compiler-inserted UserMonitor strategy.
	LevelFunctions
	// LevelConstructs records source-level regions and statements — the
	// AIMS source-to-source strategy, arbitrary resolution.
	LevelConstructs

	// LevelAll enables everything.
	LevelAll = LevelWrappers | LevelFunctions | LevelConstructs
)

// Instrumenter couples a Monitor, a Sink and a strategy selection. One
// Instrumenter serves a whole world.
type Instrumenter struct {
	Monitor *Monitor
	Sink    Sink
	Level   Level
}

// New creates an instrumenter with a fresh monitor.
func New(numRanks int, sink Sink, level Level) *Instrumenter {
	return &Instrumenter{Monitor: NewMonitor(numRanks), Sink: sink, Level: level}
}

// Ctx returns the per-rank instrumentation context. Applications receive a
// *Ctx instead of a bare *mp.Proc; the embedded Proc keeps the full
// communication API available.
func (in *Instrumenter) Ctx(p *mp.Proc) *Ctx { return &Ctx{Proc: p, in: in} }

// Ctx is the application-side instrumentation handle for one rank.
type Ctx struct {
	*mp.Proc
	in *Instrumenter
}

// Instrumenter returns the owning instrumenter.
func (c *Ctx) Instrumenter() *Instrumenter { return c.in }

// Fn is the UserMonitor call placed at the top of every instrumented
// function (the uinst strategy): it increments the execution-marker counter,
// records the call site and up to two arguments, and passes through the
// debugger control point. It returns the matching exit function:
//
//	defer ctx.Fn(locFib, int64(n), 0)()
//
// The location also becomes the rank's current location, so communication
// records between entry and exit are attributed to this function.
func (c *Ctx) Fn(loc trace.Location, args ...int64) func() {
	if c.in == nil || c.in.Level&LevelFunctions == 0 {
		return func() {}
	}
	c.SetLoc(loc)
	var a [2]int64
	copy(a[:], args)
	now := c.Clock()
	rec := trace.Record{
		Kind: trace.KindFuncEntry, Rank: c.Rank(), Loc: loc,
		Start: now, End: now,
		Src: trace.NoRank, Dst: trace.NoRank,
		Name: loc.Func, Args: a,
	}
	c.in.Monitor.tick(c.Proc, &rec, c.in.Sink)
	return func() {
		end := c.Clock()
		exit := trace.Record{
			Kind: trace.KindFuncExit, Rank: c.Rank(), Loc: loc,
			Start: end, End: end,
			Src: trace.NoRank, Dst: trace.NoRank,
			Name: loc.Func,
		}
		c.in.Monitor.tick(c.Proc, &exit, c.in.Sink)
	}
}

// Region instruments a source-level construct (loop, phase, statement
// group) AIMS-style. It returns the function closing the region:
//
//	done := ctx.Region("distribute", loc)
//	... construct body ...
//	done()
func (c *Ctx) Region(name string, loc trace.Location) func() {
	if c.in == nil || c.in.Level&LevelConstructs == 0 {
		return func() {}
	}
	c.SetLoc(loc)
	start := c.Clock()
	rec := trace.Record{
		Kind: trace.KindRegionBegin, Rank: c.Rank(), Loc: loc,
		Start: start, End: start,
		Src: trace.NoRank, Dst: trace.NoRank, Name: name,
	}
	c.in.Monitor.tick(c.Proc, &rec, c.in.Sink)
	return func() {
		end := c.Clock()
		exit := trace.Record{
			Kind: trace.KindRegionEnd, Rank: c.Rank(), Loc: loc,
			Start: end, End: end,
			Src: trace.NoRank, Dst: trace.NoRank, Name: name,
		}
		c.in.Monitor.tick(c.Proc, &exit, c.in.Sink)
	}
}

// At declares the current statement location (statement-level resolution)
// and emits a bare marker event, giving the debugger a stoppable point
// between communication events.
func (c *Ctx) At(loc trace.Location, args ...int64) {
	if c.in == nil || c.in.Level&LevelConstructs == 0 {
		return
	}
	c.SetLoc(loc)
	var a [2]int64
	copy(a[:], args)
	now := c.Clock()
	rec := trace.Record{
		Kind: trace.KindMarker, Rank: c.Rank(), Loc: loc,
		Start: now, End: now,
		Src: trace.NoRank, Dst: trace.NoRank, Args: a,
	}
	c.in.Monitor.tick(c.Proc, &rec, c.in.Sink)
}

// Loc builds a Location; sugar that keeps application code compact.
func Loc(file string, line int, fn string) trace.Location {
	return trace.Location{File: file, Line: line, Func: fn}
}
