package instr

import (
	"tracedbg/internal/mp"
	"tracedbg/internal/trace"
)

// Hook returns the PMPI-style communication wrapper: an mp.Hook that turns
// completed operations into trace records and routes them through the
// monitor. Install it in mp.Config.Hooks; history collection is then
// automatic, exactly like linking against the instrumented MPI library.
func (in *Instrumenter) Hook() mp.Hook { return wrapperHook{in: in} }

type wrapperHook struct{ in *Instrumenter }

// Pre implements mp.Hook. Event records are emitted at completion; nothing
// to do on entry.
func (wrapperHook) Pre(*mp.Proc, *mp.OpInfo) {}

// Post implements mp.Hook. The record is staged in the rank's padded
// scratch slot (each rank's hook runs on that rank's own goroutine), so the
// wrapper path allocates nothing per operation; sinks copy synchronously.
func (h wrapperHook) Post(p *mp.Proc, info *mp.OpInfo) {
	if h.in.Level&LevelWrappers == 0 {
		return
	}
	if sc := h.in.hookScratch; info.Rank >= 0 && info.Rank < len(sc) {
		rec := &sc[info.Rank].rec
		if !fillRecordFromOp(info, rec) {
			return
		}
		h.in.Monitor.tick(p, rec, h.in.Sink)
		return
	}
	// Instrumenter built as a bare literal (no scratch): allocating path.
	rec := RecordFromOp(info)
	if rec == nil {
		return
	}
	h.in.Monitor.tick(p, rec, h.in.Sink)
}

// RecordFromOp converts a completed operation into a trace record, or nil
// for operations that do not produce history events (probes, request posts,
// send-side waits). It allocates a fresh record per call; the hook's hot
// path uses fillRecordFromOp over the rank's scratch slot instead.
func RecordFromOp(info *mp.OpInfo) *trace.Record {
	var rec trace.Record
	if !fillRecordFromOp(info, &rec) {
		return nil
	}
	return &rec
}

// fillRecordFromOp writes the history event for a completed operation into
// rec, reporting false for operations that produce none (probes, request
// posts, send-side waits). rec is fully overwritten either way.
func fillRecordFromOp(info *mp.OpInfo, rec *trace.Record) bool {
	*rec = trace.Record{
		Rank:  info.Rank,
		Loc:   info.Loc,
		Start: info.Start,
		End:   info.End,
		Src:   info.Src,
		Dst:   info.Dst,
		Tag:   info.Tag,
		Bytes: info.Bytes,
		MsgID: info.MsgID,

		WasWildcard: info.Wildcard,
		Fault:       info.Fault,
		Name:        info.Op.String(),
	}
	if info.Blocked {
		// The operation never completed (world aborted / stall): record the
		// blocked interval so displays can show it (Figure 5).
		rec.Kind = trace.KindBlocked
		rec.Name = "Blocked(" + info.Op.String() + ")"
		return true
	}
	switch info.Op {
	case mp.OpSend, mp.OpIsend:
		rec.Kind = trace.KindSend
	case mp.OpRecv:
		rec.Kind = trace.KindRecv
	case mp.OpWait:
		if info.Name != mp.OpIrecv.String() {
			return false // send-side wait: the send was recorded at Isend time
		}
		rec.Kind = trace.KindRecv
		rec.Name = "Wait(Irecv)"
	case mp.OpCompute:
		rec.Kind = trace.KindCompute
		rec.Src, rec.Dst = trace.NoRank, trace.NoRank
	case mp.OpCrash:
		// A rank terminated by fault injection (or Proc.Crash): the crash
		// itself becomes part of the recorded history, with the cause in
		// Name, so analyses can attribute downstream stalls to it.
		rec.Kind = trace.KindFault
		rec.Src, rec.Dst = trace.NoRank, trace.NoRank
		rec.Name = info.Name
	case mp.OpBarrier, mp.OpBcast, mp.OpReduce, mp.OpAllreduce,
		mp.OpGather, mp.OpScatter, mp.OpAlltoall:
		rec.Kind = trace.KindCollective
		rec.Dst = trace.NoRank
	default:
		return false // OpIrecv post, OpProbe: no history event
	}
	return true
}

// World builds an instrumented world: the wrapper hook is installed in
// addition to any hooks the caller supplies.
func (in *Instrumenter) World(cfg mp.Config) (*mp.World, error) {
	cfg.Hooks = append(append([]mp.Hook(nil), cfg.Hooks...), in.Hook())
	return mp.NewWorld(cfg)
}

// Run starts an instrumented world where each rank's body receives the
// instrumentation context, and waits for completion.
func (in *Instrumenter) Run(cfg mp.Config, body func(c *Ctx)) error {
	w, err := in.World(cfg)
	if err != nil {
		return err
	}
	if err := w.Start(func(p *mp.Proc) { body(in.Ctx(p)) }); err != nil {
		return err
	}
	return w.Wait()
}
