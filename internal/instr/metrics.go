package instr

import (
	"sync/atomic"

	"tracedbg/internal/obs"
)

// instrMetrics is the package's self-observability set: the monitor's tick
// path is the single hottest instrumentation point in the system (every
// event of every strategy funnels through it), so its counters are
// rank-sharded single atomic adds.
type instrMetrics struct {
	ticks        *obs.ShardedCounter
	emitted      *obs.ShardedCounter
	suppressed   *obs.ShardedCounter
	collectFlips *obs.Counter
}

func newInstrMetrics(r *obs.Registry) *instrMetrics {
	return &instrMetrics{
		ticks: r.ShardedCounter("tracedbg_instr_ticks_total",
			"monitor ticks (execution-marker advances) across all strategies"),
		emitted: r.ShardedCounter("tracedbg_instr_records_emitted_total",
			"records emitted into sinks; for an accumulating memory sink this is its depth"),
		suppressed: r.ShardedCounter("tracedbg_instr_records_suppressed_total",
			"ticks whose record was dropped because collection was toggled off"),
		collectFlips: r.Counter("tracedbg_instr_collect_flips_total",
			"collection on/off toggles that changed a rank's state"),
	}
}

var instrObs atomic.Pointer[instrMetrics]

func init() { instrObs.Store(newInstrMetrics(obs.Default())) }

// SetObsRegistry re-points the package's metrics at a registry (obs.Nop()
// disables them); used by the instrumentation-overhead benchmarks.
func SetObsRegistry(r *obs.Registry) {
	instrObs.Store(newInstrMetrics(r))
}

func metrics() *instrMetrics { return instrObs.Load() }
