package iofault

import (
	"sync/atomic"

	"tracedbg/internal/obs"
)

// iofaultMetrics counts injector activity. The OS passthrough publishes
// nothing — only installed injectors do — so a clean-path run carries zero
// metric traffic from this package.
type iofaultMetrics struct {
	ops      *obs.Counter
	injected *obs.Counter
	crashes  *obs.Counter
}

func newIofaultMetrics(r *obs.Registry) *iofaultMetrics {
	return &iofaultMetrics{
		ops: r.Counter("tracedbg_iofault_ops_total",
			"filesystem operations routed through installed fault injectors"),
		injected: r.Counter("tracedbg_iofault_injected_total",
			"faults injected by disk fault plans (all kinds, including delays)"),
		crashes: r.Counter("tracedbg_iofault_crashes_total",
			"simulated machine crashes fired by crash rules"),
	}
}

var iofaultObs atomic.Pointer[iofaultMetrics]

func init() { iofaultObs.Store(newIofaultMetrics(obs.Default())) }

// SetObsRegistry re-points the package's metrics at a registry (see
// trace.SetObsRegistry for the convention).
func SetObsRegistry(r *obs.Registry) {
	iofaultObs.Store(newIofaultMetrics(r))
}

func metrics() *iofaultMetrics { return iofaultObs.Load() }
