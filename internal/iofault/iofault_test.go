package iofault

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"
)

// writeN writes n bytes in chunks of c through fsys to path.
func writeN(t *testing.T, fsys FS, path string, n, c int) error {
	t.Helper()
	f, err := fsys.Create(path)
	if err != nil {
		return err
	}
	buf := make([]byte, c)
	for w := 0; w < n; w += c {
		if _, err := f.Write(buf); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func TestPlanRoundTrip(t *testing.T) {
	p := &Plan{Seed: 42, Rules: []Rule{
		EIONth(OpWrite, "*.trace", 3),
		ENOSPCAfter(1 << 16),
		ShortWriteNth("", 2),
		LyingFsync("*.manifest"),
		RenameFailNth("", 1),
		CrashAtOp(17),
	}}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, back) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", p, back)
	}
}

func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{Rules: []Rule{{Kind: "nope"}}},
		{Rules: []Rule{{Kind: KindEIO, Prob: 1.5}}},
		{Rules: []Rule{{Kind: KindSlow}}},
		{Rules: []Rule{{Kind: KindCrash}}},
		{Rules: []Rule{{Kind: KindEIO, Path: "[", AtOp: 1}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d: want validation error", i)
		}
	}
}

func TestEIONthDeterministic(t *testing.T) {
	run := func() (error, []Event) {
		in, err := NewInjector(NewMemDisk(1), &Plan{Seed: 7, Rules: []Rule{
			EIONth(OpWrite, "*.trace", 3),
		}})
		if err != nil {
			t.Fatal(err)
		}
		werr := writeN(t, in, "a.trace", 4096, 512)
		return werr, in.Events()
	}
	err1, ev1 := run()
	err2, ev2 := run()
	if err1 == nil || !errors.Is(err1, syscall.EIO) {
		t.Fatalf("want EIO, got %v", err1)
	}
	if !IsInjected(err1) {
		t.Fatalf("want injected error, got %v", err1)
	}
	if err1.Error() != err2.Error() || !reflect.DeepEqual(ev1, ev2) {
		t.Fatalf("replay mismatch:\n%v %v\n%v %v", err1, ev1, err2, ev2)
	}
	if len(ev1) != 1 || ev1[0].Kind != KindEIO || ev1[0].Op != OpWrite {
		t.Fatalf("events: %+v", ev1)
	}
}

func TestENOSPCTornAtBudget(t *testing.T) {
	disk := NewMemDisk(1)
	in, err := NewInjector(disk, &Plan{Seed: 1, Rules: []Rule{ENOSPCAfter(1000)}})
	if err != nil {
		t.Fatal(err)
	}
	f, err := in.Create("seg.trace")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 300)
	var total int
	var werr error
	for i := 0; i < 10; i++ {
		n, err := f.Write(buf)
		total += n
		if err != nil {
			werr = err
			break
		}
	}
	if !errors.Is(werr, syscall.ENOSPC) || !IsDiskFull(werr) {
		t.Fatalf("want ENOSPC, got %v", werr)
	}
	// 3 full writes (900) then a torn 100-byte tail at the budget boundary.
	if total != 1000 {
		t.Fatalf("accepted %d bytes, want exactly the 1000-byte budget", total)
	}
	data, err := disk.ReadFile("seg.trace")
	if err != nil || len(data) != 1000 {
		t.Fatalf("disk holds %d bytes (%v), want 1000", len(data), err)
	}
	// Creates now fail too; after Clear the disk has space again.
	if _, err := in.Create("next.trace"); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("create under full disk: %v", err)
	}
	in.Clear()
	if err := writeN(t, in, "next.trace", 2048, 512); err != nil {
		t.Fatalf("after clear: %v", err)
	}
}

func TestShortWriteDeterministic(t *testing.T) {
	lens := make(map[int]int)
	for i := 0; i < 3; i++ {
		disk := NewMemDisk(1)
		in, err := NewInjector(disk, &Plan{Seed: 99, Rules: []Rule{ShortWriteNth("", 1)}})
		if err != nil {
			t.Fatal(err)
		}
		f, _ := in.Create("x")
		n, werr := f.Write(make([]byte, 1024))
		if !errors.Is(werr, syscall.EIO) {
			t.Fatalf("want EIO, got %v", werr)
		}
		if n >= 1024 || n < 0 {
			t.Fatalf("short write applied %d of 1024", n)
		}
		lens[n]++
	}
	if len(lens) != 1 {
		t.Fatalf("torn length not deterministic: %v", lens)
	}
}

func TestLyingFsyncLosesData(t *testing.T) {
	disk := NewMemDisk(1)
	in, err := NewInjector(disk, &Plan{Seed: 1, Rules: []Rule{LyingFsync("*")}})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := in.Create("lie.trace")
	if _, err := f.Write(make([]byte, 256)); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("lying fsync must report success, got %v", err)
	}
	if err := in.SyncDir("."); err != nil {
		t.Fatalf("lying dir fsync must report success, got %v", err)
	}
	// The entry never became durable (dir sync was swallowed), and even the
	// data sync was a lie: nothing survives.
	if got := disk.DurableLen("lie.trace"); got != 0 {
		t.Fatalf("durable length %d after lying fsyncs, want 0", got)
	}
}

func TestRenameFailAndCrash(t *testing.T) {
	disk := NewMemDisk(1)
	in, err := NewInjector(disk, &Plan{Seed: 1, Rules: []Rule{
		RenameFailNth("*.manifest", 1),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := writeN(t, in, "m.manifest.tmp", 64, 64); err != nil {
		t.Fatal(err)
	}
	if err := in.Rename("m.manifest.tmp", "m.manifest"); !errors.Is(err, syscall.EIO) {
		t.Fatalf("want injected rename failure, got %v", err)
	}
	if _, err := disk.ReadFile("m.manifest.tmp"); err != nil {
		t.Fatalf("old name must survive a failed rename: %v", err)
	}

	// Crash: halt at a definite op, everything after fails terminally.
	in2, err := NewInjector(disk, &Plan{Seed: 1, Rules: []Rule{CrashAtOp(2)}})
	if err != nil {
		t.Fatal(err)
	}
	f, err := in2.Create("c.trace") // op 1
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) { // op 2
		t.Fatalf("want crash at op 2, got %v", err)
	}
	if !in2.Crashed() {
		t.Fatal("injector not latched crashed")
	}
	if _, err := in2.Create("after"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash op must fail: %v", err)
	}
}

func TestProbSeedStability(t *testing.T) {
	// A probabilistic rule fires on the same subset of ops for a fixed seed
	// and a (statistically) different subset for another.
	run := func(seed int64) []uint64 {
		in, err := NewInjector(NewMemDisk(1), &Plan{Seed: seed, Rules: []Rule{
			{Kind: KindEIO, Op: OpWrite, Prob: 0.3},
		}})
		if err != nil {
			t.Fatal(err)
		}
		f, _ := in.Create("p")
		for i := 0; i < 64; i++ {
			f.Write([]byte("x")) //nolint:ioerr // probing injections, errors expected
		}
		var seqs []uint64
		for _, ev := range in.Events() {
			seqs = append(seqs, ev.Seq)
		}
		return seqs
	}
	a1, a2, b := run(5), run(5), run(6)
	if !reflect.DeepEqual(a1, a2) {
		t.Fatalf("same seed differs: %v vs %v", a1, a2)
	}
	if reflect.DeepEqual(a1, b) {
		t.Fatalf("different seeds agree: %v", a1)
	}
	if len(a1) == 0 || len(a1) == 64 {
		t.Fatalf("prob 0.3 fired %d/64 times", len(a1))
	}
}

func TestMemDiskCrashSemantics(t *testing.T) {
	disk := NewMemDisk(3)

	// File data: durable only to the last sync.
	f, _ := disk.Create("d/file")
	disk.MkdirAll("d", 0o777)
	f2, err := disk.Create("d/file")
	if err != nil {
		t.Fatal(err)
	}
	_ = f
	f2.Write([]byte("durable-part"))
	f2.Sync()
	f2.Write([]byte("-volatile"))
	f2.Close()
	disk.SyncDir("d")

	// Atomic publish: tmp written+synced, renamed, but dir NOT resynced →
	// crash shows the old binding.
	old, _ := disk.Create("d/pub")
	old.Write([]byte("old"))
	old.Sync()
	old.Close()
	disk.SyncDir("d")
	tmp, _ := disk.Create("d/pub.tmp")
	tmp.Write([]byte("new-content"))
	tmp.Sync()
	tmp.Close()
	if err := disk.Rename("d/pub.tmp", "d/pub"); err != nil {
		t.Fatal(err)
	}

	dest := t.TempDir()
	if err := disk.Materialize(dest, MaterializeOptions{}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dest, "d/file"))
	if err != nil || string(got) != "durable-part" {
		t.Fatalf("d/file = %q (%v), want synced prefix only", got, err)
	}
	got, err = os.ReadFile(filepath.Join(dest, "d/pub"))
	if err != nil || string(got) != "old" {
		t.Fatalf("d/pub = %q (%v), want pre-rename content", got, err)
	}
	if _, err := os.Stat(filepath.Join(dest, "d/pub.tmp")); err == nil {
		t.Fatal("pub.tmp entry was never dir-synced; must not materialize")
	}

	// After the dir sync the rename is durable; old inode unreachable.
	disk.SyncDir("d")
	dest2 := t.TempDir()
	if err := disk.Materialize(dest2, MaterializeOptions{}); err != nil {
		t.Fatal(err)
	}
	got, err = os.ReadFile(filepath.Join(dest2, "d/pub"))
	if err != nil || string(got) != "new-content" {
		t.Fatalf("after dir sync d/pub = %q (%v)", got, err)
	}
}

func TestMemDiskTornTailDeterministic(t *testing.T) {
	image := func(crashOp uint64) []byte {
		disk := NewMemDisk(11)
		f, _ := disk.Create("t")
		f.Write([]byte("0123456789"))
		f.Sync()
		f.Write([]byte("abcdefghij"))
		disk.SyncDir(".")
		dest := t.TempDir()
		if err := disk.Materialize(dest, MaterializeOptions{Torn: true, CrashOp: crashOp}); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(dest, "t"))
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a1, a2 := image(5), image(5)
	if string(a1) != string(a2) {
		t.Fatalf("torn tail not deterministic: %q vs %q", a1, a2)
	}
	if len(a1) < 10 || len(a1) > 20 {
		t.Fatalf("torn image %q outside [synced, full]", a1)
	}
	// Different crash ops should eventually tear differently.
	diff := false
	for op := uint64(1); op <= 16; op++ {
		if len(image(op)) != len(a1) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("torn tail ignores crash op")
	}
}

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	fsys := OS()
	p := filepath.Join(dir, "x.trace")
	f, err := fsys.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Rename(p, filepath.Join(dir, "y.trace")); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	data, err := fsys.ReadFile(filepath.Join(dir, "y.trace"))
	if err != nil || string(data) != "hello" {
		t.Fatalf("read back %q, %v", data, err)
	}
	names, err := fsys.Glob(filepath.Join(dir, "*.trace"))
	if err != nil || len(names) != 1 {
		t.Fatalf("glob: %v %v", names, err)
	}
	if Or(nil) == nil || Or(fsys) != fsys {
		t.Fatal("Or defaulting broken")
	}
}
