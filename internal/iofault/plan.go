package iofault

import (
	"encoding/json"
	"fmt"
	"os"
	"path"
	"time"
)

// Kind names a disk-fault behaviour, mirroring the message-fault kinds of
// internal/fault: each rule applies one kind at deterministically selected
// operations.
type Kind string

const (
	// KindEIO fails the selected operation with EIO. Nothing reaches the
	// underlying filesystem.
	KindEIO Kind = "eio"
	// KindENOSPC models a full disk: once the injector has accepted
	// Rule.AfterBytes payload bytes, space-consuming ops (write, create,
	// writefile, mkdir) fail with ENOSPC. A write straddling the budget is
	// applied up to the budget and then fails — a torn tail, exactly what a
	// real filesystem leaves behind. Persists until the plan is cleared.
	KindENOSPC Kind = "enospc"
	// KindShortWrite applies a seeded-deterministic prefix of the buffer and
	// fails the rest with EIO — a torn write inside the budget.
	KindShortWrite Kind = "short-write"
	// KindLyingFsync makes the selected Sync/SyncDir report success without
	// forwarding to the underlying filesystem: the classic firmware lie.
	// Data the caller now believes durable is still volatile, which a later
	// crash point (or MemDisk materialization) exposes.
	KindLyingFsync Kind = "lying-fsync"
	// KindRenameFail fails the selected rename with EIO, leaving the old
	// name in place — the atomic-publish step that never happened.
	KindRenameFail Kind = "rename-fail"
	// KindSlow delays the selected operations by Rule.DelayMs before
	// performing them normally. Unlike the error kinds it does not consume
	// the op: later rules still apply.
	KindSlow Kind = "slow"
	// KindCrash halts the simulated machine at the rule's AtOp'th matching
	// operation: that op and every subsequent FS call fail with ErrCrashed.
	// With a MemDisk base, the durable image at the crash instant can then
	// be materialized and recovered from.
	KindCrash Kind = "crash"
)

// Op selector names. A Rule.Op of "" matches any operation the kind can
// apply to.
const (
	OpCreate    = "create"
	OpOpen      = "open"
	OpRead      = "read"  // File.Read and FS.ReadFile
	OpWrite     = "write" // File.Write and FS.WriteFile
	OpSync      = "sync"
	OpSyncDir   = "syncdir"
	OpClose     = "close"
	OpRename    = "rename"
	OpRemove    = "remove"
	OpMkdir     = "mkdir"
	OpStat      = "stat" // Stat, ReadDir, Glob
	OpWriteFile = "writefile"
)

// Rule selects operations and applies one fault kind to them. Selection is
// deterministic: each rule keeps its own counter of matching ops, and AtOp /
// Prob are evaluated against that counter (and the plan seed), never against
// time.
type Rule struct {
	// Kind is the fault behaviour.
	Kind Kind
	// Op restricts the rule to one operation kind ("write", "sync",
	// "rename", ...). Empty matches any op the kind can apply to.
	Op string
	// Path restricts the rule to paths whose base name matches this glob
	// (path.Match). Empty matches every path.
	Path string
	// AtOp fires the rule at its AtOp'th matching operation (1-based).
	// Zero means every matching operation (gated by Prob and Count).
	// Persistent kinds (crash, enospc) stay triggered from that op on.
	AtOp uint64
	// AfterBytes is the ENOSPC byte budget: accepted payload bytes before
	// the disk is full. Only meaningful for KindENOSPC.
	AfterBytes int64
	// Count caps how many times the rule injects. Zero means unlimited.
	Count int
	// Prob gates each triggered injection on a deterministic coin in [0,1]
	// keyed on (seed, rule, match ordinal). Zero or one means always.
	Prob float64
	// DelayMs is the KindSlow delay in milliseconds.
	DelayMs int64
}

// ruleJSON is the wire form. Pointers make "omitted" distinguishable from
// zero so plans stay terse (same convention as internal/fault).
type ruleJSON struct {
	Kind       Kind     `json:"kind"`
	Op         *string  `json:"op,omitempty"`
	Path       *string  `json:"path,omitempty"`
	AtOp       *uint64  `json:"at_op,omitempty"`
	AfterBytes *int64   `json:"after_bytes,omitempty"`
	Count      *int     `json:"count,omitempty"`
	Prob       *float64 `json:"prob,omitempty"`
	DelayMs    *int64   `json:"delay_ms,omitempty"`
}

// MarshalJSON emits the compact wire form.
func (r Rule) MarshalJSON() ([]byte, error) {
	j := ruleJSON{Kind: r.Kind}
	if r.Op != "" {
		j.Op = &r.Op
	}
	if r.Path != "" {
		j.Path = &r.Path
	}
	if r.AtOp != 0 {
		j.AtOp = &r.AtOp
	}
	if r.AfterBytes != 0 {
		j.AfterBytes = &r.AfterBytes
	}
	if r.Count != 0 {
		j.Count = &r.Count
	}
	if r.Prob != 0 {
		j.Prob = &r.Prob
	}
	if r.DelayMs != 0 {
		j.DelayMs = &r.DelayMs
	}
	return json.Marshal(j)
}

// UnmarshalJSON accepts the wire form, defaulting omitted fields.
func (r *Rule) UnmarshalJSON(data []byte) error {
	var j ruleJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*r = Rule{Kind: j.Kind}
	if j.Op != nil {
		r.Op = *j.Op
	}
	if j.Path != nil {
		r.Path = *j.Path
	}
	if j.AtOp != nil {
		r.AtOp = *j.AtOp
	}
	if j.AfterBytes != nil {
		r.AfterBytes = *j.AfterBytes
	}
	if j.Count != nil {
		r.Count = *j.Count
	}
	if j.Prob != nil {
		r.Prob = *j.Prob
	}
	if j.DelayMs != nil {
		r.DelayMs = *j.DelayMs
	}
	return nil
}

// Plan is a seeded set of disk-fault rules. The zero value (no rules) is a
// valid plan that injects nothing.
type Plan struct {
	Seed  int64  `json:"seed"`
	Rules []Rule `json:"rules,omitempty"`
}

// Validate rejects rules the injector would silently ignore.
func (p *Plan) Validate() error {
	for i, r := range p.Rules {
		prefix := fmt.Sprintf("iofault: rule %d (%s)", i, r.Kind)
		switch r.Kind {
		case KindEIO, KindENOSPC, KindShortWrite, KindLyingFsync, KindRenameFail, KindSlow, KindCrash:
		default:
			return fmt.Errorf("%s: unknown kind", prefix)
		}
		if r.Prob < 0 || r.Prob > 1 {
			return fmt.Errorf("%s: prob %v outside [0,1]", prefix, r.Prob)
		}
		if r.DelayMs < 0 {
			return fmt.Errorf("%s: negative delay", prefix)
		}
		if r.AfterBytes < 0 {
			return fmt.Errorf("%s: negative byte budget", prefix)
		}
		if r.Kind == KindSlow && r.DelayMs == 0 {
			return fmt.Errorf("%s: slow rule without delay_ms", prefix)
		}
		if r.Kind == KindCrash && r.AtOp == 0 {
			return fmt.Errorf("%s: crash rule needs at_op (a definite crash point)", prefix)
		}
		if r.Path != "" {
			if _, err := path.Match(r.Path, "probe"); err != nil {
				return fmt.Errorf("%s: bad path glob %q: %v", prefix, r.Path, err)
			}
		}
	}
	return nil
}

// Parse decodes and validates a JSON plan.
func Parse(data []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("iofault: parse plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Load reads a plan file written by Save (or by hand).
func Load(planPath string) (*Plan, error) {
	data, err := os.ReadFile(planPath)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}

// Save writes the plan as indented JSON.
func (p *Plan) Save(planPath string) error {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(planPath, append(data, '\n'), 0o644)
}

// Convenience constructors in the internal/fault style: each returns one
// rule ready to drop into a Plan.

// EIONth fails the n-th op of the given kind (and optional path glob).
func EIONth(op, pathGlob string, n uint64) Rule {
	return Rule{Kind: KindEIO, Op: op, Path: pathGlob, AtOp: n, Count: 1}
}

// ENOSPCAfter models a disk with the given byte budget left.
func ENOSPCAfter(budget int64) Rule {
	return Rule{Kind: KindENOSPC, AfterBytes: budget}
}

// ShortWriteNth tears the n-th matching write.
func ShortWriteNth(pathGlob string, n uint64) Rule {
	return Rule{Kind: KindShortWrite, Op: OpWrite, Path: pathGlob, AtOp: n, Count: 1}
}

// LyingFsync swallows every matching fsync (file and directory).
func LyingFsync(pathGlob string) Rule {
	return Rule{Kind: KindLyingFsync, Path: pathGlob}
}

// RenameFailNth fails the n-th matching rename.
func RenameFailNth(pathGlob string, n uint64) Rule {
	return Rule{Kind: KindRenameFail, Op: OpRename, Path: pathGlob, AtOp: n, Count: 1}
}

// SlowIO delays every matching op by d.
func SlowIO(op string, d time.Duration) Rule {
	return Rule{Kind: KindSlow, Op: op, DelayMs: int64(d / time.Millisecond)}
}

// CrashAtOp halts the machine at the n-th FS operation.
func CrashAtOp(n uint64) Rule {
	return Rule{Kind: KindCrash, AtOp: n}
}
