// Package iofault is the deterministic I/O fault-injection seam for the
// storage stack. Every component that persists trace data — the segment
// writers and atomic-rename helpers in internal/trace, the read paths in
// internal/store, and the collector daemon's session stores — performs its
// file operations through the FS interface instead of calling the os
// package directly. In production the seam is the zero-cost OS passthrough;
// under test an Injector wraps any base FS and applies seeded, replayable
// fault rules (EIO on the nth op, ENOSPC after a byte budget, short/torn
// writes, lying fsync, rename failure, slow I/O, hard crash), and MemDisk
// models a volatile disk whose durable image after a crash can be
// materialized and recovered from.
//
// The plan format and determinism discipline mirror internal/fault (PR 1):
// JSON rules, a seed, and hashed coins keyed on op ordinals — never on
// wall-clock time — so the same plan and seed replay identically.
package iofault

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"syscall"
)

// File is the writable handle the seam hands out. It is the subset of
// *os.File the storage stack needs: streaming reads and writes, fsync, and
// close. Name reports the path the file was opened under.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
	Name() string
}

// FS is the virtual filesystem seam. The method set is exactly the os-level
// surface the trace/store/remote storage paths use; anything not listed here
// (mmap, CreateTemp, ...) intentionally stays outside the fault domain.
//
// SyncDir fsyncs a directory so just-renamed or just-created entries survive
// a crash; implementations where directory fsync is unsupported may treat it
// as a no-op, but fault injectors still count and may fail it.
type FS interface {
	Create(name string) (File, error)
	Open(name string) (File, error)
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm fs.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(path string, perm fs.FileMode) error
	ReadDir(name string) ([]fs.DirEntry, error)
	Stat(name string) (fs.FileInfo, error)
	Glob(pattern string) ([]string, error)
	SyncDir(dir string) error
}

// OS returns the production filesystem: direct passthrough to the os
// package. The returned value is stateless and shared.
func OS() FS { return osFS{} }

type osFS struct{}

type osFile struct{ *os.File }

func (osFS) Create(name string) (File, error) {
	f, err := os.Create(name)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	return os.WriteFile(name, data, perm)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

func (osFS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

func (osFS) Glob(pattern string) ([]string, error) { return filepath.Glob(pattern) }

// SyncDir fsyncs the directory. Filesystems that refuse directory fsync
// (some CI sandboxes, some network filesystems) are treated as success:
// there is nothing the caller can do and the data-file fsyncs still hold.
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync() //nolint:ioerr // best-effort: refusal (ENOTSUP/EINVAL) is not actionable
	return nil
}

// Or returns fsys if non-nil and the OS passthrough otherwise — the idiom
// options structs use to default their FS field.
func Or(fsys FS) FS {
	if fsys == nil {
		return OS()
	}
	return fsys
}

// ErrCrashed is the terminal error every FS operation returns once an
// injected crash point has fired: the simulated machine is down, nothing
// reaches the disk model anymore. Recovery is exercised by materializing
// the durable image (MemDisk.Materialize) and reopening it.
var ErrCrashed = errors.New("iofault: simulated crash")

// Error is an injected fault, carrying where it fired so tests and logs can
// attribute failures to plan rules. It unwraps to the underlying errno
// (syscall.EIO, syscall.ENOSPC, ...) so errors.Is works on the cause.
type Error struct {
	Kind Kind   // rule kind that fired
	Rule int    // index into Plan.Rules
	Op   string // vfs op ("write", "sync", "rename", ...)
	Path string // path the op targeted
	Seq  uint64 // injector op sequence number
	Err  error  // underlying cause (errno or ErrCrashed)
}

func (e *Error) Error() string {
	return "iofault: injected " + string(e.Kind) + " (rule " + itoa(e.Rule) + ") on " +
		e.Op + " " + e.Path + ": " + e.Err.Error()
}

func (e *Error) Unwrap() error { return e.Err }

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [24]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// IsInjected reports whether err originated from a fault plan (including
// crash points).
func IsInjected(err error) bool {
	var ie *Error
	return errors.As(err, &ie) || errors.Is(err, ErrCrashed)
}

// IsDiskFull reports whether err is an out-of-space condition — injected or
// real — that should push a storage consumer into degraded mode rather than
// be treated as a transient per-file failure.
func IsDiskFull(err error) bool {
	return errors.Is(err, syscall.ENOSPC) || errors.Is(err, syscall.EDQUOT)
}
