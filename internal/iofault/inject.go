package iofault

import (
	"io/fs"
	"path"
	"path/filepath"
	"sync"
	"syscall"
	"time"
)

// Event is one injected fault, recorded for audit and replay comparison.
// Two runs of the same workload under the same plan and seed produce the
// same event sequence (for single-threaded workloads, bit-for-bit; for
// concurrent ones, up to goroutine interleaving of the op ordinals).
type Event struct {
	Seq  uint64 `json:"seq"`  // injector op sequence number
	Rule int    `json:"rule"` // index into Plan.Rules
	Kind Kind   `json:"kind"`
	Op   string `json:"op"`
	Path string `json:"path"`
}

// maxEvents bounds the audit log so a long-lived injector (a soak daemon
// under a persistent ENOSPC plan) cannot grow without bound.
const maxEvents = 8192

// Injector is an FS middleware that applies a fault plan to every operation
// before (maybe) forwarding it to the base filesystem. All decisions are
// deterministic functions of the plan, its seed, and per-rule match
// ordinals.
type Injector struct {
	base FS

	mu      sync.Mutex
	rules   []Rule
	seed    int64
	seq     uint64   // ops seen (monotone, assigned under mu)
	matches []uint64 // per-rule count of matching ops
	fired   []int    // per-rule count of injections
	bytes   int64    // accepted write payload bytes (ENOSPC budget meter)
	crashed bool
	events  []Event
	dropped int
}

// NewInjector wraps base with the plan's rules. The plan must validate.
func NewInjector(base FS, p *Plan) (*Injector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Injector{
		base:    base,
		rules:   append([]Rule(nil), p.Rules...),
		seed:    p.Seed,
		matches: make([]uint64, len(p.Rules)),
		fired:   make([]int, len(p.Rules)),
	}, nil
}

// Base returns the wrapped filesystem.
func (in *Injector) Base() FS { return in.base }

// Clear removes every rule — the disk "recovers" (space returns, the
// controller stops erroring). Counters and the crash latch are kept: a
// crashed machine stays crashed.
func (in *Injector) Clear() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = nil
}

// SetRules replaces the rule set at runtime (counters reset). The seed is
// kept. Invalid rules are rejected.
func (in *Injector) SetRules(rules []Rule) error {
	p := Plan{Seed: in.seed, Rules: rules}
	if err := p.Validate(); err != nil {
		return err
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = append([]Rule(nil), rules...)
	in.matches = make([]uint64, len(rules))
	in.fired = make([]int, len(rules))
	return nil
}

// Ops returns how many FS operations the injector has seen — the coordinate
// space crash points are expressed in.
func (in *Injector) Ops() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.seq
}

// Crashed reports whether a crash rule has fired.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// Events returns the audit log of injected faults (oldest first; bounded,
// with Dropped reporting overflow).
func (in *Injector) Events() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Event(nil), in.events...)
}

// Dropped reports audit-log entries lost to the bound.
func (in *Injector) Dropped() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.dropped
}

// splitmix64 finalizer — the same bit mixer internal/fault uses, so the
// determinism story is one story.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// coin returns a deterministic uniform [0,1) keyed on (seed, rule, n).
func (in *Injector) coin(rule int, n uint64) float64 {
	h := mix(uint64(in.seed) ^ mix(uint64(rule)))
	h = mix(h ^ n)
	return float64(h>>11) / float64(1<<53)
}

// spaceConsuming reports whether an op eats into the ENOSPC budget.
func spaceConsuming(op string) bool {
	switch op {
	case OpWrite, OpWriteFile, OpCreate, OpMkdir:
		return true
	}
	return false
}

// kindOpMatch reports whether a rule kind can apply to an op when the rule
// does not name one explicitly.
func kindOpMatch(k Kind, op string) bool {
	switch k {
	case KindENOSPC:
		return spaceConsuming(op)
	case KindShortWrite:
		return op == OpWrite || op == OpWriteFile
	case KindLyingFsync:
		return op == OpSync || op == OpSyncDir
	case KindRenameFail:
		return op == OpRename
	default: // eio, slow, crash: any op
		return true
	}
}

func pathMatch(glob, p string) bool {
	if glob == "" {
		return true
	}
	ok, err := path.Match(glob, filepath.Base(p))
	return err == nil && ok
}

// decision is the outcome of consulting the plan for one op.
type decision struct {
	delay   time.Duration
	allowed int  // payload bytes to apply before failing (write ops)
	skip    bool // report success without touching base (lying fsync)
	err     error
}

// check consults the plan for one operation. payload is the write size (0
// for non-writes); paths lists every path the op touches (two for rename).
func (in *Injector) check(op string, payload int, paths ...string) decision {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.seq++
	seq := in.seq
	m := metrics()
	m.ops.Inc()
	p := paths[0]
	if in.crashed {
		return decision{err: &Error{Kind: KindCrash, Rule: -1, Op: op, Path: p, Seq: seq, Err: ErrCrashed}}
	}
	var d decision
	d.allowed = payload
	for i := range in.rules {
		r := &in.rules[i]
		if r.Op != "" && r.Op != op {
			continue
		}
		if r.Op == "" && !kindOpMatch(r.Kind, op) {
			continue
		}
		matched := false
		for _, cand := range paths {
			if pathMatch(r.Path, cand) {
				matched = true
				break
			}
		}
		if !matched {
			continue
		}
		in.matches[i]++
		n := in.matches[i]
		// Trigger condition, per kind.
		switch r.Kind {
		case KindCrash:
			if n < r.AtOp {
				continue
			}
		case KindENOSPC:
			// A write that would overshoot the budget triggers (and tears at
			// the boundary); other space-consuming ops fail once it is spent.
			if op == OpWrite || op == OpWriteFile {
				if in.bytes+int64(payload) <= r.AfterBytes {
					continue
				}
			} else if in.bytes < r.AfterBytes {
				continue
			}
		default:
			if r.AtOp != 0 && n != r.AtOp {
				continue
			}
		}
		if r.Count > 0 && in.fired[i] >= r.Count {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && in.coin(i, n) >= r.Prob {
			continue
		}
		in.fired[i]++
		in.record(Event{Seq: seq, Rule: i, Kind: r.Kind, Op: op, Path: p})
		m.injected.Inc()
		switch r.Kind {
		case KindSlow:
			// A modifier, not a terminal fault: accumulate and keep scanning.
			d.delay += time.Duration(r.DelayMs) * time.Millisecond
			continue
		case KindCrash:
			in.crashed = true
			m.crashes.Inc()
			d.err = &Error{Kind: KindCrash, Rule: i, Op: op, Path: p, Seq: seq, Err: ErrCrashed}
			return d
		case KindLyingFsync:
			d.skip = true
			return d
		case KindENOSPC:
			// A write straddling the budget is applied up to it — torn, like
			// the real thing. Everything else fails outright.
			d.allowed = 0
			if op == OpWrite || op == OpWriteFile {
				if left := r.AfterBytes - in.bytes; left > 0 && int64(payload) > left {
					d.allowed = int(left)
				}
			}
			d.err = &Error{Kind: r.Kind, Rule: i, Op: op, Path: p, Seq: seq, Err: syscall.ENOSPC}
			return d
		case KindShortWrite:
			if payload > 0 {
				d.allowed = int(mix(uint64(in.seed)^mix(uint64(i)<<32|n)) % uint64(payload))
			}
			d.err = &Error{Kind: r.Kind, Rule: i, Op: op, Path: p, Seq: seq, Err: syscall.EIO}
			return d
		default: // eio, rename-fail
			d.allowed = 0
			d.err = &Error{Kind: r.Kind, Rule: i, Op: op, Path: p, Seq: seq, Err: syscall.EIO}
			return d
		}
	}
	return d
}

func (in *Injector) record(ev Event) {
	if len(in.events) >= maxEvents {
		in.dropped++
		return
	}
	in.events = append(in.events, ev)
}

// account meters accepted write bytes against the ENOSPC budget.
func (in *Injector) account(n int) {
	if n <= 0 {
		return
	}
	in.mu.Lock()
	in.bytes += int64(n)
	in.mu.Unlock()
}

// ---- FS implementation ----

func (in *Injector) Create(name string) (File, error) {
	d := in.check(OpCreate, 0, name)
	sleep(d.delay)
	if d.err != nil {
		return nil, d.err
	}
	f, err := in.base.Create(name)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f}, nil
}

func (in *Injector) Open(name string) (File, error) {
	d := in.check(OpOpen, 0, name)
	sleep(d.delay)
	if d.err != nil {
		return nil, d.err
	}
	f, err := in.base.Open(name)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f}, nil
}

func (in *Injector) ReadFile(name string) ([]byte, error) {
	d := in.check(OpRead, 0, name)
	sleep(d.delay)
	if d.err != nil {
		return nil, d.err
	}
	return in.base.ReadFile(name)
}

func (in *Injector) WriteFile(name string, data []byte, perm fs.FileMode) error {
	d := in.check(OpWriteFile, len(data), name)
	sleep(d.delay)
	if d.err != nil {
		// Torn WriteFile: apply the allowed prefix so the damage is visible.
		if d.allowed > 0 {
			in.base.WriteFile(name, data[:d.allowed], perm) //nolint:ioerr // injected failure already reported
			in.account(d.allowed)
		}
		return d.err
	}
	if err := in.base.WriteFile(name, data, perm); err != nil {
		return err
	}
	in.account(len(data))
	return nil
}

func (in *Injector) Rename(oldpath, newpath string) error {
	d := in.check(OpRename, 0, newpath, oldpath)
	sleep(d.delay)
	if d.err != nil {
		return d.err
	}
	return in.base.Rename(oldpath, newpath)
}

func (in *Injector) Remove(name string) error {
	d := in.check(OpRemove, 0, name)
	sleep(d.delay)
	if d.err != nil {
		return d.err
	}
	return in.base.Remove(name)
}

func (in *Injector) MkdirAll(p string, perm fs.FileMode) error {
	d := in.check(OpMkdir, 0, p)
	sleep(d.delay)
	if d.err != nil {
		return d.err
	}
	return in.base.MkdirAll(p, perm)
}

func (in *Injector) ReadDir(name string) ([]fs.DirEntry, error) {
	d := in.check(OpStat, 0, name)
	sleep(d.delay)
	if d.err != nil {
		return nil, d.err
	}
	return in.base.ReadDir(name)
}

func (in *Injector) Stat(name string) (fs.FileInfo, error) {
	d := in.check(OpStat, 0, name)
	sleep(d.delay)
	if d.err != nil {
		return nil, d.err
	}
	return in.base.Stat(name)
}

func (in *Injector) Glob(pattern string) ([]string, error) {
	d := in.check(OpStat, 0, pattern)
	sleep(d.delay)
	if d.err != nil {
		return nil, d.err
	}
	return in.base.Glob(pattern)
}

func (in *Injector) SyncDir(dir string) error {
	d := in.check(OpSyncDir, 0, dir)
	sleep(d.delay)
	if d.skip || d.err != nil {
		// A failed directory fsync is surfaced (unlike the OS passthrough,
		// which swallows refusals): the injector exists to expose it.
		return d.err
	}
	return in.base.SyncDir(dir)
}

func sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// injFile routes per-handle ops back through the injector.
type injFile struct {
	in *Injector
	f  File
}

func (jf *injFile) Name() string { return jf.f.Name() }

func (jf *injFile) Read(p []byte) (int, error) {
	d := jf.in.check(OpRead, 0, jf.f.Name())
	sleep(d.delay)
	if d.err != nil {
		return 0, d.err
	}
	return jf.f.Read(p)
}

func (jf *injFile) Write(p []byte) (int, error) {
	d := jf.in.check(OpWrite, len(p), jf.f.Name())
	sleep(d.delay)
	if d.err != nil {
		n := 0
		if d.allowed > 0 {
			n, _ = jf.f.Write(p[:d.allowed])
			jf.in.account(n)
		}
		return n, d.err
	}
	n, err := jf.f.Write(p)
	jf.in.account(n)
	return n, err
}

func (jf *injFile) Sync() error {
	d := jf.in.check(OpSync, 0, jf.f.Name())
	sleep(d.delay)
	if d.skip || d.err != nil {
		return d.err
	}
	return jf.f.Sync()
}

func (jf *injFile) Close() error {
	d := jf.in.check(OpClose, 0, jf.f.Name())
	sleep(d.delay)
	if d.err != nil {
		// The handle is still closed underneath — a failed close must not
		// leak the descriptor — but the injected error is what surfaces.
		jf.f.Close() //nolint:ioerr // injected failure already reported
		return d.err
	}
	return jf.f.Close()
}
