package iofault

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// MemDisk is an in-memory filesystem that models what a real disk keeps
// across a crash, for the ALICE-style crash-consistency sweep:
//
//   - File data is durable only up to the last Sync of its handle; bytes
//     written after it are volatile and lost (or torn) at a crash.
//   - Directory entries (creates, renames, removes) are durable only once
//     the parent directory is fsynced (SyncDir). Until then a crash shows
//     the previous binding: an atomically renamed file falls back to its
//     old content, a fresh file vanishes. Create and WriteFile bind a NEW
//     inode, so an unsynced rename-over never tears the old durable bytes.
//   - Directories themselves are treated as durable on creation (journaled
//     metadata), a deliberate simplification documented in DESIGN.md §16.
//
// Materialize writes the durable view into a real scratch directory so the
// ordinary recovery paths (store.Open, daemon salvage) can run against it.
// All modelling is deterministic: the torn tail of an unsynced file is a
// seeded hash of (seed, crash op, path), never randomness or time.
type MemDisk struct {
	seed int64

	mu      sync.Mutex
	names   map[string]*inode // volatile namespace, cleaned paths
	durable map[string]*inode // entry-durable namespace
	dirs    map[string]bool   // existing directories (durable on creation)
}

type inode struct {
	data   []byte
	synced int // durable prefix length
}

// NewMemDisk returns an empty disk. The seed drives torn-tail choices at
// materialization.
func NewMemDisk(seed int64) *MemDisk {
	return &MemDisk{
		seed:    seed,
		names:   make(map[string]*inode),
		durable: make(map[string]*inode),
		dirs:    map[string]bool{".": true},
	}
}

func clean(p string) string { return filepath.Clean(p) }

func (d *MemDisk) dirExistsLocked(dir string) bool {
	return dir == "." || dir == "/" || d.dirs[dir]
}

func pathErr(op, p string, err error) error {
	return &fs.PathError{Op: op, Path: p, Err: err}
}

// Create truncate-creates name by binding a fresh inode; the durable
// namespace keeps the old binding until the parent directory is synced.
func (d *MemDisk) Create(name string) (File, error) {
	name = clean(name)
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.dirExistsLocked(filepath.Dir(name)) {
		return nil, pathErr("create", name, fs.ErrNotExist)
	}
	ino := &inode{}
	d.names[name] = ino
	return &memHandle{d: d, ino: ino, path: name}, nil
}

// Open opens name for reading.
func (d *MemDisk) Open(name string) (File, error) {
	name = clean(name)
	d.mu.Lock()
	defer d.mu.Unlock()
	ino, ok := d.names[name]
	if !ok {
		return nil, pathErr("open", name, fs.ErrNotExist)
	}
	return &memHandle{d: d, ino: ino, path: name, ro: true}, nil
}

func (d *MemDisk) ReadFile(name string) ([]byte, error) {
	name = clean(name)
	d.mu.Lock()
	defer d.mu.Unlock()
	ino, ok := d.names[name]
	if !ok {
		return nil, pathErr("open", name, fs.ErrNotExist)
	}
	return append([]byte(nil), ino.data...), nil
}

// WriteFile binds a fresh inode with the given content — and, like
// os.WriteFile, no fsync: the content is entirely volatile until a Sync
// or a crash-free shutdown.
func (d *MemDisk) WriteFile(name string, data []byte, _ fs.FileMode) error {
	name = clean(name)
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.dirExistsLocked(filepath.Dir(name)) {
		return pathErr("open", name, fs.ErrNotExist)
	}
	d.names[name] = &inode{data: append([]byte(nil), data...)}
	return nil
}

func (d *MemDisk) Rename(oldpath, newpath string) error {
	oldpath, newpath = clean(oldpath), clean(newpath)
	d.mu.Lock()
	defer d.mu.Unlock()
	ino, ok := d.names[oldpath]
	if !ok {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: fs.ErrNotExist}
	}
	if !d.dirExistsLocked(filepath.Dir(newpath)) {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: fs.ErrNotExist}
	}
	delete(d.names, oldpath)
	d.names[newpath] = ino
	return nil
}

func (d *MemDisk) Remove(name string) error {
	name = clean(name)
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.names[name]; !ok {
		if !d.dirs[name] {
			return pathErr("remove", name, fs.ErrNotExist)
		}
		delete(d.dirs, name)
		return nil
	}
	delete(d.names, name)
	return nil
}

func (d *MemDisk) MkdirAll(p string, _ fs.FileMode) error {
	p = clean(p)
	d.mu.Lock()
	defer d.mu.Unlock()
	for cur := p; cur != "." && cur != "/" && cur != string(filepath.Separator); cur = filepath.Dir(cur) {
		d.dirs[cur] = true
	}
	return nil
}

func (d *MemDisk) ReadDir(name string) ([]fs.DirEntry, error) {
	name = clean(name)
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.dirExistsLocked(name) {
		return nil, pathErr("open", name, fs.ErrNotExist)
	}
	seen := make(map[string]fs.DirEntry)
	for p, ino := range d.names {
		if filepath.Dir(p) == name {
			base := filepath.Base(p)
			seen[base] = memEntry{name: base, size: int64(len(ino.data))}
		}
	}
	for p := range d.dirs {
		if filepath.Dir(p) == name {
			base := filepath.Base(p)
			seen[base] = memEntry{name: base, dir: true}
		}
	}
	out := make([]fs.DirEntry, 0, len(seen))
	for _, e := range seen {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out, nil
}

func (d *MemDisk) Stat(name string) (fs.FileInfo, error) {
	name = clean(name)
	d.mu.Lock()
	defer d.mu.Unlock()
	if ino, ok := d.names[name]; ok {
		return memInfo{name: filepath.Base(name), size: int64(len(ino.data))}, nil
	}
	if d.dirExistsLocked(name) {
		return memInfo{name: filepath.Base(name), dir: true}, nil
	}
	return nil, pathErr("stat", name, fs.ErrNotExist)
}

func (d *MemDisk) Glob(pattern string) ([]string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []string
	for p := range d.names {
		ok, err := filepath.Match(pattern, p)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out, nil
}

// SyncDir makes the directory's current entries durable: bindings created,
// renamed, or removed since the last sync are committed.
func (d *MemDisk) SyncDir(dir string) error {
	dir = clean(dir)
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.dirExistsLocked(dir) {
		return nil
	}
	for p := range d.durable {
		if filepath.Dir(p) == dir {
			if _, ok := d.names[p]; !ok {
				delete(d.durable, p)
			}
		}
	}
	for p, ino := range d.names {
		if filepath.Dir(p) == dir {
			d.durable[p] = ino
		}
	}
	return nil
}

// Shutdown commits everything — the clean-exit image (no crash): all
// entries durable, all data synced. Used by sweeps to model a run that was
// allowed to finish.
func (d *MemDisk) Shutdown() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for p := range d.durable {
		if _, ok := d.names[p]; !ok {
			delete(d.durable, p)
		}
	}
	for p, ino := range d.names {
		d.durable[p] = ino
		ino.synced = len(ino.data)
	}
}

// MaterializeOptions configures the durable image.
type MaterializeOptions struct {
	// Torn extends each durable file past its synced prefix by a
	// deterministic 0..unsynced extra bytes — in-flight writeback caught
	// mid-page. Without it the image is the pessimal synced-only view.
	Torn bool
	// CrashOp keys the torn-tail hash so different crash points tear
	// differently under one seed.
	CrashOp uint64
}

// Materialize writes the durable view into destDir (a real directory) so
// recovery code paths can run against it. destDir must exist and be empty.
func (d *MemDisk) Materialize(destDir string, opts MaterializeOptions) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for p := range d.dirs {
		if p == "." {
			continue
		}
		if err := os.MkdirAll(filepath.Join(destDir, p), 0o777); err != nil {
			return err
		}
	}
	for p, ino := range d.durable {
		n := ino.synced
		if opts.Torn && len(ino.data) > n {
			extra := len(ino.data) - n
			h := mix(uint64(d.seed) ^ mix(opts.CrashOp) ^ hashPath(p))
			n += int(h % uint64(extra+1))
		}
		dst := filepath.Join(destDir, p)
		if err := os.MkdirAll(filepath.Dir(dst), 0o777); err != nil {
			return err
		}
		if err := os.WriteFile(dst, ino.data[:n], 0o666); err != nil {
			return err
		}
	}
	return nil
}

// DurableLen reports the synced prefix length of the inode durably bound to
// path (0 if the entry is not durable) — what a pessimal crash preserves.
func (d *MemDisk) DurableLen(p string) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	ino, ok := d.durable[clean(p)]
	if !ok {
		return 0
	}
	return int64(ino.synced)
}

func hashPath(p string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(p); i++ {
		h ^= uint64(p[i])
		h *= 1099511628211
	}
	return h
}

// memHandle is an open MemDisk file.
type memHandle struct {
	d    *MemDisk
	ino  *inode
	path string
	pos  int
	ro   bool
	done bool
}

func (h *memHandle) Name() string { return h.path }

func (h *memHandle) Read(p []byte) (int, error) {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	if h.done {
		return 0, pathErr("read", h.path, fs.ErrClosed)
	}
	if h.pos >= len(h.ino.data) {
		return 0, io.EOF
	}
	n := copy(p, h.ino.data[h.pos:])
	h.pos += n
	return n, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	if h.done {
		return 0, pathErr("write", h.path, fs.ErrClosed)
	}
	if h.ro {
		return 0, pathErr("write", h.path, fs.ErrPermission)
	}
	h.ino.data = append(h.ino.data, p...)
	return len(p), nil
}

// Sync makes every byte written so far durable.
func (h *memHandle) Sync() error {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	if h.done {
		return pathErr("sync", h.path, fs.ErrClosed)
	}
	h.ino.synced = len(h.ino.data)
	return nil
}

// Close releases the handle. Like a real close it implies no durability.
func (h *memHandle) Close() error {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	if h.done {
		return pathErr("close", h.path, fs.ErrClosed)
	}
	h.done = true
	return nil
}

type memEntry struct {
	name string
	size int64
	dir  bool
}

func (e memEntry) Name() string { return e.name }
func (e memEntry) IsDir() bool  { return e.dir }
func (e memEntry) Type() fs.FileMode {
	if e.dir {
		return fs.ModeDir
	}
	return 0
}
func (e memEntry) Info() (fs.FileInfo, error) {
	return memInfo{name: e.name, size: e.size, dir: e.dir}, nil
}

type memInfo struct {
	name string
	size int64
	dir  bool
}

func (i memInfo) Name() string { return i.name }
func (i memInfo) Size() int64  { return i.size }
func (i memInfo) Mode() fs.FileMode {
	if i.dir {
		return fs.ModeDir | 0o777
	}
	return 0o666
}
func (i memInfo) ModTime() time.Time { return time.Time{} }
func (i memInfo) IsDir() bool        { return i.dir }
func (i memInfo) Sys() any           { return nil }

// String renders the volatile vs durable view for test failure messages.
func (d *MemDisk) String() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var b strings.Builder
	paths := make([]string, 0, len(d.names))
	for p := range d.names {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		ino := d.names[p]
		dur, durable := d.durable[p]
		tag := "volatile-entry"
		if durable {
			if dur == ino {
				tag = fmt.Sprintf("durable %d/%d", ino.synced, len(ino.data))
			} else {
				tag = fmt.Sprintf("durable-old %d/%d (new %d)", dur.synced, len(dur.data), len(ino.data))
			}
		}
		fmt.Fprintf(&b, "%s: %d bytes [%s]\n", p, len(ino.data), tag)
	}
	return b.String()
}
