package vis

import (
	"strings"
	"testing"

	"tracedbg/internal/trace"
)

func TestHTMLReportSections(t *testing.T) {
	tr := sampleTrace(t)
	out := HTMLReport{Title: "demo <run>"}.Render(tr)
	for _, frag := range []string{
		"<!DOCTYPE html>",
		"demo &lt;run&gt;", // escaped title
		"Time-space diagram",
		"<svg",
		"Per-rank utilization",
		"Message traffic",
		"Unmatched messages",
		"Deadlock analysis",
		"Message races",
		"Communication graph",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("report missing %q", frag)
		}
	}
	// The sample has a blocked rank: the blocked receive shows up as an
	// unmatched receive.
	if !strings.Contains(out, "unmatched recv") {
		t.Error("blocked receive not reported")
	}
}

func TestHTMLReportEmptyTrace(t *testing.T) {
	out := HTMLReport{}.Render(trace.New(2))
	if !strings.Contains(out, "tracedbg report") {
		t.Error("default title missing")
	}
	if !strings.Contains(out, "2 ranks, 0 events") {
		t.Error("summary missing")
	}
	// No function profile section for an empty trace.
	if strings.Contains(out, "Function profile") {
		t.Error("empty profile rendered")
	}
}
