package vis

import (
	"fmt"
	"io"
	"strings"

	"tracedbg/internal/trace"
)

// ASCIIStream renders the time-space diagram from streaming per-rank
// cursors, never materializing the trace. open is called once per rank per
// pass (store.Records is directly assignable): a window pre-pass when the
// options don't pin the viewport, then one painting pass. For options it
// supports the output is byte-identical to ASCII.
//
// Overlays that need random access into the trace — Messages, Selected,
// and the Past/Future frontiers — are not supported and return an error;
// render those from a materialized trace.
func ASCIIStream(numRanks int, open func(int) (trace.RecordCursor, error), opt Options) (string, error) {
	if opt.Messages || opt.Selected != nil || opt.Past != nil || opt.Future != nil {
		return "", fmt.Errorf("vis: streaming render does not support messages, selection, or frontier overlays")
	}
	opt = opt.withDefaults(100)

	t0, t1 := opt.T0, opt.T1
	if t1 <= t0 {
		var err error
		t0, t1, err = streamWindow(numRanks, open)
		if err != nil {
			return "", err
		}
	}
	if t1 == t0 {
		t1 = t0 + 1
	}
	cols := opt.Width

	colOf := func(t int64) int {
		c := int(float64(t-t0) / float64(t1-t0) * float64(cols))
		if c < 0 {
			c = 0
		}
		if c >= cols {
			c = cols - 1
		}
		return c
	}

	var sb strings.Builder
	if opt.Title != "" {
		fmt.Fprintf(&sb, "%s\n", opt.Title)
	}
	fmt.Fprintf(&sb, "time-space diagram vt=[%d..%d] (%d columns)\n", t0, t1, cols)

	stopCol := -1
	if opt.Stopline >= t0 && opt.Stopline <= t1 {
		stopCol = colOf(opt.Stopline)
	}

	for r := 0; r < numRanks; r++ {
		row := make([]byte, cols)
		for i := range row {
			row[i] = '.'
		}
		c, err := open(r)
		if err != nil {
			return "", err
		}
		for {
			rec, err := c.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				c.Close()
				return "", err
			}
			if rec.End < t0 || rec.Start > t1 {
				continue
			}
			a := colOf(max64(rec.Start, t0))
			b := colOf(min64(rec.End, t1))
			g := barGlyph(rec.Kind)
			for col := a; col <= b; col++ {
				row[col] = g
			}
		}
		c.Close()
		if stopCol >= 0 {
			row[stopCol] = '|'
		}
		fmt.Fprintf(&sb, "P%-3d %s\n", r, row)
	}
	sb.WriteString("legend: #=compute S=send R=recv C=collective x=blocked f=func r=region ,=marker |=stopline @=selected <=past-frontier >=future-frontier\n")
	return sb.String(), nil
}

// streamWindow computes the full-trace viewport the way Trace.StartTime and
// Trace.EndTime do: smallest first-record Start across ranks (0 if no
// records at all) and largest End across all records.
func streamWindow(numRanks int, open func(int) (trace.RecordCursor, error)) (int64, int64, error) {
	first := true
	var start, end int64
	for r := 0; r < numRanks; r++ {
		c, err := open(r)
		if err != nil {
			return 0, 0, err
		}
		firstOfRank := true
		for {
			rec, err := c.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				c.Close()
				return 0, 0, err
			}
			if firstOfRank {
				if first || rec.Start < start {
					start = rec.Start
					first = false
				}
				firstOfRank = false
			}
			if rec.End > end {
				end = rec.End
			}
		}
		c.Close()
	}
	return start, end, nil
}
