package vis

import (
	"io"
	"math/rand"
	"testing"

	"tracedbg/internal/trace"
)

type sliceCursor struct {
	recs []trace.Record
	i    int
}

func (c *sliceCursor) Next() (*trace.Record, error) {
	if c.i >= len(c.recs) {
		return nil, io.EOF
	}
	rec := &c.recs[c.i]
	c.i++
	return rec, nil
}

func (c *sliceCursor) Close() error { return nil }

func rankOpener(tr *trace.Trace) func(int) (trace.RecordCursor, error) {
	return func(rank int) (trace.RecordCursor, error) {
		return &sliceCursor{recs: tr.Rank(rank)}, nil
	}
}

func visTrace(rng *rand.Rand, ranks, events int) *trace.Trace {
	tr := trace.New(ranks)
	clock := make([]int64, ranks)
	marker := make([]uint64, ranks)
	var msgID uint64
	for i := 0; i < events; i++ {
		r := rng.Intn(ranks)
		s := clock[r]
		e := s + 1 + int64(rng.Intn(7))
		clock[r] = e
		marker[r]++
		kind := trace.KindCompute
		switch rng.Intn(4) {
		case 0:
			kind = trace.KindSend
			msgID++
		case 1:
			kind = trace.KindRecv
		case 2:
			kind = trace.KindBlocked
		}
		tr.MustAppend(trace.Record{Kind: kind, Rank: r, Marker: marker[r],
			Start: s, End: e, Src: r, Dst: (r + 1) % ranks, MsgID: msgID})
	}
	return tr
}

// TestASCIIStreamIdentity: for every option shape the streaming renderer
// supports, its output must be byte-identical to the materialized ASCII.
func TestASCIIStreamIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for i := 0; i < 5; i++ {
		tr := visTrace(rng, 2+rng.Intn(6), 100+rng.Intn(300))
		opts := []Options{
			{},
			{Width: 60},
			{Width: 120, Stopline: 40},
			{T0: 10, T1: 80},
			{Width: 40, T0: 5, T1: 25, Stopline: 15},
		}
		for j, opt := range opts {
			if opt.Stopline == 0 {
				opt.Stopline = -1
			}
			want := ASCII(tr, opt)
			got, err := ASCIIStream(tr.NumRanks(), rankOpener(tr), opt)
			if err != nil {
				t.Fatalf("trace %d opt %d: %v", i, j, err)
			}
			if got != want {
				t.Fatalf("trace %d opt %d: stream render differs\n got:\n%s\nwant:\n%s", i, j, got, want)
			}
		}
	}
}

func TestASCIIStreamEmpty(t *testing.T) {
	tr := trace.New(3)
	want := ASCII(tr, Options{Stopline: -1})
	got, err := ASCIIStream(3, rankOpener(tr), Options{Stopline: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("empty stream render differs\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestASCIIStreamRejectsOverlays: message lines, selection, and frontier
// overlays need random access and must be refused, not silently dropped.
func TestASCIIStreamRejectsOverlays(t *testing.T) {
	tr := visTrace(rand.New(rand.NewSource(101)), 3, 50)
	id := trace.EventID{Rank: 0, Index: 0}
	for _, opt := range []Options{
		{Messages: true, Stopline: -1},
		{Selected: &id, Stopline: -1},
	} {
		if _, err := ASCIIStream(tr.NumRanks(), rankOpener(tr), opt); err == nil {
			t.Fatalf("overlay options %+v accepted", opt)
		}
	}
}
