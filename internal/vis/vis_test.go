package vis

import (
	"strings"
	"testing"

	"tracedbg/internal/causality"
	"tracedbg/internal/trace"
)

func sampleTrace(t *testing.T) *trace.Trace {
	t.Helper()
	tr := trace.New(3)
	tr.MustAppend(trace.Record{Kind: trace.KindCompute, Rank: 0, Marker: 1, Start: 0, End: 40})
	tr.MustAppend(trace.Record{Kind: trace.KindSend, Rank: 0, Marker: 2, Start: 40, End: 50, Src: 0, Dst: 1, Tag: 3, Bytes: 8, MsgID: 1})
	tr.MustAppend(trace.Record{Kind: trace.KindRecv, Rank: 1, Marker: 1, Start: 0, End: 60, Src: 0, Dst: 1, Tag: 3, Bytes: 8, MsgID: 1})
	tr.MustAppend(trace.Record{Kind: trace.KindCompute, Rank: 1, Marker: 2, Start: 60, End: 100})
	tr.MustAppend(trace.Record{Kind: trace.KindBlocked, Rank: 2, Marker: 1, Start: 0, End: 100, Src: 0, Tag: 9, Name: "Blocked(Recv)"})
	return tr
}

func TestSVGStructure(t *testing.T) {
	tr := sampleTrace(t)
	svg := SVG(tr, Options{Messages: true, Stopline: 55, Title: "test run"})
	for _, frag := range []string{
		"<svg", "</svg>", "test run",
		`>P0<`, `>P1<`, `>P2<`,
		barColor(trace.KindCompute), barColor(trace.KindSend),
		barColor(trace.KindRecv), barColor(trace.KindBlocked),
		"stopline", `stroke="red"`,
		"marker-end", // message arrow
	} {
		if !strings.Contains(svg, frag) {
			t.Errorf("SVG missing %q", frag)
		}
	}
	// One message line between lanes.
	if !strings.Contains(svg, `<line x1=`) {
		t.Error("no message line drawn")
	}
}

func TestSVGViewportClipsEvents(t *testing.T) {
	tr := sampleTrace(t)
	full := SVG(tr, Options{})
	zoomed := SVG(tr, Options{T0: 60, T1: 100})
	if len(zoomed) >= len(full) {
		t.Errorf("zoomed view should contain fewer elements (%d vs %d bytes)", len(zoomed), len(full))
	}
	// The send (ends at 50) is outside the zoom window.
	if strings.Count(zoomed, barColor(trace.KindSend)) != 0 {
		t.Error("zoom window should exclude the send bar")
	}
}

func TestSVGFrontiersAndSelection(t *testing.T) {
	tr := sampleTrace(t)
	o, err := causality.New(tr)
	if err != nil {
		t.Fatal(err)
	}
	sel := trace.EventID{Rank: 1, Index: 0}
	pf, _ := o.PastFrontier(sel)
	ff, _ := o.FutureFrontier(sel)
	svg := SVG(tr, Options{Past: pf, Future: ff, Selected: &sel})
	if !strings.Contains(svg, "<polyline") {
		t.Error("frontier polyline missing")
	}
	if !strings.Contains(svg, "<circle") {
		t.Error("selected-event circle missing")
	}
}

func TestASCIILayout(t *testing.T) {
	tr := sampleTrace(t)
	out := ASCII(tr, Options{Width: 50, Messages: true, Stopline: 55})
	lines := strings.Split(out, "\n")
	var rows []string
	for _, l := range lines {
		if strings.HasPrefix(l, "P") {
			rows = append(rows, l)
		}
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d:\n%s", len(rows), out)
	}
	if !strings.Contains(rows[0], "#") || !strings.Contains(rows[0], "S") {
		t.Errorf("rank 0 row missing glyphs: %s", rows[0])
	}
	if !strings.Contains(rows[1], "R") {
		t.Errorf("rank 1 row missing recv: %s", rows[1])
	}
	if !strings.Contains(rows[2], "x") {
		t.Errorf("rank 2 row missing blocked: %s", rows[2])
	}
	if !strings.Contains(out, "|") {
		t.Error("stopline column missing")
	}
	if !strings.Contains(out, "0->1 tag=3 bytes=8") {
		t.Errorf("message list missing:\n%s", out)
	}
	if !strings.Contains(out, "legend:") {
		t.Error("legend missing")
	}
}

func TestASCIIFrontierMarks(t *testing.T) {
	tr := sampleTrace(t)
	o, err := causality.New(tr)
	if err != nil {
		t.Fatal(err)
	}
	sel := trace.EventID{Rank: 1, Index: 1}
	pf, _ := o.PastFrontier(sel)
	ff, _ := o.FutureFrontier(sel)
	out := ASCII(tr, Options{Width: 60, Past: pf, Future: ff, Selected: &sel})
	if !strings.Contains(out, "<") {
		t.Error("past frontier mark missing")
	}
	if !strings.Contains(out, "@") {
		t.Error("selected mark missing")
	}
	_ = ff
}

func TestVKFrames(t *testing.T) {
	tr := sampleTrace(t)
	frames := VKFrames(tr, 40, 30, Options{Width: 40, Title: "vk"})
	if len(frames) < 3 {
		t.Fatalf("frames = %d", len(frames))
	}
	for i, f := range frames {
		if !strings.Contains(f, "vk [frame @vt=") {
			t.Errorf("frame %d missing title: %s", i, f[:40])
		}
	}
	// First frame shows early compute; last frame shows late compute only.
	if !strings.Contains(frames[0], "#") {
		t.Error("first frame missing compute bar")
	}
	// Defaults: zero window/step pick something sane.
	def := VKFrames(tr, 0, 0, Options{Width: 40})
	if len(def) == 0 {
		t.Error("default frames empty")
	}
}

func TestEmptyTraceRendering(t *testing.T) {
	tr := trace.New(2)
	if svg := SVG(tr, Options{}); !strings.Contains(svg, "<svg") {
		t.Error("empty SVG broken")
	}
	if out := ASCII(tr, Options{}); !strings.Contains(out, "P0") {
		t.Error("empty ASCII broken")
	}
}

func TestGlyphAndColorTotality(t *testing.T) {
	for k := trace.Kind(0); k <= trace.KindCheckpoint; k++ {
		if barGlyph(k) == '?' {
			t.Errorf("kind %v has no glyph", k)
		}
		if barColor(k) == "" {
			t.Errorf("kind %v has no color", k)
		}
	}
}

func TestRenderingDeterministic(t *testing.T) {
	tr := sampleTrace(t)
	// Add more messages so map iteration order would show.
	for i := 0; i < 20; i++ {
		m := uint64(100 + i)
		tr.MustAppend(trace.Record{Kind: trace.KindSend, Rank: 0, Marker: m,
			Start: 200 + int64(i), End: 201 + int64(i), Src: 0, Dst: 1, Tag: i, Bytes: 4, MsgID: m})
		tr.MustAppend(trace.Record{Kind: trace.KindRecv, Rank: 1, Marker: m,
			Start: 200 + int64(i), End: 202 + int64(i), Src: 0, Dst: 1, Tag: i, Bytes: 4, MsgID: m})
	}
	a := SVG(tr, Options{Messages: true})
	b := SVG(tr, Options{Messages: true})
	if a != b {
		t.Error("SVG rendering nondeterministic")
	}
	x := ASCII(tr, Options{Messages: true})
	y := ASCII(tr, Options{Messages: true})
	if x != y {
		t.Error("ASCII rendering nondeterministic")
	}
}
