package vis

import (
	"fmt"
	"html"
	"strings"

	"tracedbg/internal/analysis"
	"tracedbg/internal/causality"
	"tracedbg/internal/graph"
	"tracedbg/internal/trace"
)

// HTMLReport bundles everything a user wants after a run into one
// self-contained file: the SVG time-space diagram, per-rank utilization,
// the function profile, message traffic with irregularities, unmatched
// messages, deadlock and race analysis, and the communication graph.
type HTMLReport struct {
	Title string
	// Diagram options (the SVG section).
	Options Options
}

// Render produces the report for a trace.
func (h HTMLReport) Render(tr *trace.Trace) string {
	title := h.Title
	if title == "" {
		title = "tracedbg report"
	}
	var sb strings.Builder
	sb.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n")
	fmt.Fprintf(&sb, "<title>%s</title>\n", html.EscapeString(title))
	sb.WriteString(`<style>
body { font-family: sans-serif; margin: 2em; max-width: 1100px; }
pre { background: #f6f6f6; padding: 0.8em; overflow-x: auto; font-size: 12px; }
h2 { border-bottom: 1px solid #ccc; padding-bottom: 0.2em; }
.warn { color: #b00; font-weight: bold; }
</style></head><body>` + "\n")
	fmt.Fprintf(&sb, "<h1>%s</h1>\n", html.EscapeString(title))

	st := tr.Summarize()
	fmt.Fprintf(&sb, "<p>%d ranks, %d events, %d messages (%d bytes), virtual end time %d.</p>\n",
		tr.NumRanks(), st.Records, st.Sends, st.BytesSent, st.EndTime)

	sb.WriteString("<h2>Time-space diagram</h2>\n")
	opt := h.Options
	if opt.Width == 0 {
		opt.Width = 1000
	}
	sb.WriteString(SVG(tr, opt))

	sb.WriteString("<h2>Per-rank utilization</h2>\n<pre>")
	sb.WriteString(html.EscapeString(trace.UtilizationText(tr)))
	sb.WriteString("</pre>\n")

	prof := trace.BuildProfile(tr)
	if len(prof.Stats) > 0 {
		sb.WriteString("<h2>Function profile</h2>\n<pre>")
		sb.WriteString(html.EscapeString(prof.Text()))
		sb.WriteString("</pre>\n")
	}

	sb.WriteString("<h2>Message traffic</h2>\n<pre>")
	traffic := analysis.AnalyzeTraffic(tr)
	sb.WriteString(html.EscapeString(traffic.String()))
	sb.WriteString(html.EscapeString(analysis.BuildCommMatrix(tr).Text()))
	sb.WriteString("</pre>\n")
	if len(traffic.Odd) > 0 {
		fmt.Fprintf(&sb, "<p class=\"warn\">%d irregular rank(s) flagged.</p>\n", len(traffic.Odd))
	}

	mt := analysis.NewMatchTracker()
	mt.AddTrace(tr)
	sb.WriteString("<h2>Unmatched messages</h2>\n<pre>")
	sb.WriteString(html.EscapeString(mt.Report()))
	sb.WriteString("</pre>\n")

	dl := analysis.DetectDeadlock(tr)
	sb.WriteString("<h2>Deadlock analysis</h2>\n<pre>")
	sb.WriteString(html.EscapeString(dl.String()))
	sb.WriteString("</pre>\n")
	if dl.HasDeadlock() {
		sb.WriteString("<p class=\"warn\">Circular wait detected.</p>\n")
	}

	if o, err := causality.New(tr); err == nil {
		races := analysis.DetectRaces(o)
		sb.WriteString("<h2>Message races</h2>\n<pre>")
		if len(races) == 0 {
			sb.WriteString("none\n")
		}
		for _, r := range races {
			sb.WriteString(html.EscapeString(r.String()) + "\n")
		}
		sb.WriteString("</pre>\n")
	} else {
		fmt.Fprintf(&sb, "<p class=\"warn\">causality analysis failed: %s</p>\n", html.EscapeString(err.Error()))
	}

	cg := graph.BuildCommGraph(tr)
	sb.WriteString("<h2>Communication graph</h2>\n<pre>")
	sb.WriteString(html.EscapeString(cg.Text()))
	sb.WriteString("</pre>\n")

	sb.WriteString("</body></html>\n")
	return sb.String()
}
