package vis

import (
	"fmt"
	"strings"

	"tracedbg/internal/trace"
)

// SVG geometry constants.
const (
	laneHeight  = 28
	barHeight   = 14
	marginLeft  = 60
	marginTop   = 34
	marginRight = 16
	marginBot   = 20
)

// SVG renders the trace as a scalable time-space diagram (NTV-style: the
// viewport in Options selects the zoom window).
func SVG(tr *trace.Trace, opt Options) string {
	opt = opt.withDefaults(800)
	t0, t1 := opt.window(tr)
	n := tr.NumRanks()
	plotW := opt.Width - marginLeft - marginRight
	if plotW < 10 {
		plotW = 10
	}
	height := marginTop + n*laneHeight + marginBot
	x := func(t int64) float64 {
		return marginLeft + float64(t-t0)/float64(t1-t0)*float64(plotW)
	}
	laneY := func(rank int) float64 { return float64(marginTop + rank*laneHeight + laneHeight/2) }

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		opt.Width, height, opt.Width, height)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	if opt.Title != "" {
		fmt.Fprintf(&sb, `<text x="%d" y="18" font-family="monospace" font-size="13">%s</text>`+"\n",
			marginLeft, escape(opt.Title))
	}

	// Lanes and rank labels.
	for r := 0; r < n; r++ {
		y := laneY(r)
		fmt.Fprintf(&sb, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginLeft, y, opt.Width-marginRight, y)
		fmt.Fprintf(&sb, `<text x="8" y="%.1f" font-family="monospace" font-size="11">P%d</text>`+"\n", y+4, r)
	}

	// Construct bars.
	for r := 0; r < n; r++ {
		for i := range tr.Rank(r) {
			rec := &tr.Rank(r)[i]
			if rec.End < t0 || rec.Start > t1 {
				continue
			}
			xa, xb := x(max64(rec.Start, t0)), x(min64(rec.End, t1))
			w := xb - xa
			if w < 1 {
				w = 1
			}
			fmt.Fprintf(&sb,
				`<rect x="%.1f" y="%.1f" width="%.1f" height="%d" fill="%s"><title>%s</title></rect>`+"\n",
				xa, laneY(r)-barHeight/2, w, barHeight, barColor(rec.Kind), escape(rec.String()))
		}
	}

	// Message lines: (time_sent, source) -> (time_received, destination),
	// drawn in message-id order so renderings are deterministic.
	if opt.Messages {
		matched, _ := tr.MatchSendRecv()
		recvs := make([]trace.EventID, 0, len(matched))
		for recv := range matched {
			recvs = append(recvs, recv)
		}
		sortEventsBy(recvs, func(a, b trace.EventID) bool {
			return tr.MustAt(a).MsgID < tr.MustAt(b).MsgID
		})
		for _, recv := range recvs {
			send := matched[recv]
			sr, rr := tr.MustAt(send), tr.MustAt(recv)
			if rr.End < t0 || sr.End > t1 {
				continue
			}
			fmt.Fprintf(&sb,
				`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#333" stroke-width="0.8" marker-end="url(#arrow)"/>`+"\n",
				x(sr.End), laneY(sr.Rank), x(rr.End), laneY(rr.Rank))
		}
		sb.WriteString(`<defs><marker id="arrow" viewBox="0 0 10 10" refX="9" refY="5" markerWidth="5" markerHeight="5" orient="auto"><path d="M 0 0 L 10 5 L 0 10 z" fill="#333"/></marker></defs>` + "\n")
	}

	// Stopline: the vertical breakpoint-in-the-timeline indicator.
	if opt.Stopline >= 0 && opt.Stopline >= t0 && opt.Stopline <= t1 {
		sx := x(opt.Stopline)
		fmt.Fprintf(&sb,
			`<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="red" stroke-width="1.5" stroke-dasharray="4,2"/>`+"\n",
			sx, marginTop-6, sx, height-marginBot+6)
		fmt.Fprintf(&sb, `<text x="%.1f" y="%d" fill="red" font-family="monospace" font-size="10">stopline</text>`+"\n",
			sx+3, marginTop-8)
	}

	// Frontier polylines (slanted black lines of Figure 8).
	drawFrontier := func(f []int, color, label string) {
		var pts []string
		for r, idx := range f {
			if idx < 0 || idx >= tr.RankLen(r) {
				continue
			}
			rec := tr.Rank(r)[idx]
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x(clamp64(rec.End, t0, t1)), laneY(r)))
		}
		if len(pts) < 2 {
			return
		}
		fmt.Fprintf(&sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
			strings.Join(pts, " "), color)
		fmt.Fprintf(&sb, `<!-- frontier: %s -->`+"\n", label)
	}
	if opt.Past != nil {
		drawFrontier(opt.Past, "#000", "past")
	}
	if opt.Future != nil {
		drawFrontier(opt.Future, "#555", "future")
	}

	// Selected event (the circle of Figure 8).
	if opt.Selected != nil {
		if rec, err := tr.At(*opt.Selected); err == nil {
			fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="7" fill="none" stroke="red" stroke-width="2"/>`+"\n",
				x(clamp64(rec.Start, t0, t1)), laneY(rec.Rank))
		}
	}

	sb.WriteString("</svg>\n")
	return sb.String()
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func clamp64(v, lo, hi int64) int64 { return max64(lo, min64(v, hi)) }
