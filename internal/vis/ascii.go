package vis

import (
	"fmt"
	"strings"

	"tracedbg/internal/trace"
)

// ASCII renders the trace as a terminal time-space diagram: one line per
// process, columns are time buckets, glyphs encode construct types, and an
// optional '|' column marks the stopline. Messages are listed below the
// grid (terminal art cannot draw good diagonals).
func ASCII(tr *trace.Trace, opt Options) string {
	opt = opt.withDefaults(100)
	t0, t1 := opt.window(tr)
	cols := opt.Width
	n := tr.NumRanks()

	colOf := func(t int64) int {
		c := int(float64(t-t0) / float64(t1-t0) * float64(cols))
		if c < 0 {
			c = 0
		}
		if c >= cols {
			c = cols - 1
		}
		return c
	}

	var sb strings.Builder
	if opt.Title != "" {
		fmt.Fprintf(&sb, "%s\n", opt.Title)
	}
	fmt.Fprintf(&sb, "time-space diagram vt=[%d..%d] (%d columns)\n", t0, t1, cols)

	stopCol := -1
	if opt.Stopline >= t0 && opt.Stopline <= t1 {
		stopCol = colOf(opt.Stopline)
	}

	for r := 0; r < n; r++ {
		row := make([]byte, cols)
		for i := range row {
			row[i] = '.'
		}
		for i := range tr.Rank(r) {
			rec := &tr.Rank(r)[i]
			if rec.End < t0 || rec.Start > t1 {
				continue
			}
			a := colOf(max64(rec.Start, t0))
			b := colOf(min64(rec.End, t1))
			g := barGlyph(rec.Kind)
			for c := a; c <= b; c++ {
				row[c] = g
			}
		}
		if stopCol >= 0 {
			row[stopCol] = '|'
		}
		// Mark frontier positions at event completion (receives span from
		// their early post to completion; the completion is the causally
		// meaningful point). The past mark is drawn after the future mark
		// so it wins a column collision.
		if opt.Future != nil && r < len(opt.Future) && opt.Future[r] >= 0 && opt.Future[r] < tr.RankLen(r) {
			row[colOf(clamp64(tr.Rank(r)[opt.Future[r]].End, t0, t1))] = '>'
		}
		if opt.Past != nil && r < len(opt.Past) && opt.Past[r] >= 0 && opt.Past[r] < tr.RankLen(r) {
			row[colOf(clamp64(tr.Rank(r)[opt.Past[r]].End, t0, t1))] = '<'
		}
		if opt.Selected != nil && opt.Selected.Rank == r {
			if rec, err := tr.At(*opt.Selected); err == nil {
				row[colOf(clamp64(rec.Start, t0, t1))] = '@'
			}
		}
		fmt.Fprintf(&sb, "P%-3d %s\n", r, row)
	}
	sb.WriteString("legend: #=compute S=send R=recv C=collective x=blocked f=func r=region ,=marker |=stopline @=selected <=past-frontier >=future-frontier\n")

	if opt.Messages {
		matched, _ := tr.MatchSendRecv()
		ids := make([]trace.EventID, 0, len(matched))
		for recv := range matched {
			ids = append(ids, recv)
		}
		// Deterministic order by (send time, msg id).
		sortEventsBy(ids, func(a, b trace.EventID) bool {
			ra, rb := tr.MustAt(a), tr.MustAt(b)
			if ra.End != rb.End {
				return ra.End < rb.End
			}
			return ra.MsgID < rb.MsgID
		})
		fmt.Fprintf(&sb, "messages (%d):\n", len(ids))
		for _, recv := range ids {
			rr := tr.MustAt(recv)
			sr := tr.MustAt(matched[recv])
			fmt.Fprintf(&sb, "  %d->%d tag=%d bytes=%d sent@%d recv@%d\n",
				sr.Src, sr.Dst, sr.Tag, sr.Bytes, sr.End, rr.End)
		}
	}
	return sb.String()
}

func sortEventsBy(ids []trace.EventID, less func(a, b trace.EventID) bool) {
	// Insertion sort: message lists are small and this avoids pulling in a
	// comparator adapter.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && less(ids[j], ids[j-1]); j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// VKFrames renders the VK-style animated view: a sequence of fixed-width
// windows scrolling through the history ("a window into the trace file ...
// an animated view of the events of execution"). step is the window advance
// per frame; window is the time span shown by each frame.
func VKFrames(tr *trace.Trace, window, step int64, opt Options) []string {
	if window <= 0 {
		window = (tr.EndTime() - tr.StartTime()) / 4
		if window <= 0 {
			window = 1
		}
	}
	if step <= 0 {
		step = window / 2
		if step <= 0 {
			step = 1
		}
	}
	var frames []string
	end := tr.EndTime()
	for t := tr.StartTime(); ; t += step {
		o := opt
		o.T0, o.T1 = t, t+window
		o.Title = fmt.Sprintf("%s [frame @vt=%d]", opt.Title, t)
		frames = append(frames, ASCII(tr, o))
		if t+window >= end {
			break
		}
	}
	return frames
}
