// Package vis renders execution histories as time-space diagrams — the
// paper's §3 displays. Two display paradigms are provided, mirroring the two
// visualizers integrated into p2d2: the NTV mode presents the entire trace
// with zooming and panning (a viewport); the VK mode presents an animated
// sequence of fixed-width windows scrolling through history. Both draw one
// horizontal lane per process with bars for constructs (colored by type) and
// straight lines for messages from (time_sent, source) to (time_received,
// destination); overlays show the stopline, a selected event, and past/
// future frontiers (Figures 2, 3, 5, 6, 8).
//
// Renderers emit SVG (for files) and plain text (for terminals).
package vis

import (
	"tracedbg/internal/causality"
	"tracedbg/internal/trace"
)

// Options controls a rendering.
type Options struct {
	// Width is the drawing width (SVG pixels or text columns). 0 selects a
	// default (800 px / 100 columns).
	Width int

	// T0, T1 give the virtual-time viewport; T1 <= T0 means the full trace
	// (NTV zoom/pan is expressed by narrowing this window).
	T0, T1 int64

	// Messages draws send->receive lines.
	Messages bool

	// Stopline draws a vertical line at this virtual time; negative = none.
	Stopline int64

	// Selected marks one event (the clicked point of Figure 8).
	Selected *trace.EventID

	// Past and Future draw frontier polylines (Figure 8); nil = none.
	Past   causality.Frontier
	Future causality.Frontier

	// Title annotates the rendering.
	Title string
}

func (o *Options) window(tr *trace.Trace) (int64, int64) {
	t0, t1 := o.T0, o.T1
	if t1 <= t0 {
		t0, t1 = tr.StartTime(), tr.EndTime()
	}
	if t1 == t0 {
		t1 = t0 + 1
	}
	return t0, t1
}

// defaultOptions fills zero fields.
func (o Options) withDefaults(width int) Options {
	if o.Width <= 0 {
		o.Width = width
	}
	if o.Stopline == 0 {
		o.Stopline = -1
	}
	return o
}

// barGlyph maps record kinds to single-character glyphs for text output.
func barGlyph(k trace.Kind) byte {
	switch k {
	case trace.KindCompute:
		return '#'
	case trace.KindSend:
		return 'S'
	case trace.KindRecv:
		return 'R'
	case trace.KindCollective:
		return 'C'
	case trace.KindBlocked:
		return 'x'
	case trace.KindFuncEntry, trace.KindFuncExit:
		return 'f'
	case trace.KindRegionBegin, trace.KindRegionEnd:
		return 'r'
	case trace.KindMarker:
		return ','
	case trace.KindCheckpoint:
		return 'K'
	case trace.KindFault:
		return '!'
	}
	return '?'
}

// barColor maps record kinds to SVG fill colors (the "bar is colored
// depending on the type of the construct" rule).
func barColor(k trace.Kind) string {
	switch k {
	case trace.KindCompute:
		return "#4e79a7" // blue: computation
	case trace.KindSend:
		return "#59a14f" // green: sends
	case trace.KindRecv:
		return "#edc948" // yellow: receives
	case trace.KindCollective:
		return "#b07aa1" // purple: collectives
	case trace.KindBlocked:
		return "#e15759" // red: blocked
	case trace.KindFuncEntry, trace.KindFuncExit:
		return "#9c755f"
	case trace.KindRegionBegin, trace.KindRegionEnd:
		return "#bab0ac"
	case trace.KindCheckpoint:
		return "#76b7b2"
	case trace.KindFault:
		return "#d37295" // pink: injected faults
	}
	return "#79706e"
}
