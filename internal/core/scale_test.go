package core

import (
	"testing"

	"tracedbg/internal/apps"
	"tracedbg/internal/debug"
	"tracedbg/internal/mp"
	"tracedbg/internal/trace"
)

// TestScaleWidePipeline pushes a 32-rank wavefront through the entire
// pipeline: record, causality, stopline, enforced replay to the stopline,
// analysis, rendering. Guards against anything that only breaks beyond toy
// rank counts.
func TestScaleWidePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	const ranks = 32
	d := New(debug.Target{
		Cfg:  mp.Config{NumRanks: ranks},
		Body: apps.LU(apps.LUConfig{Cols: 8, Rows: 2, Iters: 3, Seed: 3}, nil),
	})
	if err := d.Record(); err != nil {
		t.Fatal(err)
	}
	tr := d.Trace()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() < ranks*30 {
		t.Fatalf("trace suspiciously small: %d events", tr.Len())
	}

	o, err := d.Order()
	if err != nil {
		t.Fatal(err)
	}
	// The full wavefront ordering: rank 0's first event precedes the last
	// rank's last event.
	first := trace.EventID{Rank: 0, Index: 0}
	last := trace.EventID{Rank: ranks - 1, Index: tr.RankLen(ranks-1) - 1}
	if !o.HappensBefore(first, last) {
		t.Error("wavefront ordering lost at scale")
	}

	sl, err := d.VerticalStopLine(tr.EndTime() / 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := d.Replay(sl)
	if err != nil {
		t.Fatal(err)
	}
	stops, err := s.WaitAllStopped(tmo)
	if err != nil {
		t.Fatalf("replay stops: %v", err)
	}
	if len(stops) == 0 {
		t.Fatal("no stops")
	}
	if err := s.Finish(); err != nil {
		t.Fatal(err)
	}

	if d.Deadlocks().HasDeadlock() {
		t.Error("phantom deadlock at scale")
	}
	if len(d.RenderSVG(RenderOptionsForTest())) == 0 {
		t.Error("render failed")
	}
	// The trace graph only models calls and messages; assert it saw a
	// plausible share of events.
	if d.TraceGraph().EventCount() == 0 {
		t.Error("trace graph empty at scale")
	}
}
