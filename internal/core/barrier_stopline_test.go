package core

import (
	"testing"

	"tracedbg/internal/apps"
	"tracedbg/internal/debug"
	"tracedbg/internal/mp"
	"tracedbg/internal/replay"
	"tracedbg/internal/trace"
)

// TestStopLineAcrossBarrier is the regression test for stoplines near
// collectives: participants complete a barrier at slightly different
// virtual times, so a naive vertical cut can include one rank's completion
// while stopping a peer before it even entered — and the replay then hangs
// with the peer parked and the first rank blocked inside the barrier. The
// stopline must snap to a consistent cut and the replay must stop cleanly.
func TestStopLineAcrossBarrier(t *testing.T) {
	d := New(debug.Target{
		Cfg: mp.Config{NumRanks: 4},
		Body: apps.Jacobi(apps.JacobiConfig{
			Cells: 16, Iters: 40, Seed: 2,
			// Barrier every 5 iterations via checkpointing.
			CheckpointEvery: 5, Store: newStore(),
		}, nil),
	})
	if err := d.Record(); err != nil {
		t.Fatal(err)
	}
	tr := d.Trace()
	o, err := d.Order()
	if err != nil {
		t.Fatal(err)
	}

	// Aim stoplines exactly at every barrier completion time: the most
	// adversarial positions.
	var barrierTimes []int64
	for r := 0; r < tr.NumRanks(); r++ {
		for i := range tr.Rank(r) {
			rec := &tr.Rank(r)[i]
			if rec.Kind == trace.KindCollective {
				barrierTimes = append(barrierTimes, rec.End-1, rec.End, rec.End+1)
			}
		}
	}
	if len(barrierTimes) == 0 {
		t.Fatal("no barrier events recorded")
	}
	for _, at := range barrierTimes {
		sl, err := d.VerticalStopLine(at)
		if err != nil {
			t.Fatalf("stopline at %d: %v", at, err)
		}
		if ok, _ := o.IsConsistentCut(sl.Cut); !ok {
			t.Fatalf("stopline cut at %d inconsistent", at)
		}
		// No barrier is split: for each collective instance, the cut either
		// contains all participants' completions or none.
		inCut := map[int]int{}
		total := map[int]int{}
		for r := 0; r < tr.NumRanks(); r++ {
			for i := range tr.Rank(r) {
				rec := &tr.Rank(r)[i]
				if rec.Kind != trace.KindCollective {
					continue
				}
				total[rec.Tag]++
				if i < sl.Cut[r] {
					inCut[rec.Tag]++
				}
			}
		}
		for tag, n := range inCut {
			if n != 0 && n != total[tag] {
				t.Fatalf("stopline at %d splits collective %d: %d/%d inside", at, tag, n, total[tag])
			}
		}
	}

	// Replay one of the adversarial stoplines end to end.
	sl, err := d.VerticalStopLine(barrierTimes[len(barrierTimes)/2])
	if err != nil {
		t.Fatal(err)
	}
	s, err := d.Replay(sl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WaitAllStopped(tmo); err != nil {
		t.Fatalf("replay across barrier: %v", err)
	}
	if err := s.Finish(); err != nil {
		t.Fatal(err)
	}
}

func newStore() *replay.CheckpointStore { return replay.NewCheckpointStore() }
