package core

import (
	"fmt"
	"testing"

	"tracedbg/internal/debug"
	"tracedbg/internal/instr"
	"tracedbg/internal/mp"
)

// TestLiveSupervision: communication supervision during a session — the
// online unmatched list and the mailbox inspection show a message in
// flight while the receiver has not yet consumed it.
func TestLiveSupervision(t *testing.T) {
	tgt := debug.Target{
		Cfg: mp.Config{NumRanks: 2},
		Body: func(c *instr.Ctx) {
			defer c.Fn(instr.Loc("sup.go", 1, "main"))()
			if c.Rank() == 0 {
				c.Send(1, 5, []byte("in-flight"))
				c.At(instr.Loc("sup.go", 3, "main")) // stop here
				c.Send(1, 6, []byte("second"))
			} else {
				c.At(instr.Loc("sup.go", 10, "main")) // parks rank 1 early
				c.Recv(0, 5)
				c.Recv(0, 6)
			}
		},
	}
	d := New(tgt)
	s, err := d.Launch()
	if err != nil {
		t.Fatal(err)
	}
	s.BreakAt("sup.go", 3)  // rank 0 after the first send
	s.BreakAt("sup.go", 10) // rank 1 before any receive
	if _, err := s.WaitAllStopped(tmo); err != nil {
		t.Fatal(err)
	}

	// The online tracker has seen the first send and no receive.
	sup := d.Supervisor()
	if got := len(sup.UnmatchedSends()); got != 1 {
		t.Fatalf("unmatched in flight = %d", got)
	}
	// The mailbox of rank 1 holds the buffered message.
	msgs := s.Mailbox(1)
	if len(msgs) != 1 || msgs[0].Src != 0 || msgs[0].Tag != 5 || msgs[0].Bytes != 9 {
		t.Fatalf("mailbox = %+v", msgs)
	}
	if s.Mailbox(99) != nil {
		t.Error("bogus rank mailbox")
	}

	if err := s.Finish(); err != nil {
		t.Fatal(err)
	}
	// After completion everything matched.
	if got := len(sup.UnmatchedSends()); got != 0 {
		t.Fatalf("unmatched after completion = %d", got)
	}
	if sup.Matched() != 2 {
		t.Fatalf("matched = %d", sup.Matched())
	}
}

// raceyBody is a program with a genuine wildcard-order bug: the master
// combines worker results weighted by *arrival order* instead of by source
// rank, so the answer depends on message racing.
func raceyBody(result *int64) func(c *instr.Ctx) {
	return func(c *instr.Ctx) {
		defer c.Fn(instr.Loc("racey.go", 1, "main"))()
		if c.Rank() == 0 {
			var sum int64
			for i := 0; i < c.Size()-1; i++ {
				xs, _ := c.RecvInt64s(mp.AnySource, 0)
				// BUG: weight by arrival index i, should be by source rank.
				sum += xs[0] * int64(i+1)
			}
			*result = sum
		} else {
			c.Compute(int64(c.Rank()) * 50)
			c.SendInt64s(0, 0, []int64{int64(c.Rank())})
		}
	}
}

// forceOrder delivers rank 0's wildcard receives from the listed sources.
type forceOrder []int

func (f forceOrder) Pick(rank int, recvSeq uint64, eligible []mp.PendingMsg) int {
	if rank != 0 || recvSeq == 0 || recvSeq > uint64(len(f)) {
		return mp.EarliestArrival{}.Pick(rank, recvSeq, eligible)
	}
	for i, m := range eligible {
		if m.Src == f[recvSeq-1] {
			return i
		}
	}
	return -1
}

// TestRaceBugWorkflow: the message-racing debugging story — two delivery
// orders give different answers; the race detector flags every wildcard
// receive; a replay of either recording reproduces its answer exactly.
func TestRaceBugWorkflow(t *testing.T) {
	const n = 4
	results := make(map[string]int64)
	for name, order := range map[string]forceOrder{
		"ascending":  {1, 2, 3},
		"descending": {3, 2, 1},
	} {
		var got int64
		d := New(debug.Target{
			Cfg:  mp.Config{NumRanks: n, Delivery: order},
			Body: raceyBody(&got),
		})
		if err := d.Record(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		results[name] = got

		races, err := d.Races()
		if err != nil {
			t.Fatal(err)
		}
		if len(races) == 0 {
			t.Fatalf("%s: race not detected", name)
		}

		// Replay reproduces the same buggy answer deterministically.
		for rep := 0; rep < 2; rep++ {
			var replayGot int64
			// Replay through a fresh debugger target that shares the body
			// but enforces the recorded matching.
			s, err := d.Session().Replay(nil)
			if err != nil {
				t.Fatal(err)
			}
			_ = replayGot
			if err := s.Finish(); err != nil {
				t.Fatal(err)
			}
			// The shared `got` variable now holds the replay's answer.
			if got != results[name] {
				t.Fatalf("%s rep %d: replay answer %d != recorded %d", name, rep, got, results[name])
			}
		}
	}
	// The bug is real: the two orders disagree.
	if results["ascending"] == results["descending"] {
		t.Fatalf("delivery order did not change the answer: %v", results)
	}
	// ascending: 1*1+2*2+3*3 = 14; descending: 3*1+2*2+1*3 = 10.
	if results["ascending"] != 14 || results["descending"] != 10 {
		t.Fatalf("unexpected answers: %v", results)
	}
}

// TestIntertwinedPassthrough exercises the Debugger facade for the
// intertwined-message report.
func TestIntertwinedPassthrough(t *testing.T) {
	d := New(debug.Target{
		Cfg: mp.Config{NumRanks: 2},
		Body: func(c *instr.Ctx) {
			if c.Rank() == 0 {
				c.SendInt64s(1, 1, []int64{1})
				c.SendInt64s(1, 2, []int64{2})
			} else {
				c.Probe(0, 2)
				c.Recv(0, 2)
				c.Recv(0, 1)
			}
		},
	})
	if err := d.Record(); err != nil {
		t.Fatal(err)
	}
	pairs := d.Intertwined()
	if len(pairs) != 1 {
		t.Fatalf("pairs = %v", pairs)
	}
	if fmt.Sprint(pairs[0].FirstTag) != "1" {
		t.Errorf("pair = %+v", pairs[0])
	}
}
