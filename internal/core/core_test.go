package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"tracedbg/internal/apps"
	"tracedbg/internal/debug"
	"tracedbg/internal/mp"
	"tracedbg/internal/trace"
	"tracedbg/internal/vis"
)

const tmo = 10 * time.Second

func ringDebugger(t *testing.T, ranks, rounds int) *Debugger {
	t.Helper()
	d := New(debug.Target{
		Cfg:  mp.Config{NumRanks: ranks},
		Body: apps.Ring(rounds, nil),
	})
	if err := d.Record(); err != nil {
		t.Fatalf("record: %v", err)
	}
	return d
}

func TestRecordBuildsHistoryAndGraphs(t *testing.T) {
	d := ringDebugger(t, 4, 3)
	tr := d.Trace()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("empty trace")
	}
	// The online trace graph saw the same events.
	if d.TraceGraph().EventCount() == 0 {
		t.Fatal("trace graph empty")
	}
	cg := d.CallGraph(0)
	if cg.Calls("Ring", "Hop") != 3 {
		t.Errorf("Ring->Hop calls = %d", cg.Calls("Ring", "Hop"))
	}
	comm := d.CommGraph()
	if len(comm.Nodes) != 4*3 {
		t.Errorf("comm graph nodes = %d", len(comm.Nodes))
	}
	if len(d.RenderSVG(RenderOptionsForTest())) == 0 {
		t.Error("svg empty")
	}
	if !strings.Contains(d.RenderASCII(RenderOptionsForTest()), "P0") {
		t.Error("ascii missing lanes")
	}
	if frames := d.RenderVK(0, 0, RenderOptionsForTest()); len(frames) == 0 {
		t.Error("vk frames empty")
	}
}

func TestVerticalStopLineReplay(t *testing.T) {
	d := ringDebugger(t, 3, 4)
	tr := d.Trace()
	mid := tr.EndTime() / 2
	sl, err := d.VerticalStopLine(mid)
	if err != nil {
		t.Fatal(err)
	}
	if sl.Kind != Vertical || sl.At != mid {
		t.Fatalf("stopline = %+v", sl)
	}
	o, err := d.Order()
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := o.IsConsistentCut(sl.Cut); !ok {
		t.Fatal("stopline cut inconsistent")
	}

	s, err := d.Replay(sl)
	if err != nil {
		t.Fatal(err)
	}
	stops, err := s.WaitAllStopped(tmo)
	if err != nil {
		t.Fatalf("replay stops: %v", err)
	}
	// Every rank with in-cut events stopped exactly at its stopline marker.
	for _, st := range stops {
		want := sl.Markers.Seq(st.Rank)
		if want == 0 {
			want = 1
		}
		if st.Marker != want {
			t.Errorf("rank %d stopped at marker %d, want %d", st.Rank, st.Marker, want)
		}
	}
	if err := s.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestStopLineAtEvent(t *testing.T) {
	d := ringDebugger(t, 3, 2)
	sends := d.Trace().Sends()
	if len(sends) == 0 {
		t.Fatal("no sends")
	}
	sl, err := d.StopLineAtEvent(sends[len(sends)/2])
	if err != nil {
		t.Fatal(err)
	}
	if sl.Kind != Vertical {
		t.Error("kind")
	}
	if _, err := d.StopLineAtEvent(trace.EventID{Rank: 99}); err == nil {
		t.Error("bogus event accepted")
	}
}

func TestFrontierStopLines(t *testing.T) {
	// LU wavefront: frontier stoplines around a mid-trace event.
	d := New(debug.Target{
		Cfg:  mp.Config{NumRanks: 5},
		Body: apps.LU(apps.LUConfig{Cols: 4, Rows: 2, Iters: 2, Seed: 1}, nil),
	})
	if err := d.Record(); err != nil {
		t.Fatal(err)
	}
	tr := d.Trace()
	// Pick rank 2's first lower-sweep send.
	var sel trace.EventID
	found := false
	for i := range tr.Rank(2) {
		if tr.Rank(2)[i].Kind == trace.KindSend {
			sel = trace.EventID{Rank: 2, Index: i}
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no send on rank 2")
	}
	o, err := d.Order()
	if err != nil {
		t.Fatal(err)
	}

	past, err := d.PastFrontierStopLine(sel)
	if err != nil {
		t.Fatal(err)
	}
	if past.Kind != AlongPastFrontier {
		t.Error("kind")
	}
	if ok, _ := o.IsConsistentCut(past.Cut); !ok {
		t.Fatal("past frontier cut inconsistent")
	}
	// The wavefront means ranks 3,4 have contributed nothing to rank 2's
	// first send: their cut entries are smaller than rank 1's.
	if past.Cut[4] >= past.Cut[1] {
		t.Errorf("wavefront past cut should taper: %v", past.Cut)
	}

	future, err := d.FutureFrontierStopLine(sel)
	if err != nil {
		t.Fatal(err)
	}
	if future.Kind != AlongFutureFrontier {
		t.Error("kind")
	}
	if ok, _ := o.IsConsistentCut(future.Cut); !ok {
		t.Fatal("future frontier cut inconsistent")
	}
	// Replaying the past-frontier stopline works like any stopline.
	s, err := d.Replay(past)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WaitAllStopped(tmo); err != nil {
		t.Fatalf("frontier replay stops: %v", err)
	}
	if err := s.Finish(); err != nil {
		t.Fatal(err)
	}
	if Vertical.String() != "vertical" || AlongPastFrontier.String() != "past-frontier" ||
		AlongFutureFrontier.String() != "future-frontier" || StopLineKind(9).String() == "" {
		t.Error("kind names")
	}
}

func TestAnalysisPassthroughs(t *testing.T) {
	d := ringDebugger(t, 3, 2)
	if d.Deadlocks().HasDeadlock() {
		t.Error("clean run has deadlock")
	}
	races, err := d.Races()
	if err != nil {
		t.Fatal(err)
	}
	if len(races) != 0 {
		t.Errorf("clean run has races: %v", races)
	}
	if len(d.Traffic().Odd) != 0 {
		t.Errorf("ring flagged irregular: %+v", d.Traffic().Odd)
	}
	if _, ok := d.Actions().Lookup(0, "Ring"); !ok {
		t.Error("action graph missing Ring")
	}
	um := d.Unmatched()
	if len(um.UnmatchedSends()) != 0 {
		t.Errorf("unmatched sends in clean run")
	}
}

func TestReplayBeforeRecordFails(t *testing.T) {
	d := New(debug.Target{Cfg: mp.Config{NumRanks: 2}, Body: apps.Ring(1, nil)})
	if _, err := d.Replay(StopLine{}); err == nil {
		t.Error("replay before record accepted")
	}
	if _, err := d.Undo(); err == nil {
		t.Error("undo before record accepted")
	}
	if d.Session() != nil {
		t.Error("session before record")
	}
	if d.Trace().Len() != 0 {
		t.Error("trace before record")
	}
}

// TestFigure7FindBug is the paper's §4.1 debugging walkthrough end to end:
// the buggy Strassen stalls; the traffic report exposes the missed message
// to process 7; a stopline is set before the second-operand send group; the
// replay stops there; stepping through the MatrSend loop and watching jres
// against the actual send destinations identifies the wrong destination at
// strassen.go:161.
func TestFigure7FindBug(t *testing.T) {
	d := New(debug.Target{
		Cfg:  mp.Config{NumRanks: 8},
		Body: apps.Strassen(apps.StrassenConfig{N: 16, Seed: 42, Buggy: true}, nil),
	})
	err := d.Record()
	var stall *mp.StallError
	if !errors.As(err, &stall) {
		t.Fatalf("buggy strassen should stall, got %v", err)
	}

	// Step 1: the big picture — processes 0 and 7 blocked (Figure 5), and
	// process 7 received one message instead of two (Figure 6).
	traffic := d.Traffic()
	odd7 := false
	for _, ir := range traffic.Odd {
		if ir.Rank == 7 && ir.Recvs == 1 && ir.PeerRecvs == 2 {
			odd7 = true
		}
	}
	if !odd7 {
		t.Fatalf("traffic report misses the anomaly:\n%s", traffic)
	}

	// Step 2: set a stopline somewhere before the first send in the group.
	// The statement marker at strassen.go:161 with jres=0 is that point.
	tr := d.Trace()
	var before trace.EventID
	found := false
	for i := range tr.Rank(0) {
		r := &tr.Rank(0)[i]
		if r.Kind == trace.KindMarker && r.Loc.Line == 161 && r.Args[0] == 0 {
			before = trace.EventID{Rank: 0, Index: i}
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no statement marker before the send group")
	}
	sl, err := d.StopLineAtEvent(before)
	if err != nil {
		t.Fatal(err)
	}

	// Step 3: replay to the stopline.
	s, err := d.Replay(sl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WaitStop(0, tmo); err != nil {
		t.Fatal(err)
	}

	// Step 4: step through the loop watching jres and the send destinations.
	var evidence []string
	for hops := 0; hops < 40; hops++ {
		st := s.Where(0)
		if st == nil {
			t.Fatal("rank 0 not stopped")
		}
		if st.Rec.Kind == trace.KindSend && st.Rec.Loc.Line == 161 {
			jres, err := s.ReadVar(0, "jres")
			if err != nil {
				t.Fatal(err)
			}
			evidence = append(evidence,
				st.Rec.Loc.String()+" sent to "+itoa(st.Rec.Dst)+" with jres="+jres)
			// The defect: destination equals jres, not jres+1.
			if itoa(st.Rec.Dst) != jres {
				t.Fatalf("expected buggy destination == jres, got dst=%d jres=%s", st.Rec.Dst, jres)
			}
			if len(evidence) == 3 {
				break
			}
		}
		if err := s.Step(0); err != nil {
			t.Fatal(err)
		}
		if _, err := s.WaitStop(0, tmo); err != nil {
			t.Fatal(err)
		}
	}
	if len(evidence) < 3 {
		t.Fatalf("stepping never reached the buggy sends: %v", evidence)
	}
	s.Kill()
	_ = s.Wait()
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}

// OptionsAlias keeps the test body free of a second vis import path.
type OptionsAlias = vis.Options

// RenderOptionsForTest returns options exercising the display paths.
func RenderOptionsForTest() (o OptionsAlias) {
	o.Messages = true
	o.Width = 60
	return
}
