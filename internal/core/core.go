// Package core assembles the paper's contribution: trace-driven debugging.
// A Debugger owns a target program, records its execution history through
// the instrumentation monitor (building the trace graph online), computes
// causality over the history, lets the user set stoplines — vertical,
// past-frontier, or future-frontier breakpoints in the timeline — and
// drives controlled replay, undo, history analysis, and the time-space
// displays.
package core

import (
	"fmt"
	"sync"

	"tracedbg/internal/analysis"
	"tracedbg/internal/causality"
	"tracedbg/internal/debug"
	"tracedbg/internal/graph"
	"tracedbg/internal/instr"
	"tracedbg/internal/query"
	"tracedbg/internal/replay"
	"tracedbg/internal/store"
	"tracedbg/internal/trace"
	"tracedbg/internal/vis"
)

// Debugger is the trace-driven debugging controller.
type Debugger struct {
	tgt     debug.Target
	tgraph  *graph.TraceGraph
	tracker *analysis.MatchTracker // online unmatched-message supervision

	mu      sync.Mutex
	session *debug.Session
	order   *causality.Order // cached causality of the *completed* recording
	orderOf *trace.Trace     // the trace the cache was computed from

	loaded      *trace.Trace      // externally opened history (SetTrace)
	loadedGraph *graph.TraceGraph // trace graph rebuilt from it
	loadedStore *store.Store      // the store behind loaded (SetStore), for planning

	queries *query.Cache // compiled Find expressions, reused across repl loops
}

// ArcMergeLimit is the default dissemination threshold for the online trace
// graph.
const ArcMergeLimit = 256

// New prepares a debugger for the target. The trace graph is built online
// while the target runs (an extra instrumentation sink).
func New(tgt debug.Target) *Debugger {
	d := &Debugger{
		tgraph:  graph.New(tgt.Cfg.NumRanks, ArcMergeLimit),
		tracker: analysis.NewMatchTracker(),
		queries: query.NewCache(),
	}
	tgt.ExtraSinks = append(append([]instr.Sink(nil), tgt.ExtraSinks...), d.tgraph, d.tracker)
	d.tgt = tgt
	return d
}

// Record runs the target to completion under the monitor, recording its
// execution history. The run's error (including a detected global stall,
// the Figure 5 situation) is returned but the history remains available.
func (d *Debugger) Record() error {
	s, err := debug.Launch(d.tgt)
	if err != nil {
		return err
	}
	d.mu.Lock()
	d.session = s
	d.order = nil
	d.loaded, d.loadedGraph, d.loadedStore = nil, nil, nil
	d.mu.Unlock()
	return s.Finish()
}

// Launch starts the target under interactive control without waiting.
func (d *Debugger) Launch() (*debug.Session, error) {
	s, err := debug.Launch(d.tgt)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.session = s
	d.order = nil
	d.loaded, d.loadedGraph, d.loadedStore = nil, nil, nil
	d.mu.Unlock()
	return s, nil
}

// SetTrace installs an externally recorded history — typically a trace
// file opened through store.Open — as the debugger's current history.
// Analyses, displays, queries, and stopline computation operate over it
// exactly as over a fresh recording; the trace graph is rebuilt from the
// records. A subsequent Record or Launch replaces it with the live run.
func (d *Debugger) SetTrace(tr *trace.Trace) {
	g := graph.FromTrace(tr, ArcMergeLimit)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.loaded = tr
	d.loadedGraph = g
	d.loadedStore = nil
	d.order, d.orderOf = nil, nil
}

// SetStore installs an opened store as the debugger's history. The
// materialized trace backs analyses and displays exactly as with SetTrace,
// but queries plan against the store itself: persistent indexes answer
// bounded Finds without scanning, and results memoize against the store's
// generation. The store must outlive its use here (do not Close an
// OpenMmap store while installed).
func (d *Debugger) SetStore(st *store.Store) error {
	tr, err := st.Trace()
	if err != nil {
		return err
	}
	d.SetTrace(tr)
	d.mu.Lock()
	d.loadedStore = st
	d.mu.Unlock()
	return nil
}

// Store returns the store installed by SetStore, or nil when the history
// came from a live run or a bare SetTrace.
func (d *Debugger) Store() *store.Store {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.loadedStore
}

// Session returns the most recent session (nil before Record/Launch).
func (d *Debugger) Session() *debug.Session {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.session
}

// Trace returns the recorded history of the most recent session (or the
// history installed with SetTrace, until a new session replaces it).
func (d *Debugger) Trace() *trace.Trace {
	d.mu.Lock()
	s, ld := d.session, d.loaded
	d.mu.Unlock()
	if ld != nil {
		return ld
	}
	if s == nil {
		return trace.New(d.tgt.Cfg.NumRanks)
	}
	return s.Trace()
}

// Order returns (and caches) the happens-before structure of the recorded
// history.
func (d *Debugger) Order() (*causality.Order, error) {
	tr := d.Trace()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.order != nil && d.orderOf != nil && d.orderOf.Len() == tr.Len() {
		return d.order, nil
	}
	o, err := causality.New(tr)
	if err != nil {
		return nil, err
	}
	d.order = o
	d.orderOf = tr
	return o, nil
}

// TraceGraph returns the online-built trace graph (or the graph rebuilt
// from a SetTrace history while one is installed).
func (d *Debugger) TraceGraph() *graph.TraceGraph {
	d.mu.Lock()
	lg := d.loadedGraph
	d.mu.Unlock()
	if lg != nil {
		return lg
	}
	return d.tgraph
}

// CallGraph projects the dynamic call graph of one rank.
func (d *Debugger) CallGraph(rank int) *graph.CallGraph { return d.TraceGraph().Project(rank) }

// CommGraph derives the communication graph of the recorded history.
func (d *Debugger) CommGraph() *graph.CommGraph { return graph.BuildCommGraph(d.Trace()) }

// StopLineKind distinguishes the three stopline shapes.
type StopLineKind uint8

// Stopline kinds: a vertical slice through the time-space diagram, or the
// paper's proposed alternatives along the past/future frontier of an event.
const (
	Vertical StopLineKind = iota
	AlongPastFrontier
	AlongFutureFrontier
)

// String names the stopline kind.
func (k StopLineKind) String() string {
	switch k {
	case Vertical:
		return "vertical"
	case AlongPastFrontier:
		return "past-frontier"
	case AlongFutureFrontier:
		return "future-frontier"
	}
	return fmt.Sprintf("StopLineKind(%d)", uint8(k))
}

// StopLine is a breakpoint in the timeline: a consistent set of per-process
// breakpoints with the execution markers indicating the corresponding
// states.
type StopLine struct {
	Kind    StopLineKind
	At      int64 // virtual time (vertical stoplines)
	Cut     causality.Cut
	Markers replay.StopSet
}

// markersOfCut converts a cut to the marker stop set: each rank stops at
// the marker of its last in-cut event (0 = stop at the rank's first event).
func markersOfCut(tr *trace.Trace, cut causality.Cut) replay.StopSet {
	out := make(replay.StopSet, tr.NumRanks())
	for r := range out {
		out[r] = trace.Marker{Rank: r}
		if cut[r] > 0 {
			out[r].Seq = tr.Rank(r)[cut[r]-1].Marker
		}
	}
	return out
}

// VerticalStopLine builds the stopline at virtual time t. Consistency of
// the derived breakpoints follows from the causality of communications in
// the trace (no message is received before it is sent); it is re-verified
// here and an inconsistent cut is reported as an error.
func (d *Debugger) VerticalStopLine(t int64) (StopLine, error) {
	o, err := d.Order()
	if err != nil {
		return StopLine{}, err
	}
	cut := o.VerticalCut(t)
	ok, err := o.IsConsistentCut(cut)
	if err != nil {
		return StopLine{}, err
	}
	if !ok {
		return StopLine{}, fmt.Errorf("core: vertical cut at vt=%d is not consistent", t)
	}
	return StopLine{Kind: Vertical, At: t, Cut: cut, Markers: markersOfCut(d.Trace(), cut)}, nil
}

// StopLineAtEvent builds the vertical stopline through an event the user
// selected in the timeline display.
func (d *Debugger) StopLineAtEvent(e trace.EventID) (StopLine, error) {
	rec, err := d.Trace().At(e)
	if err != nil {
		return StopLine{}, err
	}
	return d.VerticalStopLine(rec.Start)
}

// PastFrontierStopLine stops every process immediately after the point
// where it could last affect the selected event (§4.1's proposed frontier
// stopline).
func (d *Debugger) PastFrontierStopLine(e trace.EventID) (StopLine, error) {
	o, err := d.Order()
	if err != nil {
		return StopLine{}, err
	}
	pf, err := o.PastFrontier(e)
	if err != nil {
		return StopLine{}, err
	}
	// Snap to the nearest consistent cut: frontier cuts can split a
	// collective whose atomicity a replay must honour.
	cut := o.MaximalConsistentCut(causality.CutOfFrontier(pf))
	return StopLine{Kind: AlongPastFrontier, Cut: cut, Markers: markersOfCut(d.Trace(), cut)}, nil
}

// FutureFrontierStopLine stops every process immediately before the point
// where it could first be affected by the selected event.
func (d *Debugger) FutureFrontierStopLine(e trace.EventID) (StopLine, error) {
	o, err := d.Order()
	if err != nil {
		return StopLine{}, err
	}
	ff, err := o.FutureFrontier(e)
	if err != nil {
		return StopLine{}, err
	}
	cut := o.MaximalConsistentCut(o.CutBefore(ff))
	return StopLine{Kind: AlongFutureFrontier, Cut: cut, Markers: markersOfCut(d.Trace(), cut)}, nil
}

// Replay re-executes the recording under enforced message matching and
// stops at the stopline. The returned session is live: wait for the stops,
// inspect state, step, continue.
func (d *Debugger) Replay(sl StopLine) (*debug.Session, error) {
	d.mu.Lock()
	s := d.session
	d.mu.Unlock()
	if s == nil {
		return nil, fmt.Errorf("core: nothing recorded yet")
	}
	return s.Replay(sl.Markers)
}

// ReplayFromCheckpoint replays to a stopline starting from the best
// snapshot in the store at or before it (the paper's §6 checkpointing
// extension). It returns the session and the snapshot used; ok is false in
// the snapshot sense — if no snapshot qualifies the replay starts from
// scratch via the ordinary path.
func (d *Debugger) ReplayFromCheckpoint(store *replay.CheckpointStore, sl StopLine) (*debug.Session, *replay.Snapshot, error) {
	d.mu.Lock()
	s := d.session
	d.mu.Unlock()
	if s == nil {
		return nil, nil, fmt.Errorf("core: nothing recorded yet")
	}
	target := make([]uint64, len(sl.Markers))
	for r := range sl.Markers {
		target[r] = sl.Markers.Seq(r)
	}
	snap, ok := store.BestFor(target)
	if !ok {
		ns, err := s.Replay(sl.Markers)
		return ns, nil, err
	}
	ns, err := s.ReplayFromSnapshot(snap, sl.Markers)
	if err != nil {
		return nil, nil, err
	}
	return ns, &snap, nil
}

// Undo replays to the most recent recorded stop vector of the current
// session.
func (d *Debugger) Undo() (*debug.Session, error) {
	d.mu.Lock()
	s := d.session
	d.mu.Unlock()
	if s == nil {
		return nil, fmt.Errorf("core: nothing recorded yet")
	}
	return s.Undo()
}

// Find runs a query expression over the recorded history (for example
// "kind = send && dst = 7 && bytes > 100"). Compiled expressions are
// cached, so a repl loop re-issuing the same query only pays for
// execution — and when the history came in through SetStore, execution
// goes through the planner (persistent indexes seek instead of scanning)
// and results memoize against the store's generation, so re-issuing a
// query over unchanged files is free.
func (d *Debugger) Find(expr string) ([]trace.EventID, error) {
	q, err := d.queries.Compile(expr)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	st := d.loadedStore
	d.mu.Unlock()
	if st != nil {
		return d.queries.EventsFor(expr, st.Generation(), func() ([]trace.EventID, error) {
			return q.Plan(query.NewStoreSource(st)).Run()
		})
	}
	return q.Plan(query.NewTraceSource(d.Trace())).Run()
}

// ExplainFind reports how Find would execute the expression — which ranks
// prune, whether persistent indexes answer it, and where the scan falls
// back — without running it.
func (d *Debugger) ExplainFind(expr string) (string, error) {
	q, err := d.queries.Compile(expr)
	if err != nil {
		return "", err
	}
	d.mu.Lock()
	st := d.loadedStore
	d.mu.Unlock()
	if st != nil {
		return q.Plan(query.NewStoreSource(st)).Explain(), nil
	}
	return q.Plan(query.NewTraceSource(d.Trace())).Explain(), nil
}

// Occurrence resolves the k-th (0-based) execution of file:line on a rank
// to an EventID — the re-execution breakpoint primitive. Over a SetStore
// history with validated sidecars the answer comes from the index's
// location posting lists without decoding records.
func (d *Debugger) Occurrence(file string, line, rank, k int) (trace.EventID, error) {
	d.mu.Lock()
	st := d.loadedStore
	d.mu.Unlock()
	if st != nil {
		return analysis.OccurrenceAtStore(st, file, line, rank, k)
	}
	return analysis.OccurrenceAt(d.Trace(), file, line, rank, k)
}

// Deadlocks analyzes the recorded history for circular wait dependencies.
func (d *Debugger) Deadlocks() *analysis.DeadlockReport {
	return analysis.DetectDeadlock(d.Trace())
}

// Races detects racing wildcard receives in the recorded history.
func (d *Debugger) Races() ([]analysis.Race, error) {
	o, err := d.Order()
	if err != nil {
		return nil, err
	}
	return analysis.DetectRaces(o), nil
}

// Traffic summarizes per-rank message counts and flags irregular ranks (the
// Figure 6 missed-message finder).
func (d *Debugger) Traffic() *analysis.TrafficReport {
	return analysis.AnalyzeTraffic(d.Trace())
}

// Actions summarizes history as the action graph.
func (d *Debugger) Actions() *analysis.ActionGraph {
	return analysis.BuildActionGraph(d.Trace())
}

// Unmatched reports the unmatched sends and receives of the recording.
func (d *Debugger) Unmatched() *analysis.MatchTracker {
	t := analysis.NewMatchTracker()
	t.AddTrace(d.Trace())
	return t
}

// Supervisor returns the online match tracker, updated as execution
// progresses — the paper's "list of unmatched sends and receives ...
// updated as execution progresses" and the abstract's communication
// supervision. Valid during a live session, not just after completion.
func (d *Debugger) Supervisor() *analysis.MatchTracker { return d.tracker }

// Intertwined reports out-of-order message pairs per channel.
func (d *Debugger) Intertwined() []analysis.Intertwined {
	return analysis.DetectIntertwined(d.Trace())
}

// RenderSVG draws the recorded history as an SVG time-space diagram.
func (d *Debugger) RenderSVG(opt vis.Options) string { return vis.SVG(d.Trace(), opt) }

// RenderASCII draws the recorded history as a terminal time-space diagram.
func (d *Debugger) RenderASCII(opt vis.Options) string { return vis.ASCII(d.Trace(), opt) }

// RenderVK returns the VK-style animation frames.
func (d *Debugger) RenderVK(window, step int64, opt vis.Options) []string {
	return vis.VKFrames(d.Trace(), window, step, opt)
}
