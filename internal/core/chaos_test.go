package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"tracedbg/internal/analysis"
	"tracedbg/internal/debug"
	"tracedbg/internal/fault"
	"tracedbg/internal/graph"
	"tracedbg/internal/instr"
	"tracedbg/internal/mp"
	"tracedbg/internal/trace"
)

// chaosProgram generates a random deadlock-free message-passing program:
// a global schedule of messages is drawn first, then each rank executes its
// slice of the schedule in order (sends are eager, each receive's send is
// ordered before it transitively, so the dependency graph is acyclic).
// Ranks flagged wildcard receive with AnySource/AnyTag (all their receives,
// so a wildcard can never starve a later specific receive).
type chaosProgram struct {
	ranks    int
	ops      [][]chaosOp
	wildcard []bool
}

type chaosOp struct {
	kind byte // 's' send, 'r' recv, 'c' compute
	peer int
	tag  int
	val  int64
}

func genChaos(rng *rand.Rand, ranks, msgs int) *chaosProgram {
	p := &chaosProgram{ranks: ranks, ops: make([][]chaosOp, ranks), wildcard: make([]bool, ranks)}
	for r := range p.wildcard {
		p.wildcard[r] = rng.Intn(3) == 0
	}
	for m := 0; m < msgs; m++ {
		src := rng.Intn(ranks)
		dst := rng.Intn(ranks)
		if src == dst {
			dst = (dst + 1) % ranks
		}
		tag := rng.Intn(3)
		p.ops[src] = append(p.ops[src], chaosOp{kind: 's', peer: dst, tag: tag, val: int64(m)})
		p.ops[dst] = append(p.ops[dst], chaosOp{kind: 'r', peer: src, tag: tag})
		if rng.Intn(4) == 0 {
			r := rng.Intn(ranks)
			p.ops[r] = append(p.ops[r], chaosOp{kind: 'c', val: int64(10 + rng.Intn(200))})
		}
		// Occasionally a global barrier: every rank gets one at the same
		// schedule point, which keeps the program deadlock-free. Barriers
		// exercise collective-atomicity in stoplines and replay.
		if rng.Intn(8) == 0 {
			for r := 0; r < ranks; r++ {
				p.ops[r] = append(p.ops[r], chaosOp{kind: 'b'})
			}
		}
	}
	return p
}

func (p *chaosProgram) body() func(c *instr.Ctx) {
	return func(c *instr.Ctx) {
		defer c.Fn(instr.Loc("chaos.go", 1, fmt.Sprintf("chaos%d", c.Rank())))()
		for _, op := range p.ops[c.Rank()] {
			switch op.kind {
			case 's':
				c.SendInt64s(op.peer, op.tag, []int64{op.val})
			case 'r':
				if p.wildcard[c.Rank()] {
					c.Recv(mp.AnySource, mp.AnyTag)
				} else {
					c.Recv(op.peer, op.tag)
				}
			case 'c':
				c.Compute(op.val)
			case 'b':
				c.Barrier()
			}
		}
	}
}

// shape extracts the replay-comparable projection of a trace: per-rank
// sequences of (kind, src, dst, tag, bytes). Message ids are assignment-
// order artifacts and excluded.
func shape(tr *trace.Trace) [][]string {
	out := make([][]string, tr.NumRanks())
	for r := 0; r < tr.NumRanks(); r++ {
		for i := range tr.Rank(r) {
			rec := &tr.Rank(r)[i]
			out[r] = append(out[r], fmt.Sprintf("%v/%d/%d/%d/%d", rec.Kind, rec.Src, rec.Dst, rec.Tag, rec.Bytes))
		}
	}
	return out
}

func equalShapes(a, b [][]string) (string, bool) {
	if len(a) != len(b) {
		return "rank count", false
	}
	for r := range a {
		if len(a[r]) != len(b[r]) {
			return fmt.Sprintf("rank %d length %d vs %d", r, len(a[r]), len(b[r])), false
		}
		for i := range a[r] {
			if a[r][i] != b[r][i] {
				return fmt.Sprintf("rank %d event %d: %s vs %s", r, i, a[r][i], b[r][i]), false
			}
		}
	}
	return "", true
}

// TestChaosRecordReplayEquivalence is the system-level property: for random
// programs (including wildcard ranks), a replay under the enforcer
// reproduces the recorded event sequences exactly.
func TestChaosRecordReplayEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 25; trial++ {
		ranks := 2 + rng.Intn(5)
		msgs := 5 + rng.Intn(40)
		prog := genChaos(rng, ranks, msgs)

		d := New(debug.Target{Cfg: mp.Config{NumRanks: ranks}, Body: prog.body()})
		if err := d.Record(); err != nil {
			t.Fatalf("trial %d: record: %v", trial, err)
		}
		recorded := shape(d.Trace())
		if err := d.Trace().Validate(); err != nil {
			t.Fatalf("trial %d: recorded trace invalid: %v", trial, err)
		}

		for rep := 0; rep < 2; rep++ {
			s, err := d.Session().Replay(nil)
			if err != nil {
				t.Fatalf("trial %d: replay: %v", trial, err)
			}
			if err := s.Finish(); err != nil {
				t.Fatalf("trial %d: replay finish: %v", trial, err)
			}
			if msg, ok := equalShapes(recorded, shape(s.Trace())); !ok {
				t.Fatalf("trial %d rep %d: replay diverged: %s", trial, rep, msg)
			}
		}
	}
}

// TestChaosStopLinesConsistent checks random vertical stoplines over random
// programs: every cut is consistent, and a replay to the stopline stops
// every rank exactly at its marker.
func TestChaosStopLinesConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		ranks := 2 + rng.Intn(4)
		prog := genChaos(rng, ranks, 10+rng.Intn(30))
		d := New(debug.Target{Cfg: mp.Config{NumRanks: ranks}, Body: prog.body()})
		if err := d.Record(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		tr := d.Trace()
		o, err := d.Order()
		if err != nil {
			t.Fatal(err)
		}
		end := tr.EndTime()
		for k := 0; k < 8; k++ {
			at := rng.Int63n(end + 1)
			sl, err := d.VerticalStopLine(at)
			if err != nil {
				t.Fatalf("trial %d: stopline at %d: %v", trial, at, err)
			}
			if ok, _ := o.IsConsistentCut(sl.Cut); !ok {
				t.Fatalf("trial %d: inconsistent cut at %d", trial, at)
			}
		}
		// Replay one mid-trace stopline and verify the stop markers.
		sl, err := d.VerticalStopLine(end / 2)
		if err != nil {
			t.Fatal(err)
		}
		s, err := d.Replay(sl)
		if err != nil {
			t.Fatal(err)
		}
		stops, err := s.WaitAllStopped(tmo)
		if err != nil {
			t.Fatalf("trial %d: stops: %v", trial, err)
		}
		for _, st := range stops {
			want := sl.Markers.Seq(st.Rank)
			if want == 0 {
				want = 1
			}
			if st.Marker != want {
				t.Fatalf("trial %d: rank %d stopped at %d, want %d", trial, st.Rank, st.Marker, want)
			}
		}
		if err := s.Finish(); err != nil {
			t.Fatalf("trial %d: finish: %v", trial, err)
		}
	}
}

// TestChaosAnalysisSanity: random clean programs never report deadlocks or
// unmatched messages; races appear only when wildcard ranks with several
// potential senders exist.
func TestChaosAnalysisSanity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		ranks := 2 + rng.Intn(5)
		prog := genChaos(rng, ranks, 5+rng.Intn(30))
		d := New(debug.Target{Cfg: mp.Config{NumRanks: ranks}, Body: prog.body()})
		if err := d.Record(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if d.Deadlocks().HasDeadlock() {
			t.Fatalf("trial %d: phantom deadlock", trial)
		}
		um := d.Unmatched()
		if len(um.UnmatchedSends()) != 0 || len(um.UnmatchedRecvs()) != 0 {
			t.Fatalf("trial %d: phantom unmatched messages:\n%s", trial, um.Report())
		}
		races, err := d.Races()
		if err != nil {
			t.Fatal(err)
		}
		anyWildcard := false
		for _, w := range prog.wildcard {
			anyWildcard = anyWildcard || w
		}
		if !anyWildcard && len(races) > 0 {
			t.Fatalf("trial %d: races without wildcards: %v", trial, races)
		}
		// The tag-FIFO matching agrees with exact matching on every trace.
		tr := d.Trace()
		exact, _ := tr.MatchSendRecv()
		fifo, us, ur := matchFIFO(tr)
		if len(us) != 0 || len(ur) != 0 || len(fifo) != len(exact) {
			t.Fatalf("trial %d: fifo matching unmatched %d/%d", trial, len(us), len(ur))
		}
		for recv, send := range exact {
			if fifo[recv] != send {
				t.Fatalf("trial %d: fifo matching disagrees at %v", trial, recv)
			}
		}
		_ = analysis.BuildActionGraph(tr) // must not panic on any shape
	}
}

// matchFIFO adapts graph.MatchTagFIFO for the sanity test.
func matchFIFO(tr *trace.Trace) (map[trace.EventID]trace.EventID, []trace.EventID, []trace.EventID) {
	return graph.MatchTagFIFO(tr)
}

// faultCfg builds a world config with a fresh injector for the plan.
func faultCfg(t *testing.T, ranks int, plan fault.Plan) (mp.Config, *fault.Injector) {
	t.Helper()
	cfg := mp.Config{NumRanks: ranks}
	in, err := fault.Install(plan, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, in
}

// TestChaosFaultedReplayEquivalence: injected delays and duplicate deliveries
// do not break record/replay equivalence on random programs. The injector
// keys every decision off deterministic channel sequence numbers, so replays
// see the identical faults and the enforcer reproduces the recorded shape.
func TestChaosFaultedReplayEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	fired := 0
	for trial := 0; trial < 12; trial++ {
		ranks := 2 + rng.Intn(4)
		prog := genChaos(rng, ranks, 5+rng.Intn(30))
		plan := fault.Plan{Seed: int64(31 * (trial + 1)), Rules: []fault.Rule{
			fault.DelayRule(fault.AnyRank, fault.AnyRank, fault.AnyTag, 150, 0.4),
			fault.DuplicateRule(fault.AnyRank, fault.AnyRank, fault.AnyTag, 0.25),
		}}
		cfg, in := faultCfg(t, ranks, plan)
		d := New(debug.Target{Cfg: cfg, Body: prog.body()})
		if err := d.Record(); err != nil {
			t.Fatalf("trial %d: record under delay/dup plan: %v", trial, err)
		}
		fired += len(in.Events())
		recorded := shape(d.Trace())
		for rep := 0; rep < 2; rep++ {
			s, err := d.Session().Replay(nil)
			if err != nil {
				t.Fatalf("trial %d: replay: %v", trial, err)
			}
			if err := s.Finish(); err != nil {
				t.Fatalf("trial %d: replay finish: %v", trial, err)
			}
			if msg, ok := equalShapes(recorded, shape(s.Trace())); !ok {
				t.Fatalf("trial %d rep %d: faulted replay diverged: %s", trial, rep, msg)
			}
		}
	}
	if fired == 0 {
		t.Fatal("no faults fired across any trial; the test exercised nothing")
	}
}

// TestChaosSameSeedFaultPlanIsDeterministic: two independent executions of
// the same program under freshly built injectors for the same seeded plan
// make identical fault decisions and produce identical histories. Wildcard
// receives are disabled: their match order on a fresh run is genuinely
// scheduling-dependent, which is what replay enforcement (tested above) is
// for — plan determinism must hold without it.
func TestChaosSameSeedFaultPlanIsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 8; trial++ {
		ranks := 2 + rng.Intn(4)
		prog := genChaos(rng, ranks, 5+rng.Intn(25))
		for r := range prog.wildcard {
			prog.wildcard[r] = false
		}
		plan := fault.Plan{Seed: int64(100 + trial), Rules: []fault.Rule{
			fault.DelayRule(fault.AnyRank, fault.AnyRank, fault.AnyTag, 90, 0.5),
			fault.DuplicateRule(fault.AnyRank, fault.AnyRank, fault.AnyTag, 0.3),
			fault.SlowRule(rng.Intn(ranks), 25),
		}}
		run := func() ([][]string, string) {
			cfg, in := faultCfg(t, ranks, plan)
			d := New(debug.Target{Cfg: cfg, Body: prog.body()})
			if err := d.Record(); err != nil {
				t.Fatalf("trial %d: record: %v", trial, err)
			}
			// Normalize the event log: drop MsgID (assignment order is a
			// scheduling artifact) and sort, then compare runs as text.
			var evs []string
			for _, e := range in.Events() {
				evs = append(evs, fmt.Sprintf("%d/%v/%d/%d/%d/%d/%d",
					e.Rule, e.Kind, e.Src, e.Dst, e.Tag, e.ChanSeq, e.Delay))
			}
			sort.Strings(evs)
			return shape(d.Trace()), strings.Join(evs, "\n")
		}
		shapeA, evA := run()
		shapeB, evB := run()
		if msg, ok := equalShapes(shapeA, shapeB); !ok {
			t.Fatalf("trial %d: same-seed runs diverged: %s", trial, msg)
		}
		if evA != evB {
			t.Fatalf("trial %d: fault decisions diverged:\n--- run A\n%s\n--- run B\n%s", trial, evA, evB)
		}
	}
}

// TestChaosDropsDiagnosedAsDropsNotDeadlocks: dropping one message from a
// deadlock-free random program stalls the run, and the deadlock analyzer
// must attribute the hang to the injected drop — never invent a circular
// dependency the programmer did not write.
func TestChaosDropsDiagnosedAsDropsNotDeadlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	for trial := 0; trial < 8; trial++ {
		ranks := 2 + rng.Intn(4)
		prog := genChaos(rng, ranks, 5+rng.Intn(25))
		// Drop the first message on the first channel the schedule uses.
		src, dst := -1, -1
		for r := 0; r < ranks && src < 0; r++ {
			for _, op := range prog.ops[r] {
				if op.kind == 's' {
					src, dst = r, op.peer
					break
				}
			}
		}
		if src < 0 {
			t.Fatalf("trial %d: schedule has no sends", trial)
		}
		plan := fault.Plan{Seed: int64(trial), Rules: []fault.Rule{fault.DropNth(src, dst, 1)}}
		cfg, in := faultCfg(t, ranks, plan)
		d := New(debug.Target{Cfg: cfg, Body: prog.body()})
		if err := d.Record(); err == nil {
			t.Fatalf("trial %d: dropped message did not stall the run", trial)
		}
		if n := len(in.Events()); n != 1 {
			t.Fatalf("trial %d: want exactly one drop event, got %d", trial, n)
		}
		rep := d.Deadlocks()
		if rep.HasDeadlock() {
			t.Fatalf("trial %d: injected drop misdiagnosed as deadlock:\n%s", trial, rep.String())
		}
		if !rep.FaultInduced() || len(rep.InjectedDrops) == 0 {
			t.Fatalf("trial %d: hang not attributed to the injected drop:\n%s", trial, rep.String())
		}
	}
}
