package core

import (
	"testing"

	"tracedbg/internal/apps"
	"tracedbg/internal/debug"
	"tracedbg/internal/instr"
	"tracedbg/internal/mp"
	"tracedbg/internal/replay"
)

func TestReplayFromCheckpointViaDebugger(t *testing.T) {
	const ranks, iters, every = 3, 100, 10
	store := replay.NewCheckpointStore()
	mk := func(snap *replay.Snapshot) func(c *instr.Ctx) {
		cfg := apps.JacobiConfig{Cells: 16, Iters: iters, Seed: 2, CheckpointEvery: every}
		if snap == nil {
			cfg.Store = store
		} else {
			cfg.Store = replay.NewCheckpointStore()
			cfg.Resume = snap
		}
		return apps.Jacobi(cfg, nil)
	}
	d := New(debug.Target{
		Cfg:     mp.Config{NumRanks: ranks},
		Body:    mk(nil),
		BodyFor: mk,
	})
	if err := d.Record(); err != nil {
		t.Fatal(err)
	}

	// Stopline late in the trace.
	sl, err := d.VerticalStopLine(d.Trace().EndTime() * 4 / 5)
	if err != nil {
		t.Fatal(err)
	}
	s, snap, err := d.ReplayFromCheckpoint(store, sl)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("expected a snapshot to be used")
	}
	if _, err := s.WaitAllStopped(tmo); err != nil {
		t.Fatalf("stops: %v", err)
	}
	// The resumed session replayed only the suffix.
	full := d.Session().Counters()
	for r, rel := range s.Counters() {
		if rel >= full[r] {
			t.Errorf("rank %d: resumed replay did %d markers, full history has %d", r, rel, full[r])
		}
	}
	if err := s.Finish(); err != nil {
		t.Fatal(err)
	}

	// A stopline before the first snapshot falls back to a from-scratch
	// replay (snapshot == nil).
	early, err := d.VerticalStopLine(d.Trace().EndTime() / 50)
	if err != nil {
		t.Fatal(err)
	}
	s2, snap2, err := d.ReplayFromCheckpoint(store, early)
	if err != nil {
		t.Fatal(err)
	}
	if snap2 != nil {
		t.Errorf("early stopline should not use a snapshot (got iter %d)", snap2.Iter)
	}
	if _, err := s2.WaitAllStopped(tmo); err != nil {
		t.Fatal(err)
	}
	if err := s2.Finish(); err != nil {
		t.Fatal(err)
	}
}
