// Package pvm is a PVM-flavored veneer over the mp runtime. p2d2 debugged
// both PVM and MPI programs; this package lets workloads be written against
// the PVM idioms — task ids instead of ranks, typed pack/unpack message
// buffers, mcast — while everything underneath (instrumentation, markers,
// replay, stoplines) works unchanged, because the veneer delegates to the
// same Proc operations the hooks observe.
package pvm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"tracedbg/internal/mp"
)

// TID is a PVM task identifier. Like real pvmd-assigned tids, they are
// offset from a base so that raw ranks and tids cannot be confused.
type TID int32

// tidBase mimics the pvmd tid encoding offset.
const tidBase = 0x40000

// PvmNoParent is returned by Parent for the master task.
const PvmNoParent TID = -23 // PVM's PvmNoParent value

// AnyTID matches any source task in Recv/Probe.
const AnyTID TID = -1

// TIDOf converts a rank to its task id.
func TIDOf(rank int) TID { return TID(tidBase + rank) }

// Rank converts a task id back to a rank (-1 if not a task tid).
func (t TID) Rank() int {
	if t < tidBase {
		return -1
	}
	return int(t) - tidBase
}

// String renders the tid in the traditional hex form.
func (t TID) String() string { return fmt.Sprintf("t%x", int32(t)) }

// Task is one PVM task (a rank of the underlying world).
type Task struct {
	p *mp.Proc
}

// Wrap adapts an mp.Proc (or the Proc embedded in an instrumented Ctx).
func Wrap(p *mp.Proc) *Task { return &Task{p: p} }

// Proc exposes the underlying process.
func (t *Task) Proc() *mp.Proc { return t.p }

// MyTID returns this task's id (pvm_mytid).
func (t *Task) MyTID() TID { return TIDOf(t.p.Rank()) }

// Parent returns the master's tid, or PvmNoParent for the master itself
// (pvm_parent; the spawn-tree is flattened to master/workers).
func (t *Task) Parent() TID {
	if t.p.Rank() == 0 {
		return PvmNoParent
	}
	return TIDOf(0)
}

// Tasks lists every task id in the virtual machine (pvm_tasks).
func (t *Task) Tasks() []TID {
	out := make([]TID, t.p.Size())
	for i := range out {
		out[i] = TIDOf(i)
	}
	return out
}

// errBadTID reports an invalid destination.
var errBadTID = errors.New("pvm: invalid task id")

func (t *Task) rankOf(tid TID) (int, error) {
	r := tid.Rank()
	if r < 0 || r >= t.p.Size() {
		return 0, fmt.Errorf("%w: %v", errBadTID, tid)
	}
	return r, nil
}

// Send transmits a packed buffer (pvm_send).
func (t *Task) Send(dst TID, msgtag int, buf *Buffer) error {
	r, err := t.rankOf(dst)
	if err != nil {
		return err
	}
	t.p.Send(r, msgtag, buf.Bytes())
	return nil
}

// Recv blocks for a message (pvm_recv); src may be AnyTID and msgtag may be
// mp.AnyTag. It returns the unpacking buffer and the actual sender.
func (t *Task) Recv(src TID, msgtag int) (*Buffer, TID, error) {
	srcRank := mp.AnySource
	if src != AnyTID {
		r, err := t.rankOf(src)
		if err != nil {
			return nil, 0, err
		}
		srcRank = r
	}
	data, st := t.p.Recv(srcRank, msgtag)
	return NewReadBuffer(data), TIDOf(st.Source), nil
}

// NRecv is the nonblocking receive (pvm_nrecv): ok is false when nothing
// matching is deliverable right now.
func (t *Task) NRecv(src TID, msgtag int) (*Buffer, TID, bool, error) {
	srcRank := mp.AnySource
	if src != AnyTID {
		r, err := t.rankOf(src)
		if err != nil {
			return nil, 0, false, err
		}
		srcRank = r
	}
	st, ok := t.p.Iprobe(srcRank, msgtag)
	if !ok {
		return nil, 0, false, nil
	}
	data, st2 := t.p.Recv(st.Source, st.Tag)
	return NewReadBuffer(data), TIDOf(st2.Source), true, nil
}

// Probe reports whether a matching message is deliverable (pvm_probe).
func (t *Task) Probe(src TID, msgtag int) bool {
	srcRank := mp.AnySource
	if src != AnyTID {
		r, err := t.rankOf(src)
		if err != nil {
			return false
		}
		srcRank = r
	}
	_, ok := t.p.Iprobe(srcRank, msgtag)
	return ok
}

// Mcast sends the buffer to several tasks (pvm_mcast).
func (t *Task) Mcast(tids []TID, msgtag int, buf *Buffer) error {
	for _, tid := range tids {
		if tid == t.MyTID() {
			continue // PVM mcast does not deliver to self
		}
		if err := t.Send(tid, msgtag, buf); err != nil {
			return err
		}
	}
	return nil
}

// Barrier joins the whole-machine barrier (pvm_barrier with the implicit
// world group).
func (t *Task) Barrier() { t.p.Barrier() }

// --- pack/unpack buffers -------------------------------------------------

// Buffer is the PVM message buffer: values are packed in order with type
// tags and unpacked in the same order (pvm_pk*/pvm_upk*). Unpacking a
// different type than was packed is reported as an error, which catches the
// classic PVM mistake silently tolerated by the original library.
type Buffer struct {
	data []byte
	off  int
}

// Type tags in the buffer encoding.
const (
	tagInt32 byte = iota + 1
	tagInt64
	tagFloat64
	tagBytes
	tagString
)

// NewBuffer creates an empty packing buffer (pvm_initsend).
func NewBuffer() *Buffer { return &Buffer{} }

// NewReadBuffer wraps received bytes for unpacking.
func NewReadBuffer(data []byte) *Buffer { return &Buffer{data: data} }

// Bytes returns the wire form.
func (b *Buffer) Bytes() []byte { return b.data }

func (b *Buffer) packHeader(tag byte, n int) {
	b.data = append(b.data, tag)
	b.data = binary.AppendUvarint(b.data, uint64(n))
}

func (b *Buffer) unpackHeader(tag byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, fmt.Errorf("pvm: unpack past end of buffer")
	}
	got := b.data[b.off]
	if got != tag {
		return 0, fmt.Errorf("pvm: unpack type mismatch: packed tag %d, unpacking tag %d", got, tag)
	}
	b.off++
	n, sz := binary.Uvarint(b.data[b.off:])
	if sz <= 0 {
		return 0, fmt.Errorf("pvm: corrupt buffer length")
	}
	b.off += sz
	return int(n), nil
}

// PackInt32s packs a []int32 (pvm_pkint).
func (b *Buffer) PackInt32s(xs []int32) *Buffer {
	b.packHeader(tagInt32, len(xs))
	for _, x := range xs {
		b.data = binary.LittleEndian.AppendUint32(b.data, uint32(x))
	}
	return b
}

// UnpackInt32s unpacks a []int32 (pvm_upkint).
func (b *Buffer) UnpackInt32s() ([]int32, error) {
	n, err := b.unpackHeader(tagInt32)
	if err != nil {
		return nil, err
	}
	if b.off+4*n > len(b.data) {
		return nil, fmt.Errorf("pvm: truncated int32 block")
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b.data[b.off:]))
		b.off += 4
	}
	return out, nil
}

// PackInt64s packs a []int64 (pvm_pklong).
func (b *Buffer) PackInt64s(xs []int64) *Buffer {
	b.packHeader(tagInt64, len(xs))
	for _, x := range xs {
		b.data = binary.LittleEndian.AppendUint64(b.data, uint64(x))
	}
	return b
}

// UnpackInt64s unpacks a []int64.
func (b *Buffer) UnpackInt64s() ([]int64, error) {
	n, err := b.unpackHeader(tagInt64)
	if err != nil {
		return nil, err
	}
	if b.off+8*n > len(b.data) {
		return nil, fmt.Errorf("pvm: truncated int64 block")
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b.data[b.off:]))
		b.off += 8
	}
	return out, nil
}

// PackFloat64s packs a []float64 (pvm_pkdouble).
func (b *Buffer) PackFloat64s(xs []float64) *Buffer {
	b.packHeader(tagFloat64, len(xs))
	for _, x := range xs {
		b.data = binary.LittleEndian.AppendUint64(b.data, math.Float64bits(x))
	}
	return b
}

// UnpackFloat64s unpacks a []float64.
func (b *Buffer) UnpackFloat64s() ([]float64, error) {
	n, err := b.unpackHeader(tagFloat64)
	if err != nil {
		return nil, err
	}
	if b.off+8*n > len(b.data) {
		return nil, fmt.Errorf("pvm: truncated float64 block")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b.data[b.off:]))
		b.off += 8
	}
	return out, nil
}

// PackBytes packs raw bytes (pvm_pkbyte).
func (b *Buffer) PackBytes(p []byte) *Buffer {
	b.packHeader(tagBytes, len(p))
	b.data = append(b.data, p...)
	return b
}

// UnpackBytes unpacks raw bytes.
func (b *Buffer) UnpackBytes() ([]byte, error) {
	n, err := b.unpackHeader(tagBytes)
	if err != nil {
		return nil, err
	}
	if b.off+n > len(b.data) {
		return nil, fmt.Errorf("pvm: truncated byte block")
	}
	out := append([]byte(nil), b.data[b.off:b.off+n]...)
	b.off += n
	return out, nil
}

// PackString packs a string (pvm_pkstr).
func (b *Buffer) PackString(s string) *Buffer {
	b.packHeader(tagString, len(s))
	b.data = append(b.data, s...)
	return b
}

// UnpackString unpacks a string.
func (b *Buffer) UnpackString() (string, error) {
	n, err := b.unpackHeader(tagString)
	if err != nil {
		return "", err
	}
	if b.off+n > len(b.data) {
		return "", fmt.Errorf("pvm: truncated string")
	}
	out := string(b.data[b.off : b.off+n])
	b.off += n
	return out, nil
}
