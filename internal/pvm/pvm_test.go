package pvm

import (
	"reflect"
	"testing"
	"testing/quick"

	"tracedbg/internal/instr"
	"tracedbg/internal/mp"
	"tracedbg/internal/trace"
)

func TestTIDConversions(t *testing.T) {
	if TIDOf(0).Rank() != 0 || TIDOf(7).Rank() != 7 {
		t.Error("tid round trip")
	}
	if TID(5).Rank() != -1 {
		t.Error("raw int accepted as tid")
	}
	if TIDOf(3).String() != "t40003" {
		t.Errorf("tid string = %s", TIDOf(3))
	}
}

func TestBufferRoundTrip(t *testing.T) {
	b := NewBuffer().
		PackInt32s([]int32{1, -2, 3}).
		PackFloat64s([]float64{3.14, -1}).
		PackString("hello pvm").
		PackBytes([]byte{9, 8}).
		PackInt64s([]int64{1 << 40})
	r := NewReadBuffer(b.Bytes())
	i32, err := r.UnpackInt32s()
	if err != nil || !reflect.DeepEqual(i32, []int32{1, -2, 3}) {
		t.Fatalf("int32s = %v, %v", i32, err)
	}
	f64, err := r.UnpackFloat64s()
	if err != nil || f64[0] != 3.14 {
		t.Fatalf("float64s = %v, %v", f64, err)
	}
	s, err := r.UnpackString()
	if err != nil || s != "hello pvm" {
		t.Fatalf("string = %q, %v", s, err)
	}
	bs, err := r.UnpackBytes()
	if err != nil || !reflect.DeepEqual(bs, []byte{9, 8}) {
		t.Fatalf("bytes = %v, %v", bs, err)
	}
	i64, err := r.UnpackInt64s()
	if err != nil || i64[0] != 1<<40 {
		t.Fatalf("int64s = %v, %v", i64, err)
	}
}

func TestBufferTypeMismatchDetected(t *testing.T) {
	b := NewBuffer().PackInt32s([]int32{1})
	r := NewReadBuffer(b.Bytes())
	if _, err := r.UnpackFloat64s(); err == nil {
		t.Error("type mismatch not detected")
	}
	// Unpacking past the end fails cleanly.
	r2 := NewReadBuffer(nil)
	if _, err := r2.UnpackInt32s(); err == nil {
		t.Error("empty buffer unpack accepted")
	}
	// Truncated payload fails cleanly.
	data := NewBuffer().PackInt64s([]int64{1, 2}).Bytes()
	r3 := NewReadBuffer(data[:len(data)-3])
	if _, err := r3.UnpackInt64s(); err == nil {
		t.Error("truncated buffer accepted")
	}
}

func TestBufferProperty(t *testing.T) {
	f := func(a []int32, b []float64, s string) bool {
		buf := NewBuffer().PackInt32s(a).PackFloat64s(b).PackString(s)
		r := NewReadBuffer(buf.Bytes())
		ga, err := r.UnpackInt32s()
		if err != nil {
			return false
		}
		gb, err := r.UnpackFloat64s()
		if err != nil {
			return false
		}
		gs, err := r.UnpackString()
		if err != nil {
			return false
		}
		if len(a) == 0 && len(ga) == 0 {
			// nil vs empty slices compare fine below via len
		} else if !reflect.DeepEqual(ga, a) {
			return false
		}
		for i := range b {
			if gb[i] != b[i] && !(b[i] != b[i] && gb[i] != gb[i]) { // NaN-safe
				return false
			}
		}
		return gs == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPVMMasterWorker(t *testing.T) {
	// A classic PVM master/worker program running under full
	// instrumentation: the veneer is transparent to the monitor.
	const n = 4
	sink := instr.NewMemorySink(n)
	in := instr.New(n, sink, instr.LevelAll)
	var sum int64
	err := in.Run(mp.Config{NumRanks: n}, func(c *instr.Ctx) {
		tk := Wrap(c.Proc)
		if tk.Parent() == PvmNoParent {
			// Master: mcast work, gather replies.
			work := NewBuffer().PackInt64s([]int64{100})
			if err := tk.Mcast(tk.Tasks(), 1, work); err != nil {
				t.Error(err)
			}
			for i := 0; i < n-1; i++ {
				buf, src, err := tk.Recv(AnyTID, 2)
				if err != nil {
					t.Error(err)
					return
				}
				vals, err := buf.UnpackInt64s()
				if err != nil {
					t.Error(err)
					return
				}
				if src.Rank() < 1 {
					t.Errorf("reply from %v", src)
				}
				sum += vals[0]
			}
		} else {
			buf, _, err := tk.Recv(TIDOf(0), 1)
			if err != nil {
				t.Error(err)
				return
			}
			vals, err := buf.UnpackInt64s()
			if err != nil {
				t.Error(err)
				return
			}
			reply := NewBuffer().PackInt64s([]int64{vals[0] + int64(tk.MyTID().Rank())})
			if err := tk.Send(tk.Parent(), 2, reply); err != nil {
				t.Error(err)
			}
		}
		tk.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 3*100+1+2+3 {
		t.Fatalf("sum = %d", sum)
	}
	// The monitor saw everything: PVM messages are ordinary trace records.
	st := sink.Trace().Summarize()
	if st.Sends != (n-1)*2 || st.Recvs != (n-1)*2 {
		t.Fatalf("trace: %+v", st)
	}
	if st.PerKind[trace.KindCollective] != n {
		t.Fatalf("barrier events: %+v", st.PerKind)
	}
}

func TestPVMProbeAndNRecv(t *testing.T) {
	err := mp.Run(mp.Config{NumRanks: 2}, func(p *mp.Proc) {
		tk := Wrap(p)
		if p.Rank() == 0 {
			tk.Send(TIDOf(1), 9, NewBuffer().PackString("x"))
		} else {
			// NRecv polls until the message is there.
			for {
				buf, src, ok, err := tk.NRecv(AnyTID, 9)
				if err != nil {
					t.Error(err)
					return
				}
				if ok {
					if src != TIDOf(0) {
						t.Errorf("src = %v", src)
					}
					s, _ := buf.UnpackString()
					if s != "x" {
						t.Errorf("payload = %q", s)
					}
					return
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPVMErrors(t *testing.T) {
	err := mp.Run(mp.Config{NumRanks: 2}, func(p *mp.Proc) {
		tk := Wrap(p)
		if p.Rank() != 0 {
			return
		}
		if err := tk.Send(TID(12345), 0, NewBuffer()); err == nil {
			t.Error("bad tid send accepted")
		}
		if _, _, err := tk.Recv(TID(1), 0); err == nil {
			t.Error("bad tid recv accepted")
		}
		if tk.Probe(TID(2), 0) {
			t.Error("bad tid probe matched")
		}
		if _, _, _, err := tk.NRecv(TID(2), 0); err == nil {
			t.Error("bad tid nrecv accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
