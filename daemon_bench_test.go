// BenchmarkDaemonIngest measures the collector daemon's ingest throughput
// over loopback TCP: one session alone (the regression guard against the
// single-trace collector it generalizes) and eight sessions streaming
// concurrently (the multi-session scaling number). Records flow the full
// path — client framing, wire, admission, bounded queue, sequential segment
// writer — and an iteration counts one record made durable on disk.
//
// Run with scripts/bench.sh to capture the JSON baseline (BENCH_PR6.json).
package tracedbg_test

import (
	"fmt"
	"testing"
	"time"

	"tracedbg/internal/remote"
	"tracedbg/internal/trace"
)

const daemonBenchRanks = 4

func benchEmit(b *testing.B, cl *remote.Client, n int) {
	var marker uint64
	var clock int64
	for i := 0; i < n; i++ {
		marker++
		clock += 2
		cl.Emit(&trace.Record{
			Kind: trace.KindMarker, Rank: i % daemonBenchRanks, Marker: marker,
			Start: clock - 1, End: clock, Name: "bench",
		})
		if i%512 == 511 {
			cl.Flush()
		}
	}
	cl.Flush()
}

func benchDaemonIngest(b *testing.B, sessions int) {
	d, err := remote.NewDaemon("127.0.0.1:0", remote.DaemonOptions{
		Dir:          b.TempDir(),
		Heartbeat:    time.Millisecond,
		QueueRecords: 8192,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	clients := make([]*remote.Client, sessions)
	for i := range clients {
		cl, err := remote.DialOptions(d.Addr(), daemonBenchRanks, remote.ClientOptions{
			SessionID: fmt.Sprintf("bench-%d", i),
		})
		if err != nil {
			b.Fatal(err)
		}
		defer cl.Close()
		clients[i] = cl
	}

	per := b.N / sessions
	if per == 0 {
		per = 1
	}
	total := uint64(per * sessions)
	b.ResetTimer()
	done := make(chan struct{})
	for _, cl := range clients {
		go func(cl *remote.Client) {
			benchEmit(b, cl, per)
			done <- struct{}{}
		}(cl)
	}
	for range clients {
		<-done
	}
	for {
		var sum uint64
		for _, st := range d.Sessions() {
			sum += st.Durable
		}
		if sum >= total {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "records/s")
}

func BenchmarkDaemonIngest(b *testing.B) {
	b.Run("SingleSession", func(b *testing.B) { benchDaemonIngest(b, 1) })
	b.Run("MultiSession8", func(b *testing.B) { benchDaemonIngest(b, 8) })

	// The pre-daemon baseline: the same record stream into the single-trace
	// collector, the <5% regression reference for SingleSession.
	b.Run("LegacyCollector", func(b *testing.B) {
		col, err := remote.NewCollectorOptions("127.0.0.1:0", remote.CollectorOptions{
			Heartbeat: time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer col.Close()
		cl, err := remote.Dial(col.Addr(), daemonBenchRanks)
		if err != nil {
			b.Fatal(err)
		}
		defer cl.Close()
		b.ResetTimer()
		benchEmit(b, cl, b.N)
		for col.Trace().Len() < b.N {
			time.Sleep(100 * time.Microsecond)
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")
	})
}
