// Package tracedbg is a trace-driven debugger for message passing programs,
// reproducing Frumkin, Hood & Lopez, "Trace-Driven Debugging of Message
// Passing Programs" (IPPS 1998) — the history-based features of the NASA
// p2d2 debugger: execution-history acquisition at three instrumentation
// levels, time-space visualization, consistent stopline breakpoints,
// controlled replay with enforced message matching, parallel undo, and
// history analysis (unmatched messages, deadlock cycles, message races).
//
// The message-passing substrate is an MPI-like runtime (ranks are
// goroutines) implemented in internal/mp; programs are written against
// *tracedbg.Ctx, which combines the communication API with the
// instrumentation entry points.
//
// Quick start:
//
//	tgt := tracedbg.Target{
//	    Cfg:  tracedbg.Config{NumRanks: 4},
//	    Body: func(c *tracedbg.Ctx) { ... c.Send(1, 0, data) ... },
//	}
//	d := tracedbg.New(tgt)
//	if err := d.Record(); err != nil { ... }
//	fmt.Println(d.RenderASCII(tracedbg.RenderOptions{Messages: true}))
//	sl, _ := d.VerticalStopLine(d.Trace().EndTime() / 2)
//	s, _ := d.Replay(sl)
//	s.WaitAllStopped(5 * time.Second)
//	fmt.Println(s.ReadVar(0, "x"))
package tracedbg

import (
	"tracedbg/internal/analysis"
	"tracedbg/internal/causality"
	"tracedbg/internal/core"
	"tracedbg/internal/debug"
	"tracedbg/internal/graph"
	"tracedbg/internal/instr"
	"tracedbg/internal/mp"
	"tracedbg/internal/query"
	"tracedbg/internal/replay"
	"tracedbg/internal/trace"
	"tracedbg/internal/vis"
)

// Core API.
type (
	// Debugger orchestrates trace-driven debugging of one target.
	Debugger = core.Debugger
	// StopLine is a breakpoint in the timeline.
	StopLine = core.StopLine
	// StopLineKind selects vertical or frontier stoplines.
	StopLineKind = core.StopLineKind

	// Target describes the debuggee.
	Target = debug.Target
	// Session is one controlled execution.
	Session = debug.Session
	// Stop describes a rank parked at a control point.
	Stop = debug.Stop

	// Config is the runtime configuration (rank count, send mode, costs).
	Config = mp.Config
	// Ctx is the per-rank program handle: communication + instrumentation.
	Ctx = instr.Ctx
	// Level selects instrumentation strategies.
	Level = instr.Level

	// Trace is an in-memory execution history.
	Trace = trace.Trace
	// Record is one history event.
	Record = trace.Record
	// EventID identifies an event in a trace.
	EventID = trace.EventID
	// Marker is an execution marker (rank + monitor counter).
	Marker = trace.Marker
	// Location is a source position.
	Location = trace.Location

	// Order is the happens-before structure of a trace.
	Order = causality.Order
	// Frontier is a per-rank event set (past/future frontiers).
	Frontier = causality.Frontier
	// Cut is a consistent-cut candidate.
	Cut = causality.Cut

	// StopSet is the marker form of a stopline.
	StopSet = replay.StopSet
	// Enforcer replays recorded message matching.
	Enforcer = replay.Enforcer
	// CheckpointStore keeps snapshots with a logarithmic backlog.
	CheckpointStore = replay.CheckpointStore
	// Snapshot is one stored checkpoint.
	Snapshot = replay.Snapshot

	// TraceGraph is the bounded graph abstraction of history.
	TraceGraph = graph.TraceGraph
	// CallGraph is a per-process dynamic call graph.
	CallGraph = graph.CallGraph
	// CommGraph is the message causality graph.
	CommGraph = graph.CommGraph

	// DeadlockReport lists blocked ranks and wait cycles.
	DeadlockReport = analysis.DeadlockReport
	// Race is a racing wildcard receive.
	Race = analysis.Race
	// TrafficReport flags irregular per-rank message counts.
	TrafficReport = analysis.TrafficReport

	// RenderOptions controls time-space diagram rendering.
	RenderOptions = vis.Options

	// StallError reports a global communication stall.
	StallError = mp.StallError
)

// Stopline kinds.
const (
	Vertical            = core.Vertical
	AlongPastFrontier   = core.AlongPastFrontier
	AlongFutureFrontier = core.AlongFutureFrontier
)

// Instrumentation levels (combinable).
const (
	LevelWrappers   = instr.LevelWrappers
	LevelFunctions  = instr.LevelFunctions
	LevelConstructs = instr.LevelConstructs
	LevelAll        = instr.LevelAll
)

// Wildcard receive specifiers.
const (
	AnySource = mp.AnySource
	AnyTag    = mp.AnyTag
)

// New prepares a Debugger for the target.
func New(tgt Target) *Debugger { return core.New(tgt) }

// Loc builds a source location for instrumentation calls.
func Loc(file string, line int, fn string) Location { return instr.Loc(file, line, fn) }

// CompileQuery compiles a history query expression (see internal/query).
func CompileQuery(expr string) (*TraceQuery, error) { return query.Compile(expr) }

// TraceQuery is a compiled history query.
type TraceQuery = query.Query

// NewOrder computes the happens-before structure of a trace.
func NewOrder(tr *Trace) (*Order, error) { return causality.New(tr) }

// NewCheckpointStore creates an empty checkpoint store.
func NewCheckpointStore() *CheckpointStore { return replay.NewCheckpointStore() }

// SVG renders a trace as an SVG time-space diagram.
func SVG(tr *Trace, opt RenderOptions) string { return vis.SVG(tr, opt) }

// ASCII renders a trace as a terminal time-space diagram.
func ASCII(tr *Trace, opt RenderOptions) string { return vis.ASCII(tr, opt) }
