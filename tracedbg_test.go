package tracedbg_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"tracedbg"
)

// facadeTarget is a small pipeline written purely against the public API.
func facadeTarget() tracedbg.Target {
	return tracedbg.Target{
		Cfg: tracedbg.Config{NumRanks: 3},
		Body: func(c *tracedbg.Ctx) {
			defer c.Fn(tracedbg.Loc("pipe.go", 1, "stage"))()
			x := int64(0)
			c.Expose("x", &x)
			switch c.Rank() {
			case 0:
				c.SendInt64s(1, 0, []int64{10})
			case 1:
				in, _ := c.RecvInt64s(0, 0)
				x = in[0] + 1
				c.Compute(100)
				c.SendInt64s(2, 0, []int64{x})
			case 2:
				in, _ := c.RecvInt64s(mp0(), 0) // wildcard via facade const
				x = in[0]
			}
			c.Barrier()
		},
	}
}

func mp0() int { return tracedbg.AnySource }

func TestFacadeRecordInspectReplay(t *testing.T) {
	d := tracedbg.New(facadeTarget())
	if err := d.Record(); err != nil {
		t.Fatalf("record: %v", err)
	}
	tr := d.Trace()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Sends()) != 2 || len(tr.Recvs()) != 2 {
		t.Fatalf("messages: %d/%d", len(tr.Sends()), len(tr.Recvs()))
	}

	// Rendering through the facade.
	if !strings.Contains(d.RenderASCII(tracedbg.RenderOptions{Width: 60}), "P2") {
		t.Error("ascii render")
	}
	if !strings.Contains(tracedbg.SVG(tr, tracedbg.RenderOptions{}), "<svg") {
		t.Error("svg render")
	}
	if !strings.Contains(tracedbg.ASCII(tr, tracedbg.RenderOptions{}), "legend") {
		t.Error("ascii helper")
	}

	// Causality through the facade.
	o, err := tracedbg.NewOrder(tr)
	if err != nil {
		t.Fatal(err)
	}
	send0 := tr.Sends()[0]
	recvLast := tr.Recvs()[len(tr.Recvs())-1]
	if !o.HappensBefore(send0, recvLast) {
		t.Error("pipeline causality missing")
	}

	// Stopline + replay + inspection.
	sl, err := d.VerticalStopLine(tr.EndTime() / 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := d.Replay(sl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WaitAllStopped(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadVar(1, "x"); err != nil {
		t.Errorf("read var: %v", err)
	}
	if err := s.Finish(); err != nil {
		t.Fatal(err)
	}

	// Analyses through the facade.
	if d.Deadlocks().HasDeadlock() {
		t.Error("phantom deadlock")
	}
	races, err := d.Races()
	if err != nil {
		t.Fatal(err)
	}
	// The rank-2 wildcard has a single possible sender: no race.
	if len(races) != 0 {
		t.Errorf("races: %v", races)
	}
	if got := d.CallGraph(1).Calls("program", "stage"); got != 1 {
		t.Errorf("call graph: %d", got)
	}
	if len(d.CommGraph().Nodes) != 2 {
		t.Errorf("comm graph nodes: %d", len(d.CommGraph().Nodes))
	}
}

func TestFacadeStallSurfacesTypedError(t *testing.T) {
	d := tracedbg.New(tracedbg.Target{
		Cfg: tracedbg.Config{NumRanks: 2},
		Body: func(c *tracedbg.Ctx) {
			c.Recv(1-c.Rank(), 0)
		},
	})
	err := d.Record()
	var stall *tracedbg.StallError
	if !errors.As(err, &stall) {
		t.Fatalf("want StallError, got %v", err)
	}
	if len(stall.Blocked) != 2 {
		t.Fatalf("blocked: %+v", stall.Blocked)
	}
}

func TestFacadeCheckpointStore(t *testing.T) {
	cs := tracedbg.NewCheckpointStore()
	for i := 0; i < 100; i++ {
		cs.Add(tracedbg.Snapshot{Iter: i, Markers: []uint64{uint64(i)}})
	}
	if cs.Len() > 10 {
		t.Errorf("backlog = %d", cs.Len())
	}
	if _, ok := cs.BestFor([]uint64{50}); !ok {
		t.Error("no snapshot found")
	}
}

func TestFacadeLevelsAndConstants(t *testing.T) {
	if tracedbg.LevelAll&tracedbg.LevelWrappers == 0 {
		t.Error("LevelAll should include wrappers")
	}
	if tracedbg.AnySource != -1 || tracedbg.AnyTag != -1 {
		t.Error("wildcard constants")
	}
	if tracedbg.Vertical.String() != "vertical" {
		t.Error("stopline kind")
	}
}
