// BenchmarkQueryCold pins the acceptance criterion of the persistent-index
// PR: a bounded query over a freshly opened store (no warm Trace, no page
// of decode state carried over) must be at least 5x faster with a sidecar
// index than the full-scan fallback, because the planner seeks each rank's
// cursor to the bound's checkpoint instead of structurally decoding the
// file from byte zero. The Indexed/Scan pair differs ONLY in the presence
// of the .tdx sidecar — same bytes, same query, same cold open.
package tracedbg_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"tracedbg/internal/obs"
	"tracedbg/internal/query"
	"tracedbg/internal/store"
	"tracedbg/internal/trace"
)

// coldBenchQuery is deeply bounded: the marker floor sits in the last ~3%
// of each rank's records, so an indexed execution decodes a short suffix
// while a scan pays for the whole file.
const coldBenchQuery = "kind = send && marker >= 14500"

// writeColdBenchFiles encodes the corpus once through the sharded writer
// (rank-tagged chunks — the layout recording pipelines produce) and lands
// the identical bytes at two paths; only the first gets the sidecar. The
// Indexed/Scan comparison is therefore purely index-vs-no-index.
func writeColdBenchFiles(b *testing.B) (indexed, plain string) {
	b.Helper()
	tr := streamBenchTrace(streamBenchRanks, streamBenchEvents)
	var buf bytes.Buffer
	sw, err := trace.NewShardedWriterOptions(&buf, tr.NumRanks(), 0, trace.WriterOptions{BuildIndex: true})
	if err != nil {
		b.Fatal(err)
	}
	for _, id := range tr.MergedOrder() {
		if err := sw.Write(tr.MustAt(id)); err != nil {
			b.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		b.Fatal(err)
	}
	si := sw.SealIndex()
	if si == nil {
		b.Fatal("sharded writer sealed no index")
	}
	dir := b.TempDir()
	indexed = filepath.Join(dir, "indexed.trace")
	plain = filepath.Join(dir, "plain.trace")
	for _, p := range []string{indexed, plain} {
		if err := os.WriteFile(p, buf.Bytes(), 0o644); err != nil {
			b.Fatal(err)
		}
	}
	if err := trace.WriteIndexFile(trace.IndexPath(indexed), si); err != nil {
		b.Fatal(err)
	}
	return indexed, plain
}

func coldRun(b *testing.B, path string, wantIndexed bool) {
	b.Helper()
	q, err := query.Compile(coldBenchQuery)
	if err != nil {
		b.Fatal(err)
	}
	var matches int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := store.OpenMmap(path)
		if err != nil {
			b.Fatal(err)
		}
		if ix := st.Indexes(); ix.Available() != wantIndexed {
			b.Fatalf("indexed = %v, want %v (%s)", ix.Available(), wantIndexed, ix.Reason())
		}
		ids, err := q.Plan(query.NewStoreSource(st)).Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(ids) == 0 {
			b.Fatal("bounded query matched nothing; bench corpus drifted")
		}
		matches = len(ids)
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(matches), "matches")
}

func BenchmarkQueryCold(b *testing.B) {
	indexed, plain := writeColdBenchFiles(b)

	// The speedup claim rests on the indexed path doing no full structural
	// pass: assert it once via the store's scan counter before timing.
	reg := obs.NewRegistry()
	store.SetObsRegistry(reg)
	func() {
		defer store.SetObsRegistry(obs.Default())
		st, err := store.OpenMmap(indexed)
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		q, err := query.Compile(coldBenchQuery)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := q.Plan(query.NewStoreSource(st)).Run(); err != nil {
			b.Fatal(err)
		}
		for _, m := range reg.Snapshot().Metrics {
			if m.Name == "tracedbg_store_cursor_records_total" && m.Value != 0 {
				b.Fatalf("cold indexed query scanned %v records through plain cursors; want 0", m.Value)
			}
		}
	}()

	b.Run("Indexed", func(b *testing.B) { coldRun(b, indexed, true) })
	b.Run("Scan", func(b *testing.B) { coldRun(b, plain, false) })
}
