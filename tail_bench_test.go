// BenchmarkTailLatency measures the live-monitoring hot path end to end: a
// producer writes one record, flushes it durable, syncs the manifest, and an
// attached tail cursor (store.Open in ModeLive + Store.Tail) waits for it.
// An iteration is one durable-to-delivered round trip, so ns/op is the
// latency floor a `tvis -follow` or HTTP tail consumer can expect on top of
// the producer's own flush cadence.
//
// Run with scripts/bench.sh to capture the JSON baseline (BENCH_PR8.json).
package tracedbg_test

import (
	"context"
	"testing"
	"time"

	"tracedbg/internal/store"
	"tracedbg/internal/trace"
)

func BenchmarkTailLatency(b *testing.B) {
	const ranks = 2
	dir := b.TempDir()
	gw, err := trace.NewSequentialSegmentedWriter(dir, "trace", ranks, 1<<30, trace.WriterOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer gw.Close()
	// Seed one record so the manifest exists before the cursor attaches.
	write := func(marker uint64) {
		clock := int64(marker) * 2
		if err := gw.Write(&trace.Record{
			Kind: trace.KindMarker, Rank: int(marker) % ranks, Marker: marker,
			Start: clock - 1, End: clock, Name: "bench",
		}); err != nil {
			b.Fatal(err)
		}
		if err := gw.Flush(); err != nil {
			b.Fatal(err)
		}
		if err := gw.SyncManifest(); err != nil {
			b.Fatal(err)
		}
	}
	marker := uint64(1)
	write(marker)

	st, err := store.Open(gw.ManifestPath(), store.Options{Mode: store.ModeLive})
	if err != nil {
		b.Fatal(err)
	}
	tc, err := st.Tail(store.TailOptions{Poll: time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	defer tc.Close()
	ctx := context.Background()
	if _, err := tc.Next(ctx); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		marker++
		write(marker)
		if _, err := tc.Next(ctx); err != nil {
			b.Fatal(err)
		}
	}
}
