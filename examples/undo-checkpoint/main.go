// Undo and checkpointing: the parallel undo operation replays to the
// previous stop, and the paper's proposed checkpointing extension keeps a
// logarithmic backlog of snapshots so resuming near a target is much
// cheaper than re-executing from the start.
package main

import (
	"fmt"
	"log"
	"time"

	"tracedbg"
	"tracedbg/internal/apps"
	"tracedbg/internal/instr"
	"tracedbg/internal/mp"
)

func main() {
	undoDemo()
	checkpointDemo()
}

// undoDemo: stop a run mid-way, resume it, then undo back to the stop.
func undoDemo() {
	fmt.Println("--- parallel undo ---")
	d := tracedbg.New(tracedbg.Target{
		Cfg:  tracedbg.Config{NumRanks: 3},
		Body: apps.Ring(6, nil),
	})
	s, err := d.Launch()
	if err != nil {
		log.Fatalf("launch: %v", err)
	}
	// Break inside Hop and stop rank 0 there. Release the other ranks (they
	// run ahead until they need a message rank 0 has not sent yet), then
	// step rank 0 through a few events.
	s.BreakFunc("Hop")
	if _, err := s.WaitStop(0, 30*time.Second); err != nil {
		log.Fatalf("stop: %v", err)
	}
	s.ClearBreaks()
	for _, st := range s.Stops() {
		if st.Rank != 0 {
			if err := s.Continue(st.Rank); err != nil {
				log.Fatalf("continue: %v", err)
			}
		}
	}
	for i := 0; i < 4; i++ {
		if err := s.Step(0); err != nil {
			log.Fatalf("step: %v", err)
		}
		if _, err := s.WaitStop(0, 30*time.Second); err != nil {
			log.Fatalf("step stop: %v", err)
		}
	}
	vec := s.Counters()
	tok, _ := s.ReadVar(0, "token")
	fmt.Printf("stopped at markers %v, rank 0 token=%s\n", vec, tok)

	// Accidentally continue past the point of interest...
	s.ClearBreaks()
	if err := s.Finish(); err != nil {
		log.Fatalf("finish: %v", err)
	}
	tokEnd, _ := s.ReadVar(0, "token")
	fmt.Printf("ran to completion, token=%s — too far!\n", tokEnd)

	// ...and undo: a controlled replay back to the previous stop vector.
	u, err := s.Undo()
	if err != nil {
		log.Fatalf("undo: %v", err)
	}
	if _, err := u.WaitAllStopped(30 * time.Second); err != nil {
		log.Fatalf("undo stops: %v", err)
	}
	tokUndo, _ := u.ReadVar(0, "token")
	fmt.Printf("after undo: markers %v, rank 0 token=%s (state restored)\n", u.Counters(), tokUndo)
	if err := u.Finish(); err != nil {
		log.Fatalf("undo finish: %v", err)
	}
}

// checkpointDemo: snapshots with logarithmic backlog shorten replays.
func checkpointDemo() {
	fmt.Println("\n--- checkpointed replay (the paper's §6 extension) ---")
	const ranks, iters = 4, 200
	store := tracedbg.NewCheckpointStore()
	cfg := apps.JacobiConfig{Cells: 64, Iters: iters, Seed: 9, CheckpointEvery: 10, Store: store}

	out := apps.NewJacobiOut()
	in := instr.New(ranks, instr.NullSink{}, tracedbg.LevelAll)
	start := time.Now()
	if err := in.Run(mp.Config{NumRanks: ranks}, apps.Jacobi(cfg, out)); err != nil {
		log.Fatalf("run: %v", err)
	}
	fullTime := time.Since(start)
	fmt.Printf("%d iterations with checkpoints every %d: %d snapshots retained (logarithmic backlog)\n",
		iters, cfg.CheckpointEvery, store.Len())
	fmt.Println(store)

	// Replay target: the state around iteration 150. Without checkpoints a
	// replay re-executes 150 iterations; with them it resumes from the best
	// snapshot at or before the target.
	target := 150
	var best *tracedbg.Snapshot
	for _, s := range store.Snapshots() {
		if s.Iter <= target {
			c := s
			best = &c
		}
	}
	if best == nil {
		log.Fatal("no usable snapshot")
	}
	resume := apps.JacobiConfig{Cells: 64, Iters: iters, Seed: 9, Resume: best}
	out2 := apps.NewJacobiOut()
	in2 := instr.New(ranks, instr.NullSink{}, tracedbg.LevelAll)
	start = time.Now()
	if err := in2.Run(mp.Config{NumRanks: ranks}, apps.Jacobi(resume, out2)); err != nil {
		log.Fatalf("resume: %v", err)
	}
	resumeTime := time.Since(start)

	// The resumed run reproduces the full run's final state.
	for r := 0; r < ranks; r++ {
		a, _ := out.Checksum(r)
		b, _ := out2.Checksum(r)
		if a != b {
			log.Fatalf("rank %d: resumed checksum %g != full %g", r, b, a)
		}
	}
	fmt.Printf("resumed from snapshot at iteration %d: %d instead of %d iterations re-executed\n",
		best.Iter, iters-(best.Iter+1), iters)
	fmt.Printf("full run %v, resumed run %v; final states identical\n",
		fullTime.Round(time.Microsecond), resumeTime.Round(time.Microsecond))
}
