// The paper's §4.1 debugging walkthrough, end to end: a distributed
// Strassen matrix multiplication hangs; the time-space diagram shows
// processes 0 and 7 blocked in receives (Figure 5); zooming shows process 7
// received one message instead of two (Figure 6); a stopline set before the
// send group and a controlled replay let us step through the MatrSend loop
// and catch the wrong destination — jres instead of jres+1 at
// strassen.go:161 (Figure 7).
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"tracedbg"
	"tracedbg/internal/apps"
)

func main() {
	d := tracedbg.New(tracedbg.Target{
		Cfg:  tracedbg.Config{NumRanks: 8},
		Body: apps.Strassen(apps.StrassenConfig{N: 16, Seed: 42, Buggy: true}, nil),
	})

	// Run the program: it hangs, the runtime detects the global stall and
	// reports who is blocked on what.
	err := d.Record()
	var stall *tracedbg.StallError
	if !errors.As(err, &stall) {
		log.Fatalf("expected the buggy Strassen to stall, got: %v", err)
	}
	fmt.Println("the program hung; the runtime reports:")
	for _, b := range stall.Blocked {
		fmt.Printf("  %s\n", b)
	}

	// Figure 5: the big picture. Blocked intervals render as 'x' bars.
	fmt.Println("\n--- time-space diagram (Figure 5) ---")
	fmt.Print(d.RenderASCII(tracedbg.RenderOptions{Width: 78, Messages: false}))

	// Figure 6: message traffic per rank exposes the missed message.
	fmt.Println("\n--- traffic analysis (Figure 6) ---")
	fmt.Print(d.Traffic().String())
	fmt.Print(d.Deadlocks().String())

	// Set a stopline just before the second-operand send group: the
	// statement marker at strassen.go:161 with jres=0.
	tr := d.Trace()
	var before tracedbg.EventID
	found := false
	for i := range tr.Rank(0) {
		r := tr.Rank(0)[i]
		if r.Loc.Line == 161 && r.Args[0] == 0 && r.Kind.String() == "Marker" {
			before = tracedbg.EventID{Rank: 0, Index: i}
			found = true
			break
		}
	}
	if !found {
		log.Fatal("could not find the pre-send statement marker")
	}
	sl, err := d.StopLineAtEvent(before)
	if err != nil {
		log.Fatalf("stopline: %v", err)
	}
	fmt.Printf("\nstopline before the send group: markers %v\n", sl.Markers)

	// Replay to the stopline (Figure 7) and step through the send loop.
	s, err := d.Replay(sl)
	if err != nil {
		log.Fatalf("replay: %v", err)
	}
	if _, err := s.WaitStop(0, 30*time.Second); err != nil {
		log.Fatalf("rank 0 did not stop: %v", err)
	}
	fmt.Println("replay stopped; stepping rank 0 through the MatrSend loop:")
	for hops := 0; hops < 30; hops++ {
		stop := s.Where(0)
		if stop == nil {
			break
		}
		if stop.Rec.Kind.String() == "Send" && stop.Rec.Loc.Line == 161 {
			jres, _ := s.ReadVar(0, "jres")
			fmt.Printf("  strassen.go:161 sent operand B to rank %d while jres=%s  <-- should be jres+1!\n",
				stop.Rec.Dst, jres)
			if stop.Rec.Dst >= 2 {
				break // evidence is conclusive after a few sends
			}
		}
		if err := s.Step(0); err != nil {
			log.Fatalf("step: %v", err)
		}
		if _, err := s.WaitStop(0, 30*time.Second); err != nil {
			log.Fatalf("wait: %v", err)
		}
	}
	fmt.Println("\ndiagnosis: the destination expression uses jres instead of jres+1 (strassen.go:161)")
	s.Kill()
	_ = s.Wait()

	// Confirm the fix: the correct variant runs to completion and matches
	// the sequential product.
	cfg := apps.StrassenConfig{N: 16, Seed: 42}
	res, _, err := apps.RunStrassen(cfg, 8, tracedbg.LevelAll)
	if err != nil {
		log.Fatalf("fixed run: %v", err)
	}
	if diff := apps.MaxDiff(res, apps.StrassenReference(cfg)); diff > 1e-9 {
		log.Fatalf("fixed result differs from reference by %g", diff)
	}
	fmt.Println("after the fix (jres+1): the run completes and matches the sequential product")
}
