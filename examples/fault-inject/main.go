// Fault injection: deterministic, seed-driven faults — message drops,
// delivery delays, duplicate deliveries, rank crashes — injected at the
// runtime's PMPI-style interposition points. Every injected fault lands in
// the history; replays see the identical faults (decisions key off channel
// sequence numbers, never goroutine scheduling); and the deadlock analyzer
// distinguishes "hang caused by an injected fault" from a genuine circular
// dependency the programmer wrote.
package main

import (
	"errors"
	"fmt"
	"log"

	"tracedbg"
	"tracedbg/internal/apps"
	"tracedbg/internal/fault"
	"tracedbg/internal/mp"
)

const ranks = 3

func ring(iters int) func(c *tracedbg.Ctx) {
	body, err := apps.Build("ring", ranks, apps.Params{Iters: iters})
	if err != nil {
		log.Fatal(err)
	}
	return body
}

func main() {
	// --- 1. Drop: the ring's first hop vanishes on the wire. The run
	// stalls, and the analysis blames the fault — not the program.
	plan := fault.Plan{Seed: 7, Rules: []fault.Rule{fault.DropNth(0, 1, 1)}}
	cfg := mp.Config{NumRanks: ranks}
	inj, err := fault.Install(plan, &cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %s\n", plan)
	d := tracedbg.New(tracedbg.Target{Cfg: cfg, Body: ring(2)})
	if err := d.Record(); err != nil {
		fmt.Printf("run ended: %v\n", err) // the expected stall
	}
	for _, ev := range inj.Events() {
		fmt.Printf("injected: %s\n", ev)
	}
	fmt.Print(d.Deadlocks()) // "... an injected fault dropped the message"

	// --- 2. Delay + duplicate: the run completes, and a replay under the
	// same plan reproduces the recorded history exactly — fault decisions
	// are a pure function of the seed and message coordinates.
	cfg2 := mp.Config{NumRanks: ranks}
	if _, err := fault.Install(fault.Plan{Seed: 11, Rules: []fault.Rule{
		fault.DelayRule(fault.AnyRank, fault.AnyRank, fault.AnyTag, 300, 0.5),
		fault.DuplicateRule(fault.AnyRank, fault.AnyRank, fault.AnyTag, 0.25),
	}}, &cfg2); err != nil {
		log.Fatal(err)
	}
	d2 := tracedbg.New(tracedbg.Target{Cfg: cfg2, Body: ring(3)})
	if err := d2.Record(); err != nil {
		log.Fatalf("faulted run failed: %v", err)
	}
	s, err := d2.Session().Replay(nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := s.Finish(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecord: %d events; replay under the same plan: %d events\n",
		d2.Trace().Len(), s.Trace().Len())

	// --- 3. Crash: rank 2 dies at its 4th operation. The survivors stall
	// realistically (a dead process just stops answering), the history is
	// marked incomplete, and the hang is attributed to the crash.
	cfg3 := mp.Config{NumRanks: ranks}
	if _, err := fault.Install(fault.Plan{Rules: []fault.Rule{fault.CrashRule(2, 4)}}, &cfg3); err != nil {
		log.Fatal(err)
	}
	d3 := tracedbg.New(tracedbg.Target{Cfg: cfg3, Body: ring(2)})
	err = d3.Record()
	var cerr *mp.CrashError
	if errors.As(err, &cerr) {
		fmt.Printf("\nrank %d crashed: %v\n", cerr.Rank, cerr.Reason)
	}
	if tr := d3.Trace(); tr.Incomplete() {
		fmt.Printf("history incomplete: %s\n", tr.IncompleteReason())
	}
	fmt.Print(d3.Deadlocks()) // "... waits on rank 2, which crashed"
}
