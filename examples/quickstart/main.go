// Quickstart: record a small message-passing program, look at its history,
// set a stopline in the timeline, replay to it, and inspect program state —
// the core trace-driven debugging loop in ~80 lines.
package main

import (
	"fmt"
	"log"
	"time"

	"tracedbg"
)

func main() {
	// A 4-rank program: rank 0 circulates a token twice around the ring.
	// Programs are written against *tracedbg.Ctx: the communication API
	// plus instrumentation entry points (Fn = function prologue call,
	// Expose = register a variable for debugger inspection).
	body := func(c *tracedbg.Ctx) {
		defer c.Fn(tracedbg.Loc("ring.go", 10, "main"))()
		n := c.Size()
		token := int64(0)
		c.Expose("token", &token)
		for round := 0; round < 2; round++ {
			if c.Rank() == 0 {
				c.SendInt64s(1, 0, []int64{token + 1})
				in, _ := c.RecvInt64s(n-1, 0)
				token = in[0]
			} else {
				in, _ := c.RecvInt64s(c.Rank()-1, 0)
				token = in[0]
				c.Compute(100) // some local work
				c.SendInt64s((c.Rank()+1)%n, 0, []int64{token + 1})
			}
		}
	}

	d := tracedbg.New(tracedbg.Target{
		Cfg:  tracedbg.Config{NumRanks: 4},
		Body: body,
	})

	// 1. Record an execution: the monitor collects the history while the
	// program runs.
	if err := d.Record(); err != nil {
		log.Fatalf("record: %v", err)
	}
	tr := d.Trace()
	st := tr.Summarize()
	fmt.Printf("recorded %d events, %d messages, end of run at vt=%d\n\n",
		st.Records, st.Sends, st.EndTime)

	// 2. The big picture: the time-space diagram.
	fmt.Print(d.RenderASCII(tracedbg.RenderOptions{Width: 78, Messages: true}))

	// 3. Set a stopline halfway through the execution. The debugger turns
	// the vertical line into a consistent set of per-rank breakpoints
	// (execution markers).
	mid := tr.EndTime() / 2
	sl, err := d.VerticalStopLine(mid)
	if err != nil {
		log.Fatalf("stopline: %v", err)
	}
	fmt.Printf("\nstopline at vt=%d -> markers %v\n", mid, sl.Markers)

	// 4. Replay: re-execute under the monitor, stopping every rank at its
	// marker. Message matching is enforced from the recording, so the
	// replay has identical causality.
	s, err := d.Replay(sl)
	if err != nil {
		log.Fatalf("replay: %v", err)
	}
	stops, err := s.WaitAllStopped(30 * time.Second)
	if err != nil {
		log.Fatalf("waiting for stops: %v", err)
	}
	fmt.Printf("replay stopped %d ranks at the stopline:\n", len(stops))
	for _, stop := range stops {
		tok, _ := s.ReadVar(stop.Rank, "token")
		fmt.Printf("  rank %d at marker %d (%s), token=%s\n",
			stop.Rank, stop.Marker, stop.Rec.Kind, tok)
	}

	// 5. Step rank 0 one event and resume everything to completion.
	if err := s.Step(0); err == nil {
		if stop, err := s.WaitStop(0, 30*time.Second); err == nil {
			fmt.Printf("stepped rank 0 to marker %d: %s\n", stop.Marker, stop.Rec.String())
		}
	}
	if err := s.Finish(); err != nil {
		log.Fatalf("finish: %v", err)
	}
	fmt.Println("replay ran to completion")
}
