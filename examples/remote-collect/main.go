// Remote collection: the client/server architecture of a distributed
// debugger. An instrumented run streams its history over TCP to a
// collector (in a real deployment they would be different machines); the
// collector's merged trace is then queried, analyzed, and rendered —
// including mid-run, via flush-on-demand.
package main

import (
	"fmt"
	"log"
	"time"

	"tracedbg"
	"tracedbg/internal/apps"
	"tracedbg/internal/instr"
	"tracedbg/internal/mp"
	"tracedbg/internal/remote"
)

func main() {
	// The "debugger side": a collector listening for history streams.
	col, err := remote.NewCollector("127.0.0.1:0")
	if err != nil {
		log.Fatalf("collector: %v", err)
	}
	defer col.Close()
	fmt.Printf("collector listening on %s\n", col.Addr())

	// The "target side": an instrumented 6-rank LU sweep streaming its
	// records to the collector while it runs.
	const ranks = 6
	client, err := remote.Dial(col.Addr(), ranks)
	if err != nil {
		log.Fatalf("dial: %v", err)
	}
	in := instr.New(ranks, client, tracedbg.LevelAll)
	if err := in.Run(mp.Config{NumRanks: ranks},
		apps.LU(apps.LUConfig{Cols: 8, Rows: 4, Iters: 2, Seed: 1}, nil)); err != nil {
		log.Fatalf("run: %v", err)
	}
	if err := client.Close(); err != nil {
		log.Fatalf("client close: %v", err)
	}

	// Wait for the stream to drain, then work on the collected history.
	var tr *tracedbg.Trace
	for deadline := time.Now().Add(10 * time.Second); ; {
		tr = col.Trace()
		if tr.Len() > 0 && len(col.Errs()) == 0 {
			st := tr.Summarize()
			if st.Recvs == st.Sends && st.Sends > 0 {
				break
			}
		}
		if time.Now().After(deadline) {
			log.Fatal("stream never drained")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := tr.Validate(); err != nil {
		log.Fatalf("streamed trace invalid: %v", err)
	}
	st := tr.Summarize()
	fmt.Printf("collected %d events, %d messages over the wire\n", st.Records, st.Sends)

	// Query the collected history.
	q, err := tracedbg.CompileQuery(`kind = send && tag = 40 && rank = 2`)
	if err != nil {
		log.Fatalf("query: %v", err)
	}
	hits := q.Run(tr)
	fmt.Printf("query %q matched %d events:\n", q, len(hits))
	for _, id := range hits {
		fmt.Printf("  %s\n", tr.MustAt(id).String())
	}

	// And render the usual big picture from the streamed data.
	fmt.Print(tracedbg.ASCII(tr, tracedbg.RenderOptions{Width: 78}))
}
