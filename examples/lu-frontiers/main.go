// Figure 8 reproduction: run the SSOR wavefront (the NAS LU analogue),
// select an event in the timeline, compute its past and future frontiers,
// and display the concurrency region between them. The frontier shapes
// follow the wavefront diagonals. Both frontier kinds are then used as
// stoplines for a controlled replay.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"tracedbg"
	"tracedbg/internal/apps"
)

func main() {
	const ranks = 8
	d := tracedbg.New(tracedbg.Target{
		Cfg:  tracedbg.Config{NumRanks: ranks},
		Body: apps.LU(apps.LUConfig{Cols: 8, Rows: 4, Iters: 2, Seed: 1}, nil),
	})
	if err := d.Record(); err != nil {
		log.Fatalf("record: %v", err)
	}
	tr := d.Trace()
	fmt.Printf("recorded %d events over %d ranks\n", tr.Len(), tr.NumRanks())

	// The user clicks a point: rank 4's first forward-sweep send.
	var sel tracedbg.EventID
	for i := range tr.Rank(4) {
		if tr.Rank(4)[i].Kind.String() == "Send" {
			sel = tracedbg.EventID{Rank: 4, Index: i}
			break
		}
	}
	fmt.Printf("selected event: %s\n\n", tr.MustAt(sel).String())

	// Past and future frontiers + the concurrency region between them.
	o, err := d.Order()
	if err != nil {
		log.Fatalf("causality: %v", err)
	}
	past, _ := o.PastFrontier(sel)
	future, _ := o.FutureFrontier(sel)
	lo, hi, _ := o.ConcurrencyRegion(sel)

	fmt.Println("per-rank concurrency region (event index ranges concurrent with the selection):")
	for r := 0; r < ranks; r++ {
		fmt.Printf("  rank %d: past frontier idx %3d | concurrent [%3d,%3d) | future frontier idx %3d\n",
			r, past[r], lo[r], hi[r], future[r])
	}

	fmt.Println("\n--- timeline with frontiers (Figure 8: '<' past, '>' future, '@' selection) ---")
	fmt.Print(tracedbg.ASCII(tr, tracedbg.RenderOptions{
		Width: 100, Past: past, Future: future, Selected: &sel,
	}))

	// Write the SVG version, with frontier polylines and the selection
	// circle, next to the binary.
	svg := tracedbg.SVG(tr, tracedbg.RenderOptions{
		Width: 900, Messages: true, Past: past, Future: future, Selected: &sel,
	})
	if err := os.WriteFile("lu-frontiers.svg", []byte(svg), 0o644); err == nil {
		fmt.Println("\nwrote lu-frontiers.svg")
	}

	// The paper proposes using the frontiers as stoplines: stop every rank
	// immediately after it could last affect the selection...
	sl, err := d.PastFrontierStopLine(sel)
	if err != nil {
		log.Fatalf("past-frontier stopline: %v", err)
	}
	s, err := d.Replay(sl)
	if err != nil {
		log.Fatalf("replay: %v", err)
	}
	stops, err := s.WaitAllStopped(30 * time.Second)
	if err != nil {
		log.Fatalf("stops: %v", err)
	}
	fmt.Printf("\npast-frontier replay stopped %d ranks at markers %v\n", len(stops), s.Counters())
	if err := s.Finish(); err != nil {
		log.Fatalf("finish: %v", err)
	}

	// ...or immediately before it could first be affected by it.
	fl, err := d.FutureFrontierStopLine(sel)
	if err != nil {
		log.Fatalf("future-frontier stopline: %v", err)
	}
	s2, err := d.Replay(fl)
	if err != nil {
		log.Fatalf("replay: %v", err)
	}
	stops2, err := s2.WaitAllStopped(30 * time.Second)
	if err != nil {
		log.Fatalf("stops: %v", err)
	}
	fmt.Printf("future-frontier replay stopped %d ranks at markers %v\n", len(stops2), s2.Counters())
	if err := s2.Finish(); err != nil {
		log.Fatalf("finish: %v", err)
	}
}
