// Self-observability: the pipeline watching itself work. A Strassen run
// streams its history to an in-process collector (cmd/tcollect's machinery)
// while a live /metrics endpoint serves Prometheus text, JSON snapshots, and
// pprof. After each stage — record/stream, persist, load, query — the
// example prints which counters moved and by how much, the stage-by-stage
// byte and event accounting that `tanalyze -stats` and the bench baseline
// expose in bulk.
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"tracedbg/internal/apps"
	"tracedbg/internal/instr"
	"tracedbg/internal/mp"
	"tracedbg/internal/obs"
	"tracedbg/internal/query"
	"tracedbg/internal/remote"
	"tracedbg/internal/store"
	"tracedbg/internal/trace"
)

// stage prints every registry series the previous stage moved.
func stage(prev obs.Snapshot, name string) obs.Snapshot {
	cur := obs.Default().Snapshot()
	before := map[string]float64{}
	for _, m := range prev.Metrics {
		before[m.Name+"|"+m.LabelValue] = m.Value
	}
	var lines []string
	for _, m := range cur.Metrics {
		d := m.Value - before[m.Name+"|"+m.LabelValue]
		if m.Type == obs.TypeHistogram {
			// For histograms the observation count is the story.
			var pc uint64
			if p, ok := prev.Get(m.Name); ok {
				pc = p.Count
			}
			if n := m.Count - pc; n > 0 {
				lines = append(lines, fmt.Sprintf("  %-48s +%d observations", m.Name, n))
			}
			continue
		}
		if d != 0 {
			label := m.Name
			if m.LabelValue != "" {
				label += "{" + m.LabelKey + "=" + m.LabelValue + "}"
			}
			lines = append(lines, fmt.Sprintf("  %-48s %+g", label, d))
		}
	}
	sort.Strings(lines)
	fmt.Printf("\n== %s ==\n%s\n", name, strings.Join(lines, "\n"))
	return cur
}

func main() {
	// Structured pipeline telemetry to stderr; the metrics endpoint any
	// Prometheus scraper (or curl) could poll mid-run.
	obs.SetEvents(obs.NewEventLog(os.Stderr, obs.LevelInfo))
	srv, err := obs.Serve("127.0.0.1:0", obs.Default())
	if err != nil {
		log.Fatalf("metrics endpoint: %v", err)
	}
	defer srv.Close()
	fmt.Printf("live metrics on %s/metrics (pprof on /debug/pprof/)\n", srv.URL())

	snap := obs.Default().Snapshot()

	// Stage 1 — record: an instrumented 8-rank Strassen multiply streaming
	// its records over TCP to a collector, exactly what `tcollect` runs.
	col, err := remote.NewCollector("127.0.0.1:0")
	if err != nil {
		log.Fatalf("collector: %v", err)
	}
	defer col.Close()
	const ranks = 8
	client, err := remote.Dial(col.Addr(), ranks)
	if err != nil {
		log.Fatalf("dial: %v", err)
	}
	in := instr.New(ranks, client, instr.LevelAll)
	if err := in.Run(mp.Config{NumRanks: ranks},
		apps.Strassen(apps.StrassenConfig{N: 32, Seed: 7}, nil)); err != nil {
		log.Fatalf("run: %v", err)
	}
	if err := client.Close(); err != nil {
		log.Fatalf("client close: %v", err)
	}
	for deadline := time.Now().Add(10 * time.Second); col.Trace().Len() == 0 ||
		col.Trace().Summarize().Recvs != col.Trace().Summarize().Sends; {
		if time.Now().After(deadline) {
			log.Fatal("stream never drained")
		}
		time.Sleep(10 * time.Millisecond)
	}
	tr := col.Trace()
	snap = stage(snap, fmt.Sprintf("record + stream (%d events)", tr.Len()))

	// Stage 2 — persist: encode through the sharded writer.
	var buf bytes.Buffer
	sw, err := trace.NewShardedWriter(&buf, tr.NumRanks())
	if err != nil {
		log.Fatalf("writer: %v", err)
	}
	for r := 0; r < tr.NumRanks(); r++ {
		recs := tr.Rank(r)
		for i := range recs {
			if err := sw.Write(&recs[i]); err != nil {
				log.Fatalf("write: %v", err)
			}
		}
	}
	if err := sw.Close(); err != nil {
		log.Fatalf("close: %v", err)
	}
	snap = stage(snap, fmt.Sprintf("persist (%d bytes)", buf.Len()))

	// Stage 3 — load: the trace store sniffs the image and negotiates the
	// parallel segment decoder for it.
	stc, err := store.OpenBytes(buf.Bytes())
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	loaded, err := stc.Trace()
	if err != nil {
		log.Fatalf("load: %v", err)
	}
	snap = stage(snap, fmt.Sprintf("parallel load (%d events)", loaded.Len()))

	// Stage 4 — query: a rank-pruned search planned against the store, so
	// a persistent index sidecar (when present) seeks instead of scanning.
	cache := query.NewCache()
	q, err := cache.Compile(`kind = send && rank = 2`)
	if err != nil {
		log.Fatalf("query: %v", err)
	}
	hits, err := q.Plan(query.NewStoreSource(stc)).Run()
	if err != nil {
		log.Fatalf("query run: %v", err)
	}
	if _, err := cache.Compile(`kind = send && rank = 2`); err != nil { // cache hit
		log.Fatalf("recompile: %v", err)
	}
	stage(snap, fmt.Sprintf("query (%d matches)", len(hits)))

	// Finally, scrape the live endpoint the way Prometheus would.
	resp, err := http.Get(srv.URL() + "/metrics")
	if err != nil {
		log.Fatalf("scrape: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("\n== GET /metrics (%d series) — excerpt ==\n", bytes.Count(body, []byte("\n")))
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "tracedbg_trace_") || strings.HasPrefix(line, "tracedbg_remote_collector_") {
			fmt.Println(line)
		}
	}
}
