// Benchmarks for the sharded trace pipeline: per-rank batched writing,
// parallel decode + merge, and index-pruned queries, compared head to head
// against the serial paths they replace. Run with:
//
//	go test -bench='Load|Query|Write' -benchmem .
//
// or scripts/bench.sh to capture a JSON baseline (BENCH_PR2.json).
package tracedbg_test

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"tracedbg/internal/graph"
	"tracedbg/internal/query"
	"tracedbg/internal/trace"
)

// pipelineTrace synthesizes a ranks-wide trace with realistic string variety
// (locations, construct names, occasional faults) and per-rank monotone
// clocks/markers.
func pipelineTrace(ranks, events int) *trace.Trace {
	rng := rand.New(rand.NewSource(97))
	files := []string{"ring.go", "lu.go", "strassen.go"}
	funcs := []string{"main", "worker", "exchange", "reduce"}
	faults := []string{"", "", "", "", "drop", "dup"}
	tr := trace.New(ranks)
	clock := make([]int64, ranks)
	marker := make([]uint64, ranks)
	for i := 0; i < events; i++ {
		r := i % ranks
		start := clock[r]
		end := start + 1 + int64(rng.Intn(6))
		clock[r] = end
		marker[r]++
		kind := trace.KindCompute
		switch rng.Intn(3) {
		case 0:
			kind = trace.KindSend
		case 1:
			kind = trace.KindRecv
		}
		tr.MustAppend(trace.Record{Kind: kind, Rank: r, Marker: marker[r],
			Loc:   trace.Location{File: files[rng.Intn(len(files))], Line: 10 + rng.Intn(100), Func: funcs[rng.Intn(len(funcs))]},
			Start: start, End: end, Src: r, Dst: (r + 1) % ranks,
			Tag: rng.Intn(4), Bytes: 64, MsgID: uint64(i),
			Name: "op", Fault: faults[rng.Intn(len(faults))]})
	}
	return tr
}

func encodedPipelineTrace(b *testing.B, ranks, events int) []byte {
	b.Helper()
	var buf bytes.Buffer
	if err := trace.WriteAll(&buf, pipelineTrace(ranks, events)); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

const (
	benchRanks  = 8
	benchEvents = 60000
)

// --- Loader: parallel decode + merge vs the serial scanner ----------------

// BenchmarkSerialLoad is the baseline: the streaming Scanner via ReadAll.
func BenchmarkSerialLoad(b *testing.B) {
	data := encodedPipelineTrace(b, benchRanks, benchEvents)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := trace.ReadAll(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if tr.Len() != benchEvents {
			b.Fatal("short read")
		}
	}
}

// BenchmarkParallelLoad decodes the same bytes through the segmented
// byte-slice loader (acceptance target: >= 2x over BenchmarkSerialLoad).
func BenchmarkParallelLoad(b *testing.B) {
	data := encodedPipelineTrace(b, benchRanks, benchEvents)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := trace.LoadParallel(data)
		if err != nil {
			b.Fatal(err)
		}
		if tr.Len() != benchEvents {
			b.Fatal("short read")
		}
	}
}

// BenchmarkParallelLoadIndexed reuses a prebuilt navigation index for
// segmentation (the index is built once, as a debugger session would).
func BenchmarkParallelLoadIndexed(b *testing.B) {
	data := encodedPipelineTrace(b, benchRanks, benchEvents)
	ix, err := trace.BuildIndex(bytes.NewReader(data), 0)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := trace.LoadParallelIndexed(data, ix)
		if err != nil {
			b.Fatal(err)
		}
		if tr.Len() != benchEvents {
			b.Fatal("short read")
		}
	}
}

// --- Queries: index-pruned vs full scan -----------------------------------

func queryBenchTrace(b *testing.B) *trace.Trace {
	b.Helper()
	return pipelineTrace(benchRanks, benchEvents)
}

const benchQuery = "rank = 3 && start >= 1000 && start <= 3000 && kind = send"

// BenchmarkQuerySerial is the baseline: evaluate the predicate on every
// record of every rank.
func BenchmarkQuerySerial(b *testing.B) {
	tr := queryBenchTrace(b)
	q, err := query.Compile(benchQuery)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ids := tr.Filter(q.Match)
		if len(ids) == 0 {
			b.Fatal("no matches")
		}
	}
}

// BenchmarkQueryIndexed runs the same query through the bounds-pruned path:
// non-matching ranks are skipped and the start interval is binary-searched
// (acceptance target: >= 2x over BenchmarkQuerySerial).
func BenchmarkQueryIndexed(b *testing.B) {
	tr := queryBenchTrace(b)
	q, err := query.Compile(benchQuery)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ids := q.Run(tr)
		if len(ids) == 0 {
			b.Fatal("no matches")
		}
	}
}

// BenchmarkQueryParallel adds the per-rank fan-out on top of pruning, with a
// query whose bounds cannot exclude any rank.
func BenchmarkQueryParallel(b *testing.B) {
	tr := queryBenchTrace(b)
	q, err := query.Compile("kind = send && bytes > 10")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ids := q.RunParallel(tr)
		if len(ids) == 0 {
			b.Fatal("no matches")
		}
	}
}

// --- Writer: per-event file mutex vs per-rank batched chunks --------------

// BenchmarkFileWriterSerial is the baseline write side: every rank goroutine
// funnels each record through the shared writer.
func BenchmarkFileWriterSerial(b *testing.B) {
	tr := pipelineTrace(benchRanks, benchEvents/4)
	var buf bytes.Buffer // reused across iterations: measure the writer, not buffer regrowth
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		fw, err := trace.NewFileWriter(&buf, benchRanks)
		if err != nil {
			b.Fatal(err)
		}
		writeAllRanks(b, fw.Write, tr)
		if err := fw.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedWrite batches per-rank buffers into the file in chunks,
// driving the writer the way the instrumentation layer does: each rank
// goroutine hands off runs of records through WriteBatch (the drain cadence
// of the rank-local event buffers), not one mutex acquisition per event.
func BenchmarkShardedWrite(b *testing.B) {
	tr := pipelineTrace(benchRanks, benchEvents/4)
	var buf bytes.Buffer // reused across iterations: measure the writer, not buffer regrowth
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		sw, err := trace.NewShardedWriter(&buf, benchRanks)
		if err != nil {
			b.Fatal(err)
		}
		writeAllRanksBatched(b, sw, tr)
		if err := sw.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// writeBatchSize mirrors the drain cadence of the instrumentation layer's
// rank-local event buffers (instr.emitBatch).
const writeBatchSize = 64

// writeAllRanksBatched emits every rank's records from its own goroutine in
// WriteBatch runs, the handoff pattern of a live instrumented run.
func writeAllRanksBatched(b *testing.B, sw *trace.ShardedWriter, tr *trace.Trace) {
	b.Helper()
	var wg sync.WaitGroup
	for r := 0; r < tr.NumRanks(); r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			recs := tr.Rank(r)
			for len(recs) > 0 {
				n := writeBatchSize
				if n > len(recs) {
					n = len(recs)
				}
				if err := sw.WriteBatch(r, recs[:n]); err != nil {
					b.Error(err)
					return
				}
				recs = recs[n:]
			}
		}(r)
	}
	wg.Wait()
}

// writeAllRanks emits every rank's records from its own goroutine, the
// contention pattern of a live instrumented run.
func writeAllRanks(b *testing.B, write func(*trace.Record) error, tr *trace.Trace) {
	b.Helper()
	var wg sync.WaitGroup
	for r := 0; r < tr.NumRanks(); r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			recs := tr.Rank(r)
			for i := range recs {
				if err := write(&recs[i]); err != nil {
					b.Error(err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
}

// --- Durability: sync policy cost -----------------------------------------

// BenchmarkSyncPolicy prices the durability ladder on the sharded write
// path against a real file: none (kernel buffering only), interval (fsync
// at most once per spacing), every-chunk (fsync at every sealed frame).
func BenchmarkSyncPolicy(b *testing.B) {
	tr := pipelineTrace(benchRanks, benchEvents/4)
	for _, policy := range []trace.SyncPolicy{trace.SyncNone, trace.SyncInterval, trace.SyncEveryChunk} {
		b.Run(policy.String(), func(b *testing.B) {
			path := filepath.Join(b.TempDir(), "bench.trace")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f, err := os.Create(path)
				if err != nil {
					b.Fatal(err)
				}
				sw, err := trace.NewShardedWriterOptions(f, benchRanks, 0, trace.WriterOptions{Sync: policy})
				if err != nil {
					b.Fatal(err)
				}
				writeAllRanks(b, sw.Write, tr)
				if err := sw.Close(); err != nil {
					b.Fatal(err)
				}
				if err := f.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Graph: serial vs merged parallel build -------------------------------

func BenchmarkGraphFromTraceSerial(b *testing.B) {
	tr := pipelineTrace(benchRanks, benchEvents/16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := graph.FromTrace(tr, 256)
		if len(g.Nodes()) == 0 {
			b.Fatal("empty graph")
		}
	}
}

func BenchmarkGraphFromTraceParallel(b *testing.B) {
	tr := pipelineTrace(benchRanks, benchEvents/16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := graph.FromTraceParallel(tr, 256)
		if len(g.Nodes()) == 0 {
			b.Fatal("empty graph")
		}
	}
}
