// BenchmarkStreamVsMaterialize compares the two consumption models the trace
// store offers over the same ≥100k-record file: materializing the whole
// history (store.Trace) versus bounded-memory streaming through record
// cursors (store.Records). Each side runs the same query and builds the same
// graph; besides ns/op and B/op, every sub-benchmark reports its live-heap
// working set — the bytes still reachable mid-consumption — which is the
// number that stays flat for streaming no matter how large the file grows.
//
// Run with scripts/bench.sh to capture the JSON baseline (BENCH_PR5.json).
package tracedbg_test

import (
	"io"
	"math/rand"
	"path/filepath"
	"runtime"
	"testing"

	"tracedbg/internal/graph"
	"tracedbg/internal/query"
	"tracedbg/internal/store"
	"tracedbg/internal/trace"
)

const (
	streamBenchRanks  = 8
	streamBenchEvents = 120_000
)

// liveHeap measures the reachable heap while hold's return value is alive:
// the streaming/materialized working-set comparison the benchmark reports.
func liveHeap(hold func() func()) float64 {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	release := hold()
	runtime.GC()
	runtime.ReadMemStats(&m1)
	release()
	if m1.HeapAlloc <= m0.HeapAlloc {
		return 0
	}
	return float64(m1.HeapAlloc - m0.HeapAlloc)
}

// streamBenchTrace is pipelineTrace with a single message tag: neighbouring
// arcs then share signatures the way a real exchange loop's do, so graph
// dissemination merges instead of degenerating on synthetic tag noise.
func streamBenchTrace(ranks, events int) *trace.Trace {
	rng := rand.New(rand.NewSource(97))
	files := []string{"ring.go", "lu.go", "strassen.go"}
	funcs := []string{"main", "worker", "exchange", "reduce"}
	tr := trace.New(ranks)
	clock := make([]int64, ranks)
	marker := make([]uint64, ranks)
	for i := 0; i < events; i++ {
		r := i % ranks
		start := clock[r]
		end := start + 1 + int64(rng.Intn(6))
		clock[r] = end
		marker[r]++
		kind := trace.KindCompute
		switch rng.Intn(3) {
		case 0:
			kind = trace.KindSend
		case 1:
			kind = trace.KindRecv
		}
		tr.MustAppend(trace.Record{Kind: kind, Rank: r, Marker: marker[r],
			Loc:   trace.Location{File: files[rng.Intn(len(files))], Line: 10 + rng.Intn(100), Func: funcs[rng.Intn(len(funcs))]},
			Start: start, End: end, Src: r, Dst: (r + 1) % ranks,
			Bytes: 64, MsgID: uint64(i), Name: "op"})
	}
	return tr
}

func writeStreamBenchFile(b *testing.B) string {
	b.Helper()
	tr := streamBenchTrace(streamBenchRanks, streamBenchEvents)
	path := filepath.Join(b.TempDir(), "bench.trace")
	if err := trace.WriteFileAtomic(path, tr, trace.WriterOptions{}); err != nil {
		b.Fatal(err)
	}
	return path
}

func BenchmarkStreamVsMaterialize(b *testing.B) {
	path := writeStreamBenchFile(b)
	q, err := query.Compile("kind = send && bytes > 32 && rank >= 2")
	if err != nil {
		b.Fatal(err)
	}

	b.Run("QueryMaterialize", func(b *testing.B) {
		live := liveHeap(func() func() {
			st, err := store.Open(path)
			if err != nil {
				b.Fatal(err)
			}
			tr, err := st.Trace()
			if err != nil {
				b.Fatal(err)
			}
			return func() { runtime.KeepAlive(tr) }
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st, err := store.Open(path)
			if err != nil {
				b.Fatal(err)
			}
			tr, err := st.Trace()
			if err != nil {
				b.Fatal(err)
			}
			if ids := q.Run(tr); len(ids) == 0 {
				b.Fatal("no matches")
			}
		}
		b.ReportMetric(live, "live-heap-B")
	})

	b.Run("QueryStream", func(b *testing.B) {
		// Single-pass streaming over the mmap image: one shared cursor walks
		// the page-cache mapping zero-copy (RunStreamAll), so the heap holds
		// only per-rank counters and the match list — never the file and
		// never a materialized trace. The live-heap number is the working
		// set mid-scan with the cursor halfway through the file.
		live := liveHeap(func() func() {
			st, err := store.OpenMmap(path)
			if err != nil {
				b.Fatal(err)
			}
			c, err := st.All()
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < streamBenchEvents/2; i++ {
				if _, err := c.Next(); err != nil {
					b.Fatal(err)
				}
			}
			return func() { c.Close(); st.Close() }
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st, err := store.OpenMmap(path)
			if err != nil {
				b.Fatal(err)
			}
			ids, err := q.RunStreamAll(st.NumRanks(), st.All)
			if err != nil {
				b.Fatal(err)
			}
			if len(ids) == 0 {
				b.Fatal("no matches")
			}
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(live, "live-heap-B")
	})

	b.Run("GraphMaterialize", func(b *testing.B) {
		live := liveHeap(func() func() {
			st, err := store.Open(path)
			if err != nil {
				b.Fatal(err)
			}
			tr, err := st.Trace()
			if err != nil {
				b.Fatal(err)
			}
			g := graph.FromTrace(tr, 256)
			return func() { runtime.KeepAlive(tr); runtime.KeepAlive(g) }
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st, err := store.Open(path)
			if err != nil {
				b.Fatal(err)
			}
			tr, err := st.Trace()
			if err != nil {
				b.Fatal(err)
			}
			if g := graph.FromTrace(tr, 256); g.EventCount() == 0 {
				b.Fatal("empty graph")
			}
		}
		b.ReportMetric(live, "live-heap-B")
	})

	b.Run("GraphStream", func(b *testing.B) {
		live := liveHeap(func() func() {
			st, err := store.Open(path)
			if err != nil {
				b.Fatal(err)
			}
			g, err := graph.FromStream(streamBenchRanks, 256, st.Records)
			if err != nil {
				b.Fatal(err)
			}
			return func() { runtime.KeepAlive(g) }
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st, err := store.Open(path)
			if err != nil {
				b.Fatal(err)
			}
			g, err := graph.FromStream(streamBenchRanks, 256, st.Records)
			if err != nil {
				b.Fatal(err)
			}
			if g.EventCount() == 0 {
				b.Fatal("empty graph")
			}
		}
		b.ReportMetric(live, "live-heap-B")
	})

	b.Run("MergedScan", func(b *testing.B) {
		// The ordered full-trace scan analysis and vis run on: k cursors + a
		// min-heap, never the materialized history.
		for i := 0; i < b.N; i++ {
			st, err := store.Open(path)
			if err != nil {
				b.Fatal(err)
			}
			c, err := st.Merged()
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			for {
				_, err := c.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					b.Fatal(err)
				}
				n++
			}
			c.Close()
			if n != streamBenchEvents {
				b.Fatalf("scanned %d records", n)
			}
		}
	})
}
