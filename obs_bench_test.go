// Benchmarks and integration checks for the self-observability layer. The
// acceptance target for this layer is that instrumenting the sharded-write
// hot path costs < 5% versus a no-op registry:
//
//	go test -run '^$' -bench ObsOverhead .
//
// Each sub-benchmark re-points the trace package's metric set (enabled =
// the default registry, noop = obs.Nop(), whose nil metrics reduce every
// increment to one predictable branch) and drives the same concurrent
// all-ranks write workload as BenchmarkShardedWrite.
package tracedbg_test

import (
	"bytes"
	"runtime"
	"testing"

	"tracedbg/internal/instr"
	"tracedbg/internal/mp"
	"tracedbg/internal/obs"
	"tracedbg/internal/query"
	"tracedbg/internal/trace"
)

func benchShardedWrite(b *testing.B, tr *trace.Trace) {
	b.Helper()
	// The enabled/noop comparison below resolves a few percent, so the
	// measured work must be identical and repeatable across sub-benchmarks:
	// one reused buffer (no regrowth in the timed region), a fixed
	// single-goroutine record schedule (no scheduler-placement noise from
	// per-iteration goroutine fan-out), an untimed warmup pass, and a GC
	// fence so one sub-benchmark's garbage is not collected on the other's
	// clock. ReportAllocs keeps the alloc counts in the baseline JSON —
	// a diverging allocation profile between enabled and noop is the first
	// thing to check when the ratio drifts.
	var buf bytes.Buffer
	iter := func() {
		buf.Reset()
		sw, err := trace.NewShardedWriter(&buf, benchRanks)
		if err != nil {
			b.Fatal(err)
		}
		for r := 0; r < tr.NumRanks(); r++ {
			recs := tr.Rank(r)
			for i := range recs {
				if err := sw.Write(&recs[i]); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := sw.Close(); err != nil {
			b.Fatal(err)
		}
	}
	iter()
	runtime.GC()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iter()
	}
}

// BenchmarkObsOverhead measures the cost of pipeline instrumentation on the
// ShardedWriter hot path. Compare the enabled and noop ns/op: the layer's
// acceptance criterion is enabled <= 1.05x noop, pinned by scripts/bench.sh
// on every timed baseline run. Since metrics publish only at chunk-drain
// points, the per-record path is identical in both modes and the measured
// gap is the drain-point accounting alone.
func BenchmarkObsOverhead(b *testing.B) {
	tr := pipelineTrace(benchRanks, benchEvents/4)
	b.Run("enabled", func(b *testing.B) {
		trace.SetObsRegistry(obs.Default())
		defer trace.SetObsRegistry(obs.Default())
		benchShardedWrite(b, tr)
	})
	b.Run("noop", func(b *testing.B) {
		trace.SetObsRegistry(obs.Nop())
		defer trace.SetObsRegistry(obs.Default())
		benchShardedWrite(b, tr)
	})
}

// TestObsPipelineCoverage runs a small instrumented workload end to end and
// checks that every pipeline stage left its fingerprints in the default
// registry — the counters the /metrics endpoint and `tanalyze -stats` expose.
func TestObsPipelineCoverage(t *testing.T) {
	const ranks = 4
	snapBefore := obs.Default().Snapshot()
	before := func(name string) float64 {
		m, _ := snapBefore.Get(name)
		return m.Value
	}

	// instr + mp: record a ring exchange through the monitor.
	sink := instr.NewMemorySink(ranks)
	inst := instr.New(ranks, sink, instr.LevelAll)
	err := inst.Run(mp.Config{NumRanks: ranks}, func(c *instr.Ctx) {
		me, n := c.Rank(), c.Size()
		c.Send((me+1)%n, 0, []byte{byte(me)})
		if _, st := c.Recv(mp.AnySource, 0); st.Bytes != 1 {
			t.Errorf("rank %d: bad payload", me)
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	// trace: write through the sharded writer and load back in parallel.
	var buf bytes.Buffer
	sw, err := trace.NewShardedWriter(&buf, ranks)
	if err != nil {
		t.Fatal(err)
	}
	rec := sink.Trace()
	for r := 0; r < rec.NumRanks(); r++ {
		recs := rec.Rank(r)
		for i := range recs {
			if err := sw.Write(&recs[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := trace.LoadParallel(buf.Bytes()); err != nil {
		t.Fatal(err)
	}

	// query: one pruned run through a bounded cache.
	cache := query.NewCacheSize(2)
	q, err := cache.Compile("kind = send && rank = 1")
	if err != nil {
		t.Fatal(err)
	}
	if ids := q.Run(sink.Trace()); len(ids) != 1 {
		t.Fatalf("query found %d sends from rank 1, want 1", len(ids))
	}

	snap := obs.Default().Snapshot()
	for _, name := range []string{
		"tracedbg_instr_ticks_total",
		"tracedbg_instr_records_emitted_total",
		"tracedbg_mp_messages_total",
		"tracedbg_mp_wildcard_recvs_total",
		"tracedbg_trace_records_written_total",
		"tracedbg_trace_chunk_flushes_total",
		"tracedbg_query_runs_total",
		"tracedbg_query_ranks_pruned_total",
		"tracedbg_query_cache_misses_total",
	} {
		m, ok := snap.Get(name)
		if !ok {
			t.Errorf("metric %s not registered", name)
			continue
		}
		if m.Value <= before(name) {
			t.Errorf("metric %s did not advance (%v -> %v)", name, before(name), m.Value)
		}
	}
}
