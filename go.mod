module tracedbg

go 1.22
