#!/bin/sh
# Forbid the legacy query executors outside the package that owns them.
# Run / RunParallel / RunStream / RunStreamAll are deprecated shims kept for
# one release; every other consumer must go through the planner —
# q.Plan(query.NewStoreSource(st)).Run() and friends — so that persistent
# index negotiation, rank pruning, and the -explain surface stay in one
# place. A caller that bypasses the planner silently loses indexed seeks.
#
# The check is two-step: only files that import tracedbg/internal/query are
# scanned, then the executor call shapes are grepped. `q.Run(` is matched by
# the conventional receiver name (a bare `.Run(` would trip over unrelated
# Run methods — sessions, instrumented targets); the RunParallel/RunStream*
# names are unambiguous and matched on any receiver. Test files may still
# call the shims: the differential suite pins shim/planner parity.
#
# Usage: scripts/lint-queries.sh   (exit 1 and a file:line listing on hits)
set -eu

cd "$(dirname "$0")/.."

pattern='(^|[^a-zA-Z0-9_])q\.Run\(|\.RunParallel\(|\.RunStream(All)?\('

hits=""
for f in $(grep -rl 'tracedbg/internal/query' --include='*.go' \
    --exclude='*_test.go' cmd examples internal ./*.go 2>/dev/null \
    | grep -v '^internal/query/' || true); do
    h="$(grep -En "$pattern" "$f" | sed "s|^|$f:|" || true)"
    [ -n "$h" ] && hits="$hits$h
"
done

if [ -n "$hits" ]; then
    echo "lint-queries: legacy query executors used outside internal/query:" >&2
    printf '%s' "$hits" >&2
    echo "lint-queries: run queries through the planner (q.Plan(query.New...Source(...)).Run()) instead" >&2
    exit 1
fi
echo "lint-queries: ok"
