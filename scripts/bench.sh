#!/bin/sh
# Run the sharded-pipeline benchmarks and record a JSON baseline.
#
# Usage:
#   scripts/bench.sh [-profile] [output.json]
#
# Writes one JSON object per benchmark: name, iterations, ns/op, and any
# extra metrics (MB/s, B/op, allocs/op), plus an "obs_snapshot" key holding
# the self-observability metrics of a representative tanalyze run — so each
# baseline records not just how fast the pipeline was but how much work
# (records written, chunks flushed, ranks pruned, ...) the numbers represent.
# The default output is BENCH_PR10.json at the repo root — the checked-in
# baseline for the persistent-index PR (sidecar indexes, query planner,
# cold indexed queries); regenerate it when the pipeline changes materially
# and mention the delta in the PR.
#
# With -profile, CPU and allocation profiles of the write, load, and query
# benchmark groups are additionally captured into bench-profiles/ (one
# .cpu.pprof / .mem.pprof / .test pair per group, ready for `go tool pprof`).
#
# On timed runs (BENCHTIME not 1x) two acceptance criteria are re-pinned:
# ObsOverhead/enabled must stay <= 1.05x ObsOverhead/noop, and the cold
# indexed query (QueryCold/Indexed) must beat the sidecar-less scan
# (QueryCold/Scan) by at least 5x, or the script fails.
set -eu

cd "$(dirname "$0")/.."

profile=0
if [ "${1:-}" = "-profile" ]; then
    profile=1
    shift
fi
out="${1:-BENCH_PR10.json}"
benchtime="${BENCHTIME:-1s}"

raw="$(mktemp)"
snap="$(mktemp)"
trap 'rm -f "$raw" "$snap"' EXIT

go test -run '^$' \
    -bench 'SerialLoad|ParallelLoad|QuerySerial|QueryIndexed|QueryParallel|QueryCold|FileWriterSerial|ShardedWrite|SyncPolicy|GraphFromTrace|MergedOrder|ObsOverhead|StreamVsMaterialize|DaemonIngest|TailLatency' \
    -benchtime "$benchtime" -benchmem . | tee "$raw"

# The scrub CRC walk lives with the store package; append it to the same
# raw stream so the baseline records the background-scrub cost per byte.
go test -run '^$' -bench 'Scrub' \
    -benchtime "$benchtime" -benchmem ./internal/store | tee -a "$raw"

# Pin the obs-layer overhead criterion on timed runs: the single-iteration
# CI smoke (BENCHTIME=1x) is too noisy to resolve 5%.
if [ "$benchtime" != "1x" ]; then
    awk '
    /^BenchmarkObsOverhead\/enabled/ { enabled = $3 }
    /^BenchmarkObsOverhead\/noop/ { noop = $3 }
    END {
        if (enabled == "" || noop == "" || noop == 0) {
            print "bench.sh: ObsOverhead results missing from run" > "/dev/stderr"
            exit 1
        }
        ratio = enabled / noop
        printf "obs overhead: enabled/noop = %.4f (limit 1.05)\n", ratio
        if (ratio > 1.05) {
            printf "bench.sh: obs overhead ratio %.4f exceeds 1.05\n", ratio > "/dev/stderr"
            exit 1
        }
    }' "$raw"

    awk '
    /^BenchmarkQueryCold\/Indexed/ { indexed = $3 }
    /^BenchmarkQueryCold\/Scan/ { scan = $3 }
    END {
        if (indexed == "" || scan == "" || indexed == 0) {
            print "bench.sh: QueryCold results missing from run" > "/dev/stderr"
            exit 1
        }
        speedup = scan / indexed
        printf "cold indexed query: scan/indexed = %.2fx (floor 5x)\n", speedup
        if (speedup < 5) {
            printf "bench.sh: cold indexed speedup %.2fx below the 5x floor\n", speedup > "/dev/stderr"
            exit 1
        }
    }' "$raw"
fi

# Capture the obs snapshot of an in-process record + analyze pass: the
# counters land in the same JSON as the timings they contextualize.
go run ./cmd/tanalyze -app strassen -ranks 8 -size 16 -stats-json "$snap" > /dev/null

awk '
BEGIN { print "{"; first = 1 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    if (!first) printf ",\n"
    first = 0
    printf "  \"%s\": {\"iterations\": %s, \"ns_per_op\": %s", name, $2, $3
    for (i = 6; i <= NF; i += 2) {
        unit = $(i)
        gsub(/\//, "_per_", unit)
        printf ", \"%s\": %s", unit, $(i - 1)
    }
    printf "}"
}
/^goos:/ { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/ { cpu = substr($0, 6); sub(/^[ \t]+/, "", cpu) }
END {
    if (!first) printf ",\n"
    printf "  \"_meta\": {\"goos\": \"%s\", \"goarch\": \"%s\", \"cpu\": \"%s\"},\n",
        goos, goarch, cpu
    printf "  \"obs_snapshot\":\n"
}' "$raw" > "$out"

sed 's/^/  /' "$snap" >> "$out"
echo "}" >> "$out"

echo "wrote $out"

# Optional profile capture: one CPU + allocation profile per hot-path group,
# runnable afterwards with e.g.
#   go tool pprof bench-profiles/write.test bench-profiles/write.cpu.pprof
if [ "$profile" = 1 ]; then
    mkdir -p bench-profiles
    for group in write load query; do
        case "$group" in
        write) pat='FileWriterSerial|ShardedWrite' ;;
        load)  pat='SerialLoad|ParallelLoad' ;;
        query) pat='QueryIndexed|StreamVsMaterialize/Query' ;;
        esac
        go test -run '^$' -bench "$pat" -benchtime "$benchtime" \
            -cpuprofile "bench-profiles/$group.cpu.pprof" \
            -memprofile "bench-profiles/$group.mem.pprof" \
            -o "bench-profiles/$group.test" . > /dev/null
    done
    echo "wrote bench-profiles/{write,load,query}.{cpu,mem}.pprof"
fi
