#!/bin/sh
# Run the sharded-pipeline benchmarks and record a JSON baseline.
#
# Usage:
#   scripts/bench.sh [output.json]
#
# Writes one JSON object per benchmark: name, iterations, ns/op, and any
# extra metrics (MB/s, B/op, allocs/op). The default output is BENCH_PR2.json
# at the repo root — the checked-in baseline for the perf PR; regenerate it
# when the pipeline changes materially and mention the delta in the PR.
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_PR2.json}"
benchtime="${BENCHTIME:-1s}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' \
    -bench 'SerialLoad|ParallelLoad|QuerySerial|QueryIndexed|QueryParallel|FileWriterSerial|ShardedWrite|GraphFromTrace|MergedOrder' \
    -benchtime "$benchtime" -benchmem . | tee "$raw"

awk '
BEGIN { print "{"; first = 1 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    if (!first) printf ",\n"
    first = 0
    printf "  \"%s\": {\"iterations\": %s, \"ns_per_op\": %s", name, $2, $3
    for (i = 6; i <= NF; i += 2) {
        unit = $(i)
        gsub(/\//, "_per_", unit)
        printf ", \"%s\": %s", unit, $(i - 1)
    }
    printf "}"
}
/^goos:/ { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/ { cpu = substr($0, 6); sub(/^[ \t]+/, "", cpu) }
END {
    if (!first) printf ",\n"
    printf "  \"_meta\": {\"goos\": \"%s\", \"goarch\": \"%s\", \"cpu\": \"%s\"}\n",
        goos, goarch, cpu
    print "}"
}' "$raw" > "$out"

echo "wrote $out"
