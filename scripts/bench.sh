#!/bin/sh
# Run the sharded-pipeline benchmarks and record a JSON baseline.
#
# Usage:
#   scripts/bench.sh [output.json]
#
# Writes one JSON object per benchmark: name, iterations, ns/op, and any
# extra metrics (MB/s, B/op, allocs/op), plus an "obs_snapshot" key holding
# the self-observability metrics of a representative tanalyze run — so each
# baseline records not just how fast the pipeline was but how much work
# (records written, chunks flushed, ranks pruned, ...) the numbers represent.
# The default output is BENCH_PR6.json at the repo root — the checked-in
# baseline for the multi-session collector daemon PR (single- and
# multi-session ingest throughput included); regenerate it when the pipeline
# changes materially and mention the delta in the PR.
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_PR6.json}"
benchtime="${BENCHTIME:-1s}"

raw="$(mktemp)"
snap="$(mktemp)"
trap 'rm -f "$raw" "$snap"' EXIT

go test -run '^$' \
    -bench 'SerialLoad|ParallelLoad|QuerySerial|QueryIndexed|QueryParallel|FileWriterSerial|ShardedWrite|SyncPolicy|GraphFromTrace|MergedOrder|ObsOverhead|StreamVsMaterialize|DaemonIngest' \
    -benchtime "$benchtime" -benchmem . | tee "$raw"

# Capture the obs snapshot of an in-process record + analyze pass: the
# counters land in the same JSON as the timings they contextualize.
go run ./cmd/tanalyze -app strassen -ranks 8 -size 16 -stats-json "$snap" > /dev/null

awk '
BEGIN { print "{"; first = 1 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    if (!first) printf ",\n"
    first = 0
    printf "  \"%s\": {\"iterations\": %s, \"ns_per_op\": %s", name, $2, $3
    for (i = 6; i <= NF; i += 2) {
        unit = $(i)
        gsub(/\//, "_per_", unit)
        printf ", \"%s\": %s", unit, $(i - 1)
    }
    printf "}"
}
/^goos:/ { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/ { cpu = substr($0, 6); sub(/^[ \t]+/, "", cpu) }
END {
    if (!first) printf ",\n"
    printf "  \"_meta\": {\"goos\": \"%s\", \"goarch\": \"%s\", \"cpu\": \"%s\"},\n",
        goos, goarch, cpu
    printf "  \"obs_snapshot\":\n"
}' "$raw" > "$out"

sed 's/^/  /' "$snap" >> "$out"
echo "}" >> "$out"

echo "wrote $out"
