#!/bin/sh
# Compare a fresh benchmark run against a checked-in baseline and fail on
# regressions in the gated hot paths.
#
# Usage:
#   scripts/bench-compare.sh baseline.json current.json [threshold-pct]
#
# Gated benchmarks (ns/op): the sharded write path, the parallel loader, and
# daemon ingest. A gated benchmark regressing by more than threshold-pct
# (default 10) fails the script; improvements and missing entries (a renamed
# benchmark must update its baseline) are reported but only missing entries
# fail. Override the gate for a known-noisy or intentionally slower commit
# by putting "[bench-skip]" in the commit message — CI checks the tag before
# invoking this script.
set -eu

if [ $# -lt 2 ]; then
    echo "usage: scripts/bench-compare.sh baseline.json current.json [threshold-pct]" >&2
    exit 2
fi
base="$1"
cur="$2"
threshold="${3:-10}"

# ns_per_op extractor: tolerant of the single-line and pretty-printed JSON
# layouts bench.sh produces.
ns_of() {
    tr ',' '\n' < "$1" | tr -d ' "' | awk -F: -v key="$2" '
        $0 ~ key { grab = 1 }
        grab && $1 == "ns_per_op" { print $2; exit }
    '
}

fail=0
for name in \
    'BenchmarkShardedWrite' \
    'BenchmarkParallelLoad' \
    'BenchmarkDaemonIngest/SingleSession' \
    'BenchmarkDaemonIngest/MultiSession8'
do
    b="$(ns_of "$base" "$name")"
    c="$(ns_of "$cur" "$name")"
    if [ -z "$b" ] || [ -z "$c" ]; then
        echo "bench-compare: $name missing (baseline='$b' current='$c')" >&2
        fail=1
        continue
    fi
    verdict="$(awk -v b="$b" -v c="$c" -v t="$threshold" -v n="$name" 'BEGIN {
        delta = (c - b) / b * 100
        printf "%-45s %14.0f -> %14.0f ns/op  %+7.1f%%\n", n, b, c, delta
        exit (delta > t) ? 1 : 0
    }')" || { echo "$verdict  REGRESSION (> ${threshold}%)"; fail=1; continue; }
    echo "$verdict"
done

if [ "$fail" = 1 ]; then
    echo "bench-compare: gated benchmark regressed beyond ${threshold}% (tag the commit [bench-skip] to override)" >&2
    exit 1
fi
echo "bench-compare: all gated benchmarks within ${threshold}% of baseline"
