// Command ioerrlint flags discarded error returns of durability-critical
// file operations in the storage packages. A dropped Close/Sync/Rename
// error is how fsync failures and full disks turn into silent data loss —
// the I/O fault injector (internal/iofault) exposes every one of these at
// test time, and this lint keeps new ones from landing.
//
// Usage:
//
//	go run ./scripts/ioerrlint [pkg-dir ...]
//
// With no arguments it scans the packages that own durability:
// internal/trace, internal/store, internal/remote. Test files are skipped
// (tests discard errors deliberately all the time). A finding is suppressed
// by annotating the statement with a trailing "//nolint:ioerr // <why>"
// comment, which doubles as documentation that the drop is considered.
//
// The check is type-aware (export data via `go list -export`), so calls
// that return no error — http.Flusher.Flush, sync primitives — are never
// flagged. It is also deliberately narrow: only statement-level calls whose
// entire result list is discarded, and only the method names below.
// Deferred calls are exempt — `defer f.Close()` on a read path is idiomatic
// and harmless; write paths in this repo close explicitly and check.
package main

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// flagged are the operations whose error return carries durability: losing
// it can lose acknowledged data.
var flagged = map[string]bool{
	"Close":   true,
	"Sync":    true,
	"SyncDir": true,
	"Flush":   true,
	"Rename":  true,
	"Remove":  true,
}

var defaultDirs = []string{"internal/trace", "internal/store", "internal/remote"}

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = defaultDirs
	}
	exports, err := exportData(dirs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ioerrlint: %v\n", err)
		os.Exit(2)
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %s", path)
		}
		return os.Open(exp)
	})

	var findings []string
	for _, dir := range dirs {
		fs, err := checkPackage(fset, imp, dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ioerrlint: %s: %v\n", dir, err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
		}
		fmt.Fprintf(os.Stderr, "ioerrlint: %d discarded I/O error return(s); handle the error or annotate //nolint:ioerr with a reason\n", len(findings))
		os.Exit(1)
	}
	fmt.Println("ioerrlint: ok")
}

// exportData maps every dependency's import path to its compiled export
// data file, letting the gc importer resolve both stdlib and this module's
// own packages without a source-level type-check of the world.
func exportData(dirs []string) (map[string]string, error) {
	args := []string{"list", "-deps", "-export", "-f", "{{.ImportPath}}\t{{.Export}}"}
	for _, d := range dirs {
		args = append(args, "./"+filepath.ToSlash(d))
	}
	var out, errb bytes.Buffer
	cmd := exec.Command("go", args...)
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list -export: %v\n%s", err, errb.String())
	}
	exports := make(map[string]string)
	for _, line := range strings.Split(out.String(), "\n") {
		path, exp, ok := strings.Cut(line, "\t")
		if ok && exp != "" {
			exports[path] = exp
		}
	}
	return exports, nil
}

func checkPackage(fset *token.FileSet, imp types.Importer, dir string) ([]string, error) {
	// Ask the go tool for the file set so build constraints (mmap_unix.go
	// vs its stub) resolve exactly as they do in a real build.
	var out, errb bytes.Buffer
	cmd := exec.Command("go", "list", "-f", "{{range .GoFiles}}{{.}}\n{{end}}", "./"+filepath.ToSlash(dir))
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, errb.String())
	}
	names := strings.Fields(out.String())
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	info := &types.Info{Types: make(map[ast.Expr]types.TypeAndValue)}
	conf := types.Config{Importer: imp}
	if _, err := conf.Check(dir, fset, files, info); err != nil {
		return nil, fmt.Errorf("type check: %v", err)
	}

	var findings []string
	for _, f := range files {
		nolint := make(map[int]bool)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.Contains(c.Text, "nolint:ioerr") {
					nolint[fset.Position(c.Pos()).Line] = true
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			if !flagged[name] || !returnsError(info, call) {
				return true
			}
			pos := fset.Position(stmt.Pos())
			if nolint[pos.Line] {
				return true
			}
			findings = append(findings,
				fmt.Sprintf("%s:%d: result of %s() discarded (durability error lost)", pos.Filename, pos.Line, name))
			return true
		})
	}
	return findings, nil
}

// returnsError reports whether any result of the call has type error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	sig, ok := info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), types.Universe.Lookup("error").Type()) {
			return true
		}
	}
	return false
}

func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fn.Sel.Name
	case *ast.Ident:
		return fn.Name
	}
	return ""
}
