#!/bin/sh
# Forbid direct use of the legacy trace loaders outside the two packages
# that own them. Every other consumer must open traces through store.Open,
# which sniffs the format (v2, v3, segment manifest), negotiates salvage /
# partial / indexed loading, and exposes streaming cursors — eight loader
# entry points collapsed into one.
#
# The legacy loaders stay exported for one release (pinned by the
# differential tests in internal/store), so _test.go files may still call
# them as references; production code may not.
#
# Usage: scripts/lint-loaders.sh   (exit 1 and a file:line listing on hits)
set -eu

cd "$(dirname "$0")/.."

pattern='trace\.(ReadAll(Partial|Indexed|Salvage)?|LoadParallel(Partial|Salvage|SalvageReport|Indexed)?|LoadFileParallel|LoadSegmented|SalvageBytes|SalvageFile)\('

# Documented exception: the daemon's crash-recovery salvage keeps the legacy
# strict clean-prefix scanner as a backstop against store ModePartial semantics
# ever drifting toward salvage (records surviving beyond quarantined spans
# must not count into the resume point) — see the comment at the call site.
allow='^internal/remote/daemon\.go:[0-9]+:.*trace\.ReadAllPartial\('

hits="$(grep -rEn "$pattern" --include='*.go' --exclude='*_test.go' \
    cmd examples internal ./*.go 2>/dev/null \
    | grep -v '^internal/trace/' | grep -v '^internal/store/' \
    | grep -Ev "$allow" || true)"

if [ -n "$hits" ]; then
    echo "lint-loaders: legacy trace loaders used outside internal/trace and internal/store:" >&2
    echo "$hits" >&2
    echo "lint-loaders: open traces through internal/store (store.Open / store.OpenBytes) instead" >&2
    exit 1
fi
echo "lint-loaders: ok"
