// Ablation benchmarks for the design choices DESIGN.md calls out:
// dissemination arc-merging, checkpointed replay, instrumentation strategy
// cost, and indexed trace-file navigation.
package tracedbg_test

import (
	"bytes"
	"fmt"
	"testing"

	"tracedbg/internal/apps"
	"tracedbg/internal/graph"
	"tracedbg/internal/instr"
	"tracedbg/internal/mp"
	"tracedbg/internal/replay"
	"tracedbg/internal/trace"
)

// BenchmarkAblationDissemination compares trace-graph sizes across merge
// limits: the arc count must stay bounded while events grow, at the cost of
// merged (lower resolution) arcs.
func BenchmarkAblationDissemination(b *testing.B) {
	// One function sending many messages over one channel: worst case for
	// parallel arcs.
	mkTrace := func(events int) *trace.Trace {
		tr := trace.New(2)
		tr.MustAppend(trace.Record{Kind: trace.KindFuncEntry, Rank: 0, Marker: 1, Name: "main"})
		for i := 0; i < events; i++ {
			tr.MustAppend(trace.Record{Kind: trace.KindSend, Rank: 0, Marker: uint64(2 + i),
				Start: int64(i + 1), End: int64(i + 1), Src: 0, Dst: 1, MsgID: uint64(i + 1)})
		}
		return tr
	}
	const events = 20000
	tr := mkTrace(events)
	for _, limit := range []int{0, 64, 256, 1024} {
		b.Run(fmt.Sprintf("limit=%d", limit), func(b *testing.B) {
			var arcs int
			for i := 0; i < b.N; i++ {
				g := graph.FromTrace(tr, limit)
				arcs = g.ArcCount()
				if g.EventCount() != events+1 {
					b.Fatalf("events lost: %d", g.EventCount())
				}
			}
			b.ReportMetric(float64(arcs), "arcs")
		})
	}
}

// BenchmarkAblationCheckpoint compares replaying an iterative program to a
// late target from scratch vs resuming from the logarithmic checkpoint
// backlog (the paper's §6 proposal).
func BenchmarkAblationCheckpoint(b *testing.B) {
	const ranks, iters, every, target = 4, 400, 10, 350
	store := replay.NewCheckpointStore()
	cfg := apps.JacobiConfig{Cells: 128, Iters: iters, Seed: 9, CheckpointEvery: every, Store: store}
	in := instr.New(ranks, instr.NullSink{}, instr.LevelAll)
	if err := in.Run(mp.Config{NumRanks: ranks}, apps.Jacobi(cfg, nil)); err != nil {
		b.Fatal(err)
	}
	var best *replay.Snapshot
	for _, s := range store.Snapshots() {
		if s.Iter <= target {
			c := s
			best = &c
		}
	}
	if best == nil {
		b.Fatal("no snapshot")
	}
	b.ReportMetric(float64(store.Len()), "snapshots-retained")

	b.Run("from-scratch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			in := instr.New(ranks, instr.NullSink{}, instr.LevelAll)
			body := apps.Jacobi(apps.JacobiConfig{Cells: 128, Iters: target, Seed: 9}, nil)
			if err := in.Run(mp.Config{NumRanks: ranks}, body); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(target), "iterations-replayed")
	})
	b.Run("from-checkpoint", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			in := instr.New(ranks, instr.NullSink{}, instr.LevelAll)
			body := apps.Jacobi(apps.JacobiConfig{Cells: 128, Iters: target, Seed: 9, Resume: best}, nil)
			if err := in.Run(mp.Config{NumRanks: ranks}, body); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(target-(best.Iter+1)), "iterations-replayed")
	})
}

// BenchmarkAblationStrategies compares the three acquisition strategies'
// cost on the same workload (paper §2: "distinct levels of user
// convenience, history detail, and execution overhead").
func BenchmarkAblationStrategies(b *testing.B) {
	run := func(b *testing.B, level instr.Level) {
		var events int
		for i := 0; i < b.N; i++ {
			sink := instr.NewMemorySink(4)
			in := instr.New(4, sink, level)
			if err := in.Run(mp.Config{NumRanks: 4}, apps.LU(apps.LUConfig{Cols: 16, Rows: 8, Iters: 4, Seed: 3}, nil)); err != nil {
				b.Fatal(err)
			}
			events = sink.Trace().Len()
		}
		b.ReportMetric(float64(events), "events")
	}
	b.Run("uninstrumented", func(b *testing.B) { run(b, 0) })
	b.Run("wrappers", func(b *testing.B) { run(b, instr.LevelWrappers) })
	b.Run("functions", func(b *testing.B) { run(b, instr.LevelWrappers|instr.LevelFunctions) })
	b.Run("constructs", func(b *testing.B) { run(b, instr.LevelAll) })
}

// BenchmarkAblationNavigation compares locating a marker range in a large
// trace file through the navigation index vs a linear rescan (paper §4.3).
func BenchmarkAblationNavigation(b *testing.B) {
	// Build a sizable trace file.
	sink := instr.NewMemorySink(4)
	in := instr.New(4, sink, instr.LevelAll)
	if err := in.Run(mp.Config{NumRanks: 4}, apps.LU(apps.LUConfig{Cols: 8, Rows: 4, Iters: 100, Seed: 3}, nil)); err != nil {
		b.Fatal(err)
	}
	tr := sink.Trace()
	var buf bytes.Buffer
	if err := trace.WriteAll(&buf, tr); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	ix, err := trace.BuildIndex(bytes.NewReader(data), 64)
	if err != nil {
		b.Fatal(err)
	}
	n := tr.RankLen(2)
	from := tr.Rank(2)[n-20].Marker
	to := tr.Rank(2)[n-1].Marker
	b.ReportMetric(float64(tr.Len()), "events")
	b.ReportMetric(float64(len(data)), "file-bytes")

	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			recs, err := ix.RescanMarkers(bytes.NewReader(data), 2, from, to)
			if err != nil || len(recs) != 20 {
				b.Fatalf("recs=%d err=%v", len(recs), err)
			}
		}
	})
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			recs, err := trace.LinearScanMarkers(bytes.NewReader(data), 2, from, to)
			if err != nil || len(recs) != 20 {
				b.Fatalf("recs=%d err=%v", len(recs), err)
			}
		}
	})
}
