// Benchmarks regenerating the paper's evaluation: Table 1 and Figures 1-9
// (one benchmark per exhibit), plus ablations for the design choices
// DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem .
//
// Absolute numbers differ from the 1998 SGI testbed; the shape each bench
// reports (custom metrics) is the reproduction target. See EXPERIMENTS.md.
package tracedbg_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"tracedbg"
	"tracedbg/internal/apps"
	"tracedbg/internal/graph"
	"tracedbg/internal/instr"
	"tracedbg/internal/mp"
	"tracedbg/internal/trace"
	"tracedbg/internal/vis"
)

const benchTimeout = 60 * time.Second

// --- Table 1: instrumentation overhead ---------------------------------

func benchTable1Strassen(b *testing.B, n int) {
	b.Helper()
	m, err := apps.MeasureStrassen(n, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := instr.New(4, instr.NullSink{}, instr.LevelFunctions)
		if err := in.Run(mp.Config{NumRanks: 4}, apps.Strassen(apps.StrassenConfig{N: n, Seed: 7}, nil)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(m.Slowdown, "slowdown")
	b.ReportMetric(float64(m.Calls), "calls")
}

// BenchmarkTable1StrassenSmall is the 96x128x112 row, scaled (coarse-grained
// work: instrumentation should be nearly free).
func BenchmarkTable1StrassenSmall(b *testing.B) { benchTable1Strassen(b, 64) }

// BenchmarkTable1StrassenLarge is the 192x256x224 row, scaled.
func BenchmarkTable1StrassenLarge(b *testing.B) { benchTable1Strassen(b, 128) }

func benchTable1Fib(b *testing.B, n int) {
	b.Helper()
	m, err := apps.MeasureFib(n, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := instr.New(1, instr.NullSink{}, instr.LevelFunctions)
		if err := in.Run(mp.Config{NumRanks: 1}, apps.Fib(n, nil)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(m.Slowdown, "slowdown")
	b.ReportMetric(float64(m.Calls), "calls")
	b.ReportMetric(float64(m.Instr-m.Uninstr)/float64(m.Calls), "monitor-ns/call")
}

// BenchmarkTable1Fib24 is the fib(34) row, scaled (call-dominated worst
// case for the UserMonitor strategy).
func BenchmarkTable1Fib24(b *testing.B) { benchTable1Fib(b, 24) }

// BenchmarkTable1Fib26 is the fib(35) row, scaled.
func BenchmarkTable1Fib26(b *testing.B) { benchTable1Fib(b, 26) }

// --- Figure 1: the history pipeline ------------------------------------

// BenchmarkFigure1Pipeline measures the full acquisition pipeline of
// Figure 1: instrumented run -> monitor -> trace file (flush on demand) ->
// debugger reads it back.
func BenchmarkFigure1Pipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		fs, err := instr.NewFileSink(&buf, 4)
		if err != nil {
			b.Fatal(err)
		}
		in := instr.New(4, fs, instr.LevelAll)
		if err := in.Run(mp.Config{NumRanks: 4}, apps.Ring(5, nil)); err != nil {
			b.Fatal(err)
		}
		if err := fs.Flush(); err != nil {
			b.Fatal(err)
		}
		tr, err := trace.ReadAll(bytes.NewReader(buf.Bytes()))
		if err != nil {
			b.Fatal(err)
		}
		if err := tr.Validate(); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(tr.Len()), "events")
			b.ReportMetric(float64(buf.Len())/float64(tr.Len()), "bytes/event")
		}
	}
}

// --- Figures 2 and 3: time-space displays ------------------------------

func recordedRing(b *testing.B) *trace.Trace {
	b.Helper()
	sink := instr.NewMemorySink(4)
	in := instr.New(4, sink, instr.LevelAll)
	if err := in.Run(mp.Config{NumRanks: 4}, apps.Ring(6, nil)); err != nil {
		b.Fatal(err)
	}
	return sink.Trace()
}

// BenchmarkFigure2NTV renders the whole-trace (NTV-style) display with a
// stopline indicator, as in Figure 2.
func BenchmarkFigure2NTV(b *testing.B) {
	tr := recordedRing(b)
	stop := tr.EndTime() / 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svg := vis.SVG(tr, vis.Options{Messages: true, Stopline: stop, Title: "Figure 2"})
		if !strings.Contains(svg, "stopline") {
			b.Fatal("stopline missing")
		}
	}
}

// BenchmarkFigure3VK renders the animated windowed (VK-style) view of the
// correct 8-process Strassen run of Figure 3 and checks its message
// structure (each worker gets 2 operands and returns 1 result).
func BenchmarkFigure3VK(b *testing.B) {
	_, tr, err := apps.RunStrassen(apps.StrassenConfig{N: 16, Seed: 42}, 8, instr.LevelAll)
	if err != nil {
		b.Fatal(err)
	}
	st := tr.Summarize()
	if st.Sends != 21 || st.Recvs != 21 {
		b.Fatalf("figure 3 message structure: %+v", st)
	}
	b.ReportMetric(float64(st.Sends), "messages")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frames := vis.VKFrames(tr, 0, 0, vis.Options{Width: 100, Messages: false, Title: "Figure 3"})
		if len(frames) == 0 {
			b.Fatal("no frames")
		}
		if i == 0 {
			b.ReportMetric(float64(len(frames)), "frames")
		}
	}
}

// --- Figure 4: communication graph --------------------------------------

// BenchmarkFigure4CommGraph builds the Strassen communication graph and
// its DOT rendering (nodes = matched messages, arcs = causality).
func BenchmarkFigure4CommGraph(b *testing.B) {
	_, tr, err := apps.RunStrassen(apps.StrassenConfig{N: 16, Seed: 42}, 8, instr.LevelAll)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cg := graph.BuildCommGraph(tr)
		if len(cg.Nodes) != 21 {
			b.Fatalf("comm graph nodes = %d, want 21", len(cg.Nodes))
		}
		dot := cg.DOT()
		if len(dot) == 0 {
			b.Fatal("empty dot")
		}
		if i == 0 {
			b.ReportMetric(float64(len(cg.Nodes)), "msg-nodes")
			b.ReportMetric(float64(len(cg.Arcs)), "causality-arcs")
		}
	}
}

// --- Figures 5-7: the buggy Strassen walkthrough ------------------------

// BenchmarkFigure5Blocked records the buggy run: the runtime detects the
// global stall with processes 0 and 7 blocked in receives.
func BenchmarkFigure5Blocked(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, tr, err := apps.RunStrassen(apps.StrassenConfig{N: 16, Seed: 42, Buggy: true}, 8, instr.LevelAll)
		var stall *mp.StallError
		if !errors.As(err, &stall) {
			b.Fatalf("expected stall, got %v", err)
		}
		if len(stall.Blocked) != 2 || stall.Blocked[0].Rank != 0 || stall.Blocked[1].Rank != 7 {
			b.Fatalf("blocked = %+v", stall.Blocked)
		}
		if i == 0 {
			b.ReportMetric(float64(len(stall.Blocked)), "blocked-ranks")
			b.ReportMetric(float64(len(tr.OfKind(trace.KindBlocked))), "blocked-records")
		}
	}
}

// BenchmarkFigure6Zoom runs the analyses behind the Figure 6 observation:
// the zoomed display plus the traffic report that pinpoints process 7's
// missing second message.
func BenchmarkFigure6Zoom(b *testing.B) {
	_, tr, err := apps.RunStrassen(apps.StrassenConfig{N: 16, Seed: 42, Buggy: true}, 8, instr.LevelAll)
	var stall *mp.StallError
	if !errors.As(err, &stall) {
		b.Fatalf("expected stall, got %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := analyzeTraffic(tr)
		if !rep {
			b.Fatal("rank 7 anomaly not found")
		}
		// Zoomed view around the send bundle.
		zoom := vis.ASCII(tr.Window(0, tr.EndTime()/2), vis.Options{Width: 100, Messages: true})
		if len(zoom) == 0 {
			b.Fatal("empty zoom")
		}
	}
}

func analyzeTraffic(tr *trace.Trace) bool {
	st := tr.Summarize()
	return st.PerRankMsgs[7] == 1 && st.PerRankMsgs[1] == 2
}

// BenchmarkFigure7Replay measures the complete bug hunt: record the stalled
// run, set a stopline before the send group, replay with enforced matching,
// and step rank 0 until the wrong destination is observed.
func BenchmarkFigure7Replay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := tracedbg.New(tracedbg.Target{
			Cfg:  tracedbg.Config{NumRanks: 8},
			Body: apps.Strassen(apps.StrassenConfig{N: 16, Seed: 42, Buggy: true}, nil),
		})
		var stall *tracedbg.StallError
		if err := d.Record(); !errors.As(err, &stall) {
			b.Fatalf("expected stall, got %v", err)
		}
		tr := d.Trace()
		var before tracedbg.EventID
		for j := range tr.Rank(0) {
			r := tr.Rank(0)[j]
			if r.Kind == trace.KindMarker && r.Loc.Line == 161 && r.Args[0] == 0 {
				before = tracedbg.EventID{Rank: 0, Index: j}
				break
			}
		}
		sl, err := d.StopLineAtEvent(before)
		if err != nil {
			b.Fatal(err)
		}
		s, err := d.Replay(sl)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.WaitStop(0, benchTimeout); err != nil {
			b.Fatal(err)
		}
		foundBug := false
		for hops := 0; hops < 40 && !foundBug; hops++ {
			st := s.Where(0)
			if st != nil && st.Rec.Kind == trace.KindSend && st.Rec.Loc.Line == 161 {
				jres, _ := s.ReadVar(0, "jres")
				if jres != "" && st.Rec.Dst < 7 {
					foundBug = true
					break
				}
			}
			if err := s.Step(0); err != nil {
				b.Fatal(err)
			}
			if _, err := s.WaitStop(0, benchTimeout); err != nil {
				b.Fatal(err)
			}
		}
		s.Kill()
		_ = s.Wait()
		if !foundBug {
			b.Fatal("bug not located")
		}
	}
}

// --- Figure 8: past/future frontiers ------------------------------------

// BenchmarkFigure8Frontiers computes past/future frontiers and the
// concurrency region of an event in the LU wavefront and renders the
// Figure 8 display.
func BenchmarkFigure8Frontiers(b *testing.B) {
	sink := instr.NewMemorySink(8)
	in := instr.New(8, sink, instr.LevelAll)
	if err := in.Run(mp.Config{NumRanks: 8}, apps.LU(apps.LUConfig{Cols: 8, Rows: 4, Iters: 2, Seed: 1}, nil)); err != nil {
		b.Fatal(err)
	}
	tr := sink.Trace()
	var sel trace.EventID
	for i := range tr.Rank(4) {
		if tr.Rank(4)[i].Kind == trace.KindSend {
			sel = trace.EventID{Rank: 4, Index: i}
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o, err := tracedbg.NewOrder(tr)
		if err != nil {
			b.Fatal(err)
		}
		past, err := o.PastFrontier(sel)
		if err != nil {
			b.Fatal(err)
		}
		future, err := o.FutureFrontier(sel)
		if err != nil {
			b.Fatal(err)
		}
		if !o.IsConsistentFrontier(past) {
			b.Fatal("past frontier inconsistent")
		}
		lo, hi, err := o.ConcurrencyRegion(sel)
		if err != nil {
			b.Fatal(err)
		}
		out := vis.ASCII(tr, vis.Options{Width: 100, Past: past, Future: future, Selected: &sel})
		if len(out) == 0 {
			b.Fatal("empty render")
		}
		if i == 0 {
			conc := 0
			for r := range lo {
				conc += hi[r] - lo[r]
			}
			b.ReportMetric(float64(conc), "concurrent-events")
		}
	}
}

// --- Figure 9: dynamic call graph ---------------------------------------

// BenchmarkFigure9CallGraph projects rank 0's dynamic call graph from the
// Strassen trace graph and renders it in VCG format for xvcg.
func BenchmarkFigure9CallGraph(b *testing.B) {
	_, tr, err := apps.RunStrassen(apps.StrassenConfig{N: 16, Seed: 42}, 8, instr.LevelAll)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := graph.FromTrace(tr, 0)
		cg := g.Project(0)
		vcg := cg.VCG()
		if !strings.Contains(vcg, "MatrSend") || !strings.Contains(vcg, "MatrRecv") {
			b.Fatalf("call graph missing functions:\n%s", vcg)
		}
		if i == 0 {
			b.ReportMetric(float64(len(cg.Funcs)), "functions")
			b.ReportMetric(float64(len(cg.Arcs)), "call-arcs")
		}
	}
}
